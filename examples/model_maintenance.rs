//! Keeping cost models fresh as the local site changes (paper §2).
//!
//! Frequently-changing factors are absorbed by the contention states; but
//! occasionally-changing factors — hardware, DBMS configuration, schema —
//! durably reshape the cost function. This example derives a model, watches
//! production traffic through a drift monitor, degrades the site's storage,
//! sees the monitor trip, and re-derives.
//!
//! ```text
//! cargo run --release --example model_maintenance
//! ```

use std::fmt::Write as _;

use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::maintenance::{MaintenanceConfig, ModelMaintainer};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::variables::VariableFamily;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, EnvironmentEvent, LoadBuilder, MdbsAgent, VendorProfile};

fn serve_traffic(
    maintainer: &mut ModelMaintainer,
    agent: &mut MdbsAgent,
    n: usize,
    seed: u64,
) -> bool {
    let mut generator = SampleGenerator::new(seed);
    let family = VariableFamily::Unary;
    let mut drifted = false;
    for _ in 0..n {
        let q = generator.generate(QueryClass::UnaryNoIndex, agent.catalog());
        let Some(x) = family.extract(agent.catalog(), &q) else {
            continue;
        };
        agent.tick();
        let probe = agent.probe();
        let model = &maintainer.derived.model;
        let x_sel: Vec<f64> = model.var_indexes.iter().map(|&i| x[i]).collect();
        let est = model.estimate(&x_sel, probe);
        let obs = agent.run(&q).expect("query runs").cost_s;
        drifted |= maintainer.observe(obs, est, &mut PipelineCtx::default());
    }
    drifted
}

/// Runs the whole maintenance story and returns the printed report. `quick`
/// trims the sample sizes so the example stays fast under
/// `cargo test --examples`.
fn report(quick: bool) -> Result<String, Box<dyn std::error::Error>> {
    let mut out = String::new();
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 9);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));

    writeln!(out, "deriving the initial multi-states model for G1 ...")?;
    let cfg = if quick {
        DerivationConfig::quick()
    } else {
        DerivationConfig {
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        }
    };
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &cfg,
        &mut PipelineCtx::seeded(11),
    )?;
    writeln!(
        out,
        "  {} states, R² = {:.3}\n",
        derived.model.num_states(),
        derived.model.fit.r_squared
    )?;
    let traffic = if quick { (30, 40, 30) } else { (60, 80, 60) };
    let mut maintainer = ModelMaintainer::new(
        derived,
        MaintenanceConfig::builder()
            .window(40)
            .min_observations(25)
            // Healthy traffic sits at ~0.7-0.85 good on this site; the
            // storage degradation below drops it to ~0.5.
            .min_good_fraction(0.55)
            .build()?,
        cfg,
        StateAlgorithm::Iupma,
    );

    writeln!(out, "serving production traffic on the unchanged site ...")?;
    let drifted = serve_traffic(&mut maintainer, &mut agent, traffic.0, 21);
    writeln!(
        out,
        "  drift: {drifted}; good-estimate fraction {:.0}%\n",
        100.0 * maintainer.monitor.good_fraction()
    )?;

    writeln!(
        out,
        "** the site's storage degrades to 8x slower page I/O **\n"
    )?;
    agent.apply_event(&EnvironmentEvent::DiskReplacement {
        io_cost_factor: 8.0,
    })?;

    writeln!(out, "serving production traffic on the changed site ...")?;
    let drifted = serve_traffic(&mut maintainer, &mut agent, traffic.1, 22);
    writeln!(
        out,
        "  drift: {drifted}; good-estimate fraction {:.0}%\n",
        100.0 * maintainer.monitor.good_fraction()
    )?;

    writeln!(out, "re-deriving the model against the changed site ...")?;
    maintainer.rederive(&mut agent, &mut PipelineCtx::seeded(23))?;
    writeln!(
        out,
        "  rebuilt ({} rebuild so far): {} states, R² = {:.3}\n",
        maintainer.rederivations,
        maintainer.derived.model.num_states(),
        maintainer.derived.model.fit.r_squared
    )?;

    writeln!(out, "serving production traffic with the rebuilt model ...")?;
    let drifted = serve_traffic(&mut maintainer, &mut agent, traffic.2, 24);
    writeln!(
        out,
        "  drift: {drifted}; good-estimate fraction {:.0}%",
        100.0 * maintainer.monitor.good_fraction()
    )?;
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", report(false)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::report;

    #[test]
    fn model_maintenance_report_is_non_empty() {
        let out = report(true).expect("maintenance story runs");
        assert!(!out.trim().is_empty());
        assert!(out.contains("re-deriving the model"), "{out}");
        assert!(out.contains("rebuilt"), "{out}");
    }
}
