//! Clustered contention (paper §3.3, Table 6, Figure 10): when the load
//! hovers around a few operating points — overnight batch, office hours,
//! peak — the probing-cost distribution is multi-modal, and ICMA's
//! cluster-aligned state boundaries beat IUPMA's uniform grid.
//!
//! ```text
//! cargo run --release --example clustered_contention
//! ```

use std::fmt::Write as _;

use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::validate::{quality, run_test_queries};
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};
use mdbs_stats::describe::Histogram;

/// Runs the whole comparison and returns the printed report. `quick` trims
/// the sample sizes so the example stays fast under `cargo test --examples`.
fn report(quick: bool) -> Result<String, Box<dyn std::error::Error>> {
    let mut out = String::new();
    // A tri-modal load: quiet nights, busy days, thrashing peaks.
    let profile = ContentionProfile::paper_clustered();
    let make_agent = |seed| {
        let mut a = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), seed);
        a.set_load_builder(LoadBuilder::new(profile.clone()));
        a
    };

    // Part 1 — Figure 10: the contention level, gauged by probing costs.
    let mut agent = make_agent(5);
    let probes: Vec<f64> = (0..if quick { 150 } else { 600 })
        .map(|_| {
            agent.tick();
            agent.probe()
        })
        .collect();
    writeln!(
        out,
        "--- contention level (probing cost) in the clustered environment ---"
    )?;
    let hist = Histogram::build(&probes, 30, None).expect("non-empty sample");
    write!(out, "{}", hist.ascii(48))?;

    // Part 2 — derive with both state-determination algorithms.
    for (name, algo, seed) in [
        ("IUPMA (uniform partition)", StateAlgorithm::Iupma, 31u64),
        ("ICMA  (clustering-based) ", StateAlgorithm::Icma, 31),
    ] {
        let mut agent = make_agent(seed);
        let cfg = if quick {
            DerivationConfig::quick()
        } else {
            DerivationConfig {
                fit_probe_estimator: false,
                ..DerivationConfig::default()
            }
        };
        let derived = derive_cost_model(
            &mut agent,
            QueryClass::UnaryNoIndex,
            algo,
            &cfg,
            &mut PipelineCtx::seeded(77),
        )?;
        let trials = if quick { 15 } else { 60 };
        let points = run_test_queries(
            &mut agent,
            QueryClass::UnaryNoIndex,
            &derived.model,
            trials,
            91,
        )?;
        let q = quality(&points);
        writeln!(
            out,
            "\n{name}: {} states, R² = {:.3}, SEE = {:.2}",
            derived.model.num_states(),
            derived.model.fit.r_squared,
            derived.model.fit.see
        )?;
        writeln!(
            out,
            "  state boundaries (probe sec): {:?}",
            derived
                .model
                .states
                .edges()
                .iter()
                .map(|e| (e * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        )?;
        writeln!(
            out,
            "  test quality: {:.0}% very good, {:.0}% good",
            q.very_good_pct, q.good_pct
        )?;
    }

    writeln!(
        out,
        "\nICMA aligns its boundaries with the load clusters, so each state\n\
         covers one operating regime; the uniform grid splits regimes apart."
    )?;
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", report(false)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::report;

    #[test]
    fn clustered_contention_report_is_non_empty() {
        let out = report(true).expect("comparison runs");
        assert!(!out.trim().is_empty());
        assert!(out.contains("IUPMA"), "{out}");
        assert!(out.contains("ICMA"), "{out}");
        assert!(out.contains("state boundaries"), "{out}");
    }
}
