//! The motivating scenario of the paper's introduction (Figure 1): the
//! same local query gets over an order of magnitude slower as background
//! load grows — and a cost model that ignores contention misprices it
//! badly, while the multi-states model tracks it.
//!
//! ```text
//! cargo run --release --example dynamic_workload
//! ```

use std::fmt::Write as _;

use mdbs_core::classes::{classify, QueryClass};
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::variables::VariableFamily;
use mdbs_sim::contention::Load;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::query::{Predicate, Query, UnaryQuery};
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

/// Runs the whole scenario and returns the printed report. `quick` trims
/// the sweeps so the example stays fast under `cargo test --examples`.
fn report(quick: bool) -> Result<String, Box<dyn std::error::Error>> {
    let mut out = String::new();
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 11);

    // The paper's Figure-1 query: a select-project on a ~50k-tuple table.
    let table = agent
        .catalog()
        .tables()
        .iter()
        .min_by_key(|t| t.cardinality.abs_diff(50_000))
        .expect("standard database is non-empty")
        .clone();
    let query = Query::Unary(UnaryQuery {
        table: table.id,
        projection: vec![0, 4, 6],
        predicates: vec![
            Predicate::gt(4, table.columns[4].domain_max / 30),
            Predicate::lt(5, table.columns[5].domain_max / 5),
        ],
        order_by: None,
    });
    writeln!(
        out,
        "query: select a1, a5, a7 from {} where a5 > .. and a6 < ..  ({} tuples)\n",
        table.id, table.cardinality
    )?;

    // Part 1 — Figure 1: sweep the number of concurrent processes.
    writeln!(
        out,
        "--- effect of concurrent processes on the observed cost ---"
    )?;
    writeln!(out, "{:>10} {:>12}", "processes", "cost (sec)")?;
    let (step, reps) = if quick { (40, 1) } else { (10, 3) };
    for procs in (50..=130).step_by(step) {
        agent.set_load(Load::background(procs as f64));
        let mean: f64 = (0..reps)
            .map(|_| agent.run(&query).unwrap().cost_s)
            .sum::<f64>()
            / reps as f64;
        writeln!(out, "{procs:>10} {mean:>12.2}")?;
    }

    // Part 2 — derive a multi-states model in the dynamic environment and
    // watch it re-price the *same* query as contention moves.
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));
    let class = classify(agent.catalog(), &query).expect("classifiable");
    assert_eq!(class, QueryClass::UnaryNoIndex);
    writeln!(
        out,
        "\nderiving a multi-states model for {} ...",
        class.label()
    )?;
    let cfg = if quick {
        DerivationConfig::quick()
    } else {
        DerivationConfig::default()
    };
    let derived = derive_cost_model(
        &mut agent,
        class,
        StateAlgorithm::Iupma,
        &cfg,
        &mut PipelineCtx::seeded(23),
    )?;
    writeln!(
        out,
        "model: {} states, R² = {:.3}\n",
        derived.model.num_states(),
        derived.model.fit.r_squared
    )?;

    writeln!(
        out,
        "--- the same query, priced before each run as load moves ---"
    )?;
    writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12} {:>8}",
        "processes", "probe (s)", "estimated", "observed", "state"
    )?;
    let x = VariableFamily::Unary
        .extract(agent.catalog(), &query)
        .expect("query matches the unary family");
    let x_sel: Vec<f64> = derived.model.var_indexes.iter().map(|&i| x[i]).collect();
    for procs in [25.0, 55.0, 85.0, 105.0, 120.0] {
        agent.set_load(Load::background(procs));
        let probe = agent.probe();
        let est = derived.model.estimate(&x_sel, probe);
        let obs = agent.run(&query)?.cost_s;
        let state = derived
            .model
            .states
            .paper_label(derived.model.states.state_of(probe));
        writeln!(
            out,
            "{procs:>10.0} {probe:>12.2} {est:>12.2} {obs:>12.2} {state:>8}"
        )?;
    }

    writeln!(
        out,
        "\nthe one-state model would quote {:.2}s regardless of load (R² = {:.3}).",
        derived.one_state.estimate(&x_sel, 0.0),
        derived.one_state.fit.r_squared
    )?;
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", report(false)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::report;

    #[test]
    fn dynamic_workload_report_is_non_empty() {
        let out = report(true).expect("scenario runs");
        assert!(!out.trim().is_empty());
        assert!(out.contains("effect of concurrent processes"), "{out}");
        assert!(out.contains("priced before each run"), "{out}");
    }
}
