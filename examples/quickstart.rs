//! Quickstart: derive a multi-states cost model for one query class at one
//! local site and use it to estimate query costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::fmt::Write as _;

use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::validate::{quality, run_test_queries};
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

/// Runs the whole quickstart and returns the printed report. `quick` trims
/// the sample sizes so the example stays fast under `cargo test --examples`.
fn report(quick: bool) -> Result<String, Box<dyn std::error::Error>> {
    let mut out = String::new();
    // 1. A local DBS the MDBS cannot see inside: an Oracle-8.0-like system
    //    hosting the paper's 12-table synthetic database, on a host whose
    //    background load swings between 20 and 125 concurrent processes.
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 1);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));

    // 2. Derive a cost model for G1 — unary queries without usable indexes
    //    — using the multi-states query sampling method (IUPMA).
    writeln!(
        out,
        "deriving a multi-states cost model for G1 (this samples a few"
    )?;
    writeln!(out, "hundred queries against the simulated local DBS)...\n")?;
    let cfg = if quick {
        DerivationConfig::quick()
    } else {
        DerivationConfig::default()
    };
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &cfg,
        &mut PipelineCtx::seeded(7),
    )?;

    writeln!(
        out,
        "derived model: {} contention states, {} variables, R² = {:.3}, SEE = {:.2}",
        derived.model.num_states(),
        derived.model.num_variables(),
        derived.model.fit.r_squared,
        derived.model.fit.see,
    )?;
    writeln!(out, "\nper-state cost equations (paper Table 4 style):")?;
    write!(out, "{}", derived.model.render())?;

    if let Some(est) = &derived.probe_estimator {
        writeln!(
            out,
            "\nprobing-cost estimator (eq. 2): C_probe ≈ f({}), R² = {:.3}",
            est.names.join(", "),
            est.r_squared
        )?;
    }

    // 3. Estimate held-out test queries before running them, then compare.
    let trials = if quick { 12 } else { 50 };
    let points = run_test_queries(
        &mut agent,
        QueryClass::UnaryNoIndex,
        &derived.model,
        trials,
        99,
    )?;
    let q = quality(&points);
    writeln!(
        out,
        "\non {} fresh test queries in the dynamic environment:",
        q.n
    )?;
    writeln!(
        out,
        "  {:.0}% very good estimates (≤30% relative error), {:.0}% good (within 2x)",
        q.very_good_pct, q.good_pct
    )?;
    writeln!(
        out,
        "\nfirst five test queries (observed vs estimated, seconds):"
    )?;
    for p in points.iter().take(5) {
        writeln!(
            out,
            "  observed {:8.2}   estimated {:8.2}   (probe {:.2}s -> state {})",
            p.observed,
            p.estimated,
            p.probe_cost,
            derived
                .model
                .states
                .paper_label(derived.model.states.state_of(p.probe_cost)),
        )?;
    }

    // 4. The one-state model (the old static method) on the same data:
    writeln!(
        out,
        "\nfor contrast, the one-state (static-method) model fitted on the same \
         sample has R² = {:.3} — the dynamic environment is simply not \
         describable by a single regression.",
        derived.one_state.fit.r_squared
    )?;
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", report(false)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::report;

    #[test]
    fn quickstart_report_is_non_empty() {
        let out = report(true).expect("quickstart runs");
        assert!(!out.trim().is_empty());
        assert!(out.contains("derived model"), "{out}");
        assert!(out.contains("per-state cost equations"), "{out}");
    }
}
