//! The MDBS end-to-end story: derive cost models for two autonomous local
//! DBSs (an Oracle-like and a DB2-like site), store them in the global
//! catalog, and let the global optimizer decide *where to execute a
//! cross-site join* — a decision that flips with the contention state.
//!
//! ```text
//! cargo run --release --example global_optimizer
//! ```

use std::fmt::Write as _;

use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::optimizer::{GlobalJoin, GlobalOptimizer, JoinOperand};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_sim::contention::Load;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

/// Runs the whole story and returns the printed report. `quick` trims the
/// sample sizes so the example stays fast under `cargo test --examples`.
fn report(quick: bool) -> Result<String, Box<dyn std::error::Error>> {
    let mut out = String::new();
    let oracle: SiteId = "oracle-site".into();
    let db2: SiteId = "db2-site".into();

    let mut oracle_agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 3);
    let mut db2_agent = MdbsAgent::new(VendorProfile::db2v5(), standard_database(43), 4);
    for a in [&mut oracle_agent, &mut db2_agent] {
        a.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
            lo: 20.0,
            hi: 125.0,
        }));
    }

    // Derive the models the optimizer needs: unary (to price the filter at
    // the shipping site) and unindexed join (to price the join itself).
    let mut catalog = GlobalCatalog::new();
    let cfg = if quick {
        DerivationConfig::quick()
    } else {
        DerivationConfig {
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        }
    };
    for (site, agent, seed) in [
        (&oracle, &mut oracle_agent, 100u64),
        (&db2, &mut db2_agent, 200),
    ] {
        for class in [QueryClass::UnaryNoIndex, QueryClass::JoinNoIndex] {
            write!(out, "deriving {:<28} at {site} ... ", class.label())?;
            let derived = derive_cost_model(
                agent,
                class,
                StateAlgorithm::Iupma,
                &cfg,
                &mut PipelineCtx::seeded(seed),
            )?;
            writeln!(
                out,
                "{} states, R² = {:.3}",
                derived.model.num_states(),
                derived.model.fit.r_squared
            )?;
            catalog.insert_model(site.clone(), class, derived.model);
        }
    }

    // The global join: a mid-size table at the Oracle site against a
    // mid-size table at the DB2 site, on unindexed columns.
    let ora_schema = oracle_agent.catalog().clone();
    let db2_schema = db2_agent.catalog().clone();
    let join = GlobalJoin {
        left: JoinOperand {
            site: oracle.clone(),
            table: ora_schema.tables()[7].id,
            join_col: 4,
            predicates: vec![],
        },
        right: JoinOperand {
            site: db2.clone(),
            table: db2_schema.tables()[5].id,
            join_col: 4,
            predicates: vec![],
        },
    };
    writeln!(
        out,
        "\nglobal query: {}@{} ⋈ {}@{} (join on a5)",
        ora_schema.tables()[7].id,
        oracle,
        db2_schema.tables()[5].id,
        db2
    )?;

    let optimizer = GlobalOptimizer::new(catalog, 0.08);
    let schemas = [(oracle.clone(), &ora_schema), (db2.clone(), &db2_schema)];

    // Decide under three contention scenarios: probe each site, plan, pick.
    for (label, ora_load, db2_load) in [
        ("both sites quiet", 25.0, 25.0),
        ("Oracle site thrashing", 120.0, 25.0),
        ("DB2 site thrashing", 25.0, 120.0),
    ] {
        oracle_agent.set_load(Load::background(ora_load));
        db2_agent.set_load(Load::background(db2_load));
        let probes = [
            (oracle.clone(), oracle_agent.probe()),
            (db2.clone(), db2_agent.probe()),
        ];
        let plans = optimizer.plan_join(&join, &schemas, &probes)?;
        writeln!(out, "\nscenario: {label}")?;
        for (rank, p) in plans.iter().enumerate() {
            writeln!(
                out,
                "  plan {}: join at {:<12} prepare {:8.1}s + transfer {:6.1}s ({:6.1} MB) + join {:8.1}s = {:9.1}s",
                rank + 1,
                p.join_site.to_string(),
                p.ship_prepare_cost,
                p.transfer_cost,
                p.transfer_mb,
                p.join_cost,
                p.total()
            )?;
        }
        if let Some(best) = plans.first() {
            writeln!(out, "  -> optimizer sends the join to {}", best.join_site)?;
        }
    }
    writeln!(
        out,
        "\nwithout contention states, both plans would be priced identically in\n\
         every scenario — the qualitative variable is what lets the optimizer\n\
         route work away from an overloaded site."
    )?;
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", report(false)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::report;

    #[test]
    fn global_optimizer_report_is_non_empty() {
        let out = report(true).expect("story runs");
        assert!(!out.trim().is_empty());
        assert!(out.contains("scenario:"), "{out}");
        assert!(out.contains("optimizer sends the join"), "{out}");
    }
}
