//! The CLI subcommands. Each returns its report as a `String` so the
//! logic is unit-testable; `main` only prints.

use crate::args::{Args, ArgsError};
use crate::site::{parse_profile, site_agent, SiteName};
use mdbs_core::catalog::GlobalCatalog;
use mdbs_core::classes::{classify, QueryClass};
use mdbs_core::derive::{derive_cost_model_traced, DerivationConfig};
use mdbs_core::states::{StateAlgorithm, StatesConfig};
use mdbs_obs::{JsonlFileSink, Telemetry};
use mdbs_sim::sql::parse_query;
use mdbs_sim::trace::ExecutionTrace;

/// A CLI-level error (argument, IO or derivation).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError(e.0)
    }
}

impl From<mdbs_core::CoreError> for CliError {
    fn from(e: mdbs_core::CoreError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Top-level dispatch; returns the text to print.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "help" => Ok(usage()),
        "derive" => cmd_derive(&args),
        "estimate" => cmd_estimate(&args),
        "run" => cmd_run(&args),
        "catalog" => cmd_catalog(&args),
        other => Err(CliError(format!(
            "unknown subcommand `{other}`\n\n{}",
            usage()
        ))),
    }
}

/// The help text.
pub fn usage() -> String {
    "mdbs-qcost — multi-states query sampling for dynamic MDBS environments

USAGE:
  mdbs-qcost derive   --site oracle|db2 --class g1|g2|gc|g3|gj
                      [--algorithm iupma|icma] [--profile uniform:20:125]
                      [--samples N] [--max-states M] [--seed N]
                      [--out catalog.txt] [--telemetry events.jsonl]
  mdbs-qcost estimate --catalog catalog.txt --site oracle|db2
                      --sql \"select ... from ... where ...\"
                      [--profile uniform:20:125] [--seed N] [--execute]
                      [--telemetry events.jsonl]
  mdbs-qcost run      --site oracle|db2 --sql \"...\" [--procs N] [--seed N]
                      [--telemetry events.jsonl]
  mdbs-qcost catalog  --file catalog.txt
  mdbs-qcost help

The sites are the built-in simulated local DBSs (an Oracle-8.0-like and a
DB2-5.0-like system over the standard 12-table database R1..R12 with
columns a1..a9). `derive` runs the full multi-states query sampling
pipeline and stores the model in the catalog file; `estimate` prices a SQL
query through the catalog after gauging the site's contention with a
probing query.

`--telemetry PATH` writes structured spans and metrics as JSONL to PATH
and appends a human-readable summary to the report. All telemetry except
`wall_ms` fields is deterministic for a fixed seed.
"
    .to_string()
}

fn parse_class(s: &str) -> Result<QueryClass, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "g1" => Ok(QueryClass::UnaryNoIndex),
        "g2" => Ok(QueryClass::UnaryNonClusteredIndex),
        "gc" => Ok(QueryClass::UnaryClusteredIndex),
        "g3" => Ok(QueryClass::JoinNoIndex),
        "gj" => Ok(QueryClass::JoinIndexed),
        other => Err(CliError(format!(
            "unknown class `{other}` (expected g1, g2, gc, g3 or gj)"
        ))),
    }
}

fn parse_algorithm(s: &str) -> Result<StateAlgorithm, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "iupma" => Ok(StateAlgorithm::Iupma),
        "icma" => Ok(StateAlgorithm::Icma),
        other => Err(CliError(format!(
            "unknown algorithm `{other}` (expected iupma or icma)"
        ))),
    }
}

fn load_catalog(path: &str) -> Result<GlobalCatalog, CliError> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(GlobalCatalog::import(&text)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(GlobalCatalog::new()),
        Err(e) => Err(CliError(format!("cannot read `{path}`: {e}"))),
    }
}

fn cmd_derive(args: &Args) -> Result<String, CliError> {
    check_keys(
        args,
        &[
            "site",
            "class",
            "algorithm",
            "profile",
            "samples",
            "max-states",
            "seed",
            "out",
            "telemetry",
        ],
    )?;
    let site = SiteName::parse(args.required("site")?)?;
    let class = parse_class(args.required("class")?)?;
    let algorithm = parse_algorithm(args.or_default("algorithm", "iupma"))?;
    let profile = parse_profile(args.or_default("profile", "uniform:20:125"))?;
    let seed = args.parse_opt::<u64>("seed")?.unwrap_or(1);
    let samples = args.parse_opt::<usize>("samples")?;
    let max_states = args.parse_opt::<usize>("max-states")?.unwrap_or(6);
    let out_path = args.or_default("out", "catalog.txt").to_string();
    let telemetry_path = args.parse_opt::<String>("telemetry")?;

    let mut agent = site_agent(site, &profile, seed);
    let mut tel = if telemetry_path.is_some() {
        agent.enable_trace(64);
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let cfg = DerivationConfig {
        states: StatesConfig {
            max_states,
            ..StatesConfig::default()
        },
        sample_size: samples,
        ..DerivationConfig::default()
    };
    let derived = derive_cost_model_traced(
        &mut agent,
        class,
        algorithm,
        &cfg,
        seed.wrapping_add(1),
        &mut tel,
    )?;

    let mut catalog = load_catalog(&out_path)?;
    catalog.insert_model(site.id().into(), class, derived.model.clone());
    if let Some(est) = &derived.probe_estimator {
        catalog.insert_probe_estimator(site.id().into(), est.clone());
    }
    std::fs::write(&out_path, catalog.export())?;

    let mut out = String::new();
    out.push_str(&format!(
        "derived {} at site `{}` ({} sample queries)\n",
        class.label(),
        site.id(),
        derived.observations.len()
    ));
    out.push_str(&format!(
        "  contention states: {} | R^2 = {:.3} | SEE = {:.3} | F p-value = {:.2e}\n",
        derived.model.num_states(),
        derived.model.fit.r_squared,
        derived.model.fit.see,
        derived.model.fit.f_p_value
    ));
    out.push_str(&format!(
        "  one-state comparison R^2 = {:.3}\n",
        derived.one_state.fit.r_squared
    ));
    out.push_str("\nper-state cost equations:\n");
    out.push_str(&derived.model.render());
    out.push_str(&format!("\ncatalog written to {out_path}\n"));
    if let Some(path) = &telemetry_path {
        out.push_str(&telemetry_section(&tel, agent.trace(), path)?);
    }
    Ok(out)
}

fn cmd_estimate(args: &Args) -> Result<String, CliError> {
    check_keys(
        args,
        &[
            "catalog",
            "site",
            "sql",
            "profile",
            "seed",
            "execute",
            "telemetry",
        ],
    )?;
    let site = SiteName::parse(args.required("site")?)?;
    let catalog_path = args.required("catalog")?;
    let sql = args.required("sql")?;
    let profile = parse_profile(args.or_default("profile", "uniform:20:125"))?;
    let seed = args.parse_opt::<u64>("seed")?.unwrap_or(1);
    let telemetry_path = args.parse_opt::<String>("telemetry")?;
    let catalog = load_catalog(catalog_path)?;

    let mut agent = site_agent(site, &profile, seed);
    let mut tel = if telemetry_path.is_some() {
        agent.enable_metrics();
        agent.enable_trace(16);
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, sql).map_err(|e| CliError(e.to_string()))?;
    let class =
        classify(&schema, &query).ok_or_else(|| CliError("query cannot be classified".into()))?;

    let span = tel.begin_span("estimate");
    tel.field(span, "class", class.label().to_string());
    agent.tick();
    let probe = agent.probe();
    tel.field(span, "probe_cost_s", probe);
    let Some(estimate) = catalog.estimate_local_cost(&site.id().into(), &schema, &query, probe)
    else {
        return Err(CliError(format!(
            "no cost model for {} at site `{}` in {catalog_path} — derive one first:\n  \
             mdbs-qcost derive --site {} --class {} --out {catalog_path}",
            class.label(),
            site.id(),
            site.id(),
            class_tag(class),
        )));
    };
    let model = catalog
        .model(&site.id().into(), class)
        .expect("estimate succeeded, model exists");
    let mut out = String::new();
    out.push_str(&format!("query class: {}\n", class.label()));
    out.push_str(&format!(
        "probing cost: {probe:.3}s -> contention state {}\n",
        model.states.paper_label(model.states.state_of(probe))
    ));
    out.push_str(&format!("estimated cost: {estimate:.2}s\n"));
    tel.field(span, "estimated_cost_s", estimate);
    tel.field(
        span,
        "state",
        model.states.paper_label(model.states.state_of(probe)),
    );
    if args.flag("execute") {
        let exec = agent.run(&query).map_err(|e| CliError(e.to_string()))?;
        out.push_str(&format!("observed cost:  {:.2}s\n", exec.cost_s));
        let rel = (estimate - exec.cost_s).abs() / exec.cost_s.max(f64::MIN_POSITIVE);
        out.push_str(&format!("relative error: {:.0}%\n", rel * 100.0));
        tel.field(span, "observed_cost_s", exec.cost_s);
    }
    tel.end_span(span);
    if let Some(path) = &telemetry_path {
        if let Some(metrics) = agent.disable_metrics() {
            tel.merge_metrics(&metrics);
        }
        out.push_str(&telemetry_section(&tel, agent.trace(), path)?);
    }
    Ok(out)
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    check_keys(args, &["site", "sql", "procs", "seed", "telemetry"])?;
    let site = SiteName::parse(args.required("site")?)?;
    let sql = args.required("sql")?;
    let procs = args.parse_opt::<f64>("procs")?.unwrap_or(0.0);
    let seed = args.parse_opt::<u64>("seed")?.unwrap_or(1);
    let telemetry_path = args.parse_opt::<String>("telemetry")?;
    let mut agent = site.agent(seed);
    let mut tel = if telemetry_path.is_some() {
        agent.enable_metrics();
        agent.enable_trace(16);
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    agent.set_load(mdbs_sim::contention::Load::background(procs));
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, sql).map_err(|e| CliError(e.to_string()))?;
    let span = tel.begin_span("run");
    tel.field(span, "procs", procs);
    let exec = agent.run(&query).map_err(|e| CliError(e.to_string()))?;
    let access = exec.access.to_string();
    let result_card = match exec.sizes {
        mdbs_sim::agent::ExecutionSizes::Unary(s) => s.result,
        mdbs_sim::agent::ExecutionSizes::Join(s) => s.result,
    };
    tel.field(span, "access", access.clone());
    tel.field(span, "result_card", result_card);
    tel.field(span, "cost_s", exec.cost_s);
    tel.end_span(span);
    let mut out = format!(
        "site `{}` under {procs:.0} background processes\n\
         access path: {access}\nresult tuples: {result_card}\n\
         elapsed: {:.2}s\n",
        site.id(),
        exec.cost_s
    );
    if let Some(path) = &telemetry_path {
        if let Some(metrics) = agent.disable_metrics() {
            tel.merge_metrics(&metrics);
        }
        out.push_str(&telemetry_section(&tel, agent.trace(), path)?);
    }
    Ok(out)
}

fn cmd_catalog(args: &Args) -> Result<String, CliError> {
    check_keys(args, &["file"])?;
    let path = args.required("file")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    let catalog = GlobalCatalog::import(&text)?;
    let mut out = format!("catalog {path}: {} model(s)\n", catalog.len());
    for site in catalog.sites() {
        for class in catalog.classes_for(&site) {
            let m = catalog.model(&site, class).expect("listed");
            out.push_str(&format!(
                "  {site} / {:<28} {} states, {} vars [{}], R^2 = {:.3}\n",
                class.label(),
                m.num_states(),
                m.num_variables(),
                m.var_names.join(", "),
                m.fit.r_squared
            ));
        }
        if catalog.probe_estimator(&site).is_some() {
            out.push_str(&format!("  {site} / probing-cost estimator (eq. 2)\n"));
        }
    }
    Ok(out)
}

fn class_tag(class: QueryClass) -> &'static str {
    match class {
        QueryClass::UnaryNoIndex => "g1",
        QueryClass::UnaryNonClusteredIndex => "g2",
        QueryClass::UnaryClusteredIndex => "gc",
        QueryClass::JoinNoIndex => "g3",
        QueryClass::JoinIndexed => "gj",
    }
}

/// The single reporting path for telemetry: writes the events as JSONL to
/// `path` and returns the human-readable section (telemetry summary plus,
/// when present, the agent's execution-trace report).
fn telemetry_section(
    tel: &Telemetry,
    trace: Option<&ExecutionTrace>,
    path: &str,
) -> Result<String, CliError> {
    let mut sink = JsonlFileSink::create(std::path::Path::new(path))
        .map_err(|e| CliError(format!("cannot create telemetry file `{path}`: {e}")))?;
    tel.emit_to(&mut sink);
    sink.finish()
        .map_err(|e| CliError(format!("cannot write telemetry file `{path}`: {e}")))?;
    let mut out = format!(
        "\ntelemetry: {} event(s) written to {path}\n",
        tel.events().len()
    );
    out.push_str(&tel.render_summary());
    if let Some(trace) = trace {
        out.push_str(&trace.report());
    }
    Ok(out)
}

fn check_keys(args: &Args, known: &[&str]) -> Result<(), CliError> {
    let unknown = args.unknown_keys(known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(CliError(format!(
            "unknown option(s): {}",
            unknown
                .iter()
                .map(|k| format!("--{k}"))
                .collect::<Vec<_>>()
                .join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        // Split on spaces except inside single quotes (for --sql).
        let mut out = Vec::new();
        let mut cur = String::new();
        let mut quoted = false;
        for ch in s.chars() {
            match ch {
                '\'' => quoted = !quoted,
                ' ' if !quoted => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                }
                _ => cur.push(ch),
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mdbs-cli-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_lists_subcommands() {
        let out = dispatch(&argv("help")).unwrap();
        for cmd in ["derive", "estimate", "run", "catalog"] {
            assert!(out.contains(cmd), "help misses {cmd}");
        }
    }

    #[test]
    fn unknown_subcommand_mentions_usage() {
        let e = dispatch(&argv("frobnicate")).unwrap_err();
        assert!(e.0.contains("unknown subcommand"));
        assert!(e.0.contains("USAGE"));
    }

    #[test]
    fn run_executes_sql() {
        let out = dispatch(&argv(
            "run --site oracle --sql 'select a1, a5 from R7 where a3 > 300 and a8 < 2000' --procs 60",
        ))
        .unwrap();
        assert!(out.contains("access path"), "{out}");
        assert!(out.contains("elapsed"), "{out}");
    }

    #[test]
    fn run_rejects_bad_sql() {
        let e = dispatch(&argv("run --site oracle --sql 'select from'")).unwrap_err();
        assert!(e.0.contains("SQL error"), "{}", e.0);
    }

    #[test]
    fn derive_then_estimate_roundtrip() {
        let path = tmp("roundtrip-catalog.txt");
        let _ = std::fs::remove_file(&path);
        let out = dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 160 --max-states 3 --out {path}"
        )))
        .unwrap();
        assert!(out.contains("contention states"), "{out}");
        assert!(std::path::Path::new(&path).exists());

        let out = dispatch(&argv(&format!(
            "estimate --catalog {path} --site oracle \
             --sql 'select a1, a5 from R8 where a5 > 100 and a6 < 500' --execute"
        )))
        .unwrap();
        assert!(out.contains("estimated cost"), "{out}");
        assert!(out.contains("observed cost"), "{out}");

        let out = dispatch(&argv(&format!("catalog --file {path}"))).unwrap();
        assert!(out.contains("G1"), "{out}");
    }

    #[test]
    fn estimate_without_model_suggests_derive() {
        let path = tmp("empty-catalog.txt");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, GlobalCatalog::new().export()).unwrap();
        let e = dispatch(&argv(&format!(
            "estimate --catalog {path} --site db2 --sql 'select a1 from R2 where a2 < 100'"
        )))
        .unwrap_err();
        assert!(e.0.contains("derive one first"), "{}", e.0);
        assert!(e.0.contains("--class g1"), "{}", e.0);
    }

    #[test]
    fn typoed_flag_is_caught() {
        let e = dispatch(&argv(
            "run --site oracle --sql 'select a1 from R2' --porcs 9",
        ))
        .unwrap_err();
        assert!(e.0.contains("--porcs"), "{}", e.0);
    }

    #[test]
    fn derive_supports_icma_and_clustered_profiles() {
        let path = tmp("icma-catalog.txt");
        let _ = std::fs::remove_file(&path);
        let out = dispatch(&argv(&format!(
            "derive --site db2 --class g1 --algorithm icma --profile clustered \
             --samples 150 --max-states 3 --out {path}"
        )))
        .unwrap();
        assert!(out.contains("contention states"), "{out}");
    }

    #[test]
    fn derive_rejects_bad_options() {
        for bad in [
            "derive --site teradata --class g1",
            "derive --site oracle --class g9",
            "derive --site oracle --class g1 --algorithm kmeans",
            "derive --site oracle --class g1 --profile uniform:bad:10",
        ] {
            assert!(dispatch(&argv(bad)).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn catalog_command_reports_unreadable_files() {
        let e = dispatch(&argv("catalog --file /nonexistent/nowhere.txt")).unwrap_err();
        assert!(e.0.contains("cannot read"), "{}", e.0);
        let path = tmp("garbage.txt");
        std::fs::write(&path, "not a catalog at all").unwrap();
        assert!(dispatch(&argv(&format!("catalog --file {path}"))).is_err());
    }

    #[test]
    fn run_telemetry_writes_parseable_jsonl_and_folds_the_trace_report() {
        let path = tmp("run-telemetry.jsonl");
        let _ = std::fs::remove_file(&path);
        let out = dispatch(&argv(&format!(
            "run --site oracle --sql 'select a1, a5 from R7 where a3 > 300 and a8 < 2000' \
             --procs 40 --telemetry {path}"
        )))
        .unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        assert!(out.contains("engine.executions"), "{out}");
        // The agent's execution-trace report rides in the same section
        // (single reporting path, no separate trace output).
        assert!(out.contains("trace: "), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.trim().is_empty(), "telemetry file is empty");
        for line in text.lines() {
            mdbs_obs::json::parse(line)
                .unwrap_or_else(|e| panic!("unparseable telemetry line `{line}`: {e:?}"));
        }
    }

    #[test]
    fn derive_telemetry_emits_one_span_per_stage() {
        let catalog = tmp("telemetry-catalog.txt");
        let events = tmp("derive-telemetry.jsonl");
        let _ = std::fs::remove_file(&catalog);
        let _ = std::fs::remove_file(&events);
        let out = dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 150 --max-states 3 \
             --out {catalog} --telemetry {events}"
        )))
        .unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        let text = std::fs::read_to_string(&events).unwrap();
        for stage in [
            "derive.sampling",
            "derive.states",
            "derive.selection",
            "derive.fit",
            "derive.validation",
        ] {
            let n = text
                .lines()
                .filter(|l| l.contains(&format!("\"name\":\"{stage}\"")))
                .count();
            assert_eq!(n, 1, "expected exactly one `{stage}` span, got {n}");
        }
    }

    #[test]
    fn telemetry_path_errors_are_reported_not_panicked() {
        let e = dispatch(&argv(
            "run --site oracle --sql 'select a1 from R2 where a2 < 100' \
             --telemetry /nonexistent/dir/t.jsonl",
        ))
        .unwrap_err();
        assert!(e.0.contains("telemetry"), "{}", e.0);
    }

    #[test]
    fn derive_accumulates_into_the_same_catalog() {
        let path = tmp("accumulate-catalog.txt");
        let _ = std::fs::remove_file(&path);
        dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 150 --max-states 3 --out {path}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "derive --site db2 --class g1 --samples 150 --max-states 3 --out {path}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let catalog = GlobalCatalog::import(&text).unwrap();
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.sites().len(), 2);
    }
}
