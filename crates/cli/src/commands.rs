//! The CLI subcommands. Each returns its report as a `String` so the
//! logic is unit-testable; `main` only prints.

use crate::args::{Args, ArgsError};
use crate::site::{parse_profile, site_agent, SiteName};
use mdbs_core::catalog::SiteId;
use mdbs_core::classes::{classify, QueryClass};
use mdbs_core::correction::EstimateQuery;
use mdbs_core::derive::{derive_all, derive_cost_model, BatchConfig, DerivationConfig, DeriveJob};
use mdbs_core::maintenance::{MaintenanceConfig, MaintenanceConfigBuilder};
use mdbs_core::model::ModelAccumulator;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::server::{
    fleet_from_snapshot, EstimationServer, RequestTrace, ServeConfig, ServeConfigBuilder,
};
use mdbs_core::states::{StateAlgorithm, StatesConfig};
use mdbs_core::store::{
    CatalogFormat, CatalogSnapshot, CatalogStore, FileCatalogStore, StoreError,
};
use mdbs_obs::{JsonlFileSink, Telemetry};
use mdbs_sim::sql::parse_query;
use mdbs_sim::trace::ExecutionTrace;
use mdbs_stats::rng::split_stream;

/// A CLI-level error.
///
/// Each variant keeps its cause as structured data instead of flattening it
/// into a string, so `main` can map variants to exit codes and callers can
/// match on the root cause through [`std::error::Error::source`].
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The command line could not be parsed.
    Args(ArgsError),
    /// The cost-model machinery failed.
    Core(mdbs_core::CoreError),
    /// A file could not be read or written.
    Io {
        /// What the CLI was doing (e.g. `cannot read \`catalog.txt\``).
        context: String,
        /// The underlying IO error.
        source: std::io::Error,
    },
    /// The request was well-formed but cannot be satisfied (unknown class
    /// name, unclassifiable query, missing model, malformed query file...).
    Invalid(String),
}

impl CliError {
    /// The process exit code for this error: 2 for bad input, 3 for IO
    /// failures, 4 for derivation/estimation failures.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Args(_) | CliError::Invalid(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Core(_) => 4,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Io { context, source } => write!(f, "{context}: {source}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Args(e) => Some(e),
            CliError::Core(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
            CliError::Invalid(_) => None,
        }
    }
}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError::Args(e)
    }
}

impl From<mdbs_core::CoreError> for CliError {
    fn from(e: mdbs_core::CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        match e {
            // Keep the exit-code taxonomy: unreadable/unwritable files are
            // IO (3), corrupt catalog content is a core failure (4).
            StoreError::Io { context, source } => CliError::Io { context, source },
            StoreError::Corrupt(e) => CliError::Core(e),
        }
    }
}

/// Wraps an IO error with a `context` describing the failed operation.
fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> CliError {
    move |source| CliError::Io {
        context: context.into(),
        source,
    }
}

/// Top-level dispatch; returns the text to print.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    // Only `stats` takes bare operands; everywhere else a non-flag word
    // is a typo, and silently ignoring it would be worse than rejecting.
    if args.command != "stats" {
        if let Some(op) = args.positional().first() {
            return Err(CliError::Invalid(format!(
                "unexpected operand `{op}` (options are `--key value`)"
            )));
        }
    }
    match args.command.as_str() {
        "help" => Ok(usage()),
        "derive" => cmd_derive(&args),
        "estimate" => cmd_estimate(&args),
        "serve" => cmd_serve(&args),
        "run" => cmd_run(&args),
        "catalog" => cmd_catalog(&args),
        "archive" => cmd_archive(&args),
        "restore" => cmd_restore(&args),
        "stats" => cmd_stats(&args),
        other => Err(CliError::Invalid(format!(
            "unknown subcommand `{other}`\n\n{}",
            usage()
        ))),
    }
}

/// The help text.
pub fn usage() -> String {
    "mdbs-qcost — multi-states query sampling for dynamic MDBS environments

USAGE:
  mdbs-qcost derive   --site oracle|db2|all[,..] --class g1|g2|gc|g3|gj|all[,..]
                      [--algorithm iupma|icma] [--profile uniform:20:125]
                      [--samples N] [--max-states M] [--seed N] [--jobs N]
                      [--out catalog.txt] [--telemetry events.jsonl]
  mdbs-qcost estimate --catalog catalog.txt --site oracle|db2
                      --sql \"select ... from ... where ...\"
                      [--profile uniform:20:125] [--seed N] [--execute]
                      [--telemetry events.jsonl]
  mdbs-qcost serve    --catalog catalog.txt --queries queries.txt
                      [--jobs N] [--profile uniform:20:125] [--seed N]
                      [--telemetry events.jsonl]
  mdbs-qcost serve    --loop --catalog catalog.txt --trace trace.txt
                      [--queue N] [--batch N] [--batch-delay S]
                      [--service-cost S] [--deadline S] [--refit N]
                      [--drift-window N] [--drift-min N] [--drift-fraction F]
                      [--algorithm iupma|icma] [--jobs N]
                      [--heartbeat S] [--flight-recorder flight.jsonl]
                      [--report-json report.json]
                      [--profile ...] [--seed N] [--telemetry events.jsonl]
  mdbs-qcost run      --site oracle|db2 --sql \"...\" [--procs N] [--seed N]
                      [--telemetry events.jsonl]
  mdbs-qcost catalog  --file catalog.txt
  mdbs-qcost archive  --catalog catalog.txt --dest file:catalog.mdbc
                      [--format binary|text]
  mdbs-qcost restore  --archive file:catalog.mdbc --out catalog.txt
                      [--format text|binary]
  mdbs-qcost stats    events.jsonl
  mdbs-qcost help

The sites are the built-in simulated local DBSs (an Oracle-8.0-like and a
DB2-5.0-like system over the standard 12-table database R1..R12 with
columns a1..a9). `derive` runs the full multi-states query sampling
pipeline and stores the model in the catalog file; `estimate` prices a SQL
query through the catalog after gauging the site's contention with a
probing query.

`--site` and `--class` accept comma-separated lists or `all`; more than
one site/class pair (or an explicit `--jobs N`) derives the whole batch on
a worker pool. The derived catalog is byte-identical for every `--jobs`
value. `serve` answers a file of queries (one `site SQL...` per line,
`#` comments and blank lines skipped) from the catalog's in-memory model
registry, again on `--jobs` workers with order-independent output; a
malformed line fails inline while the rest keep being served (nonzero
exit only when no line succeeds).

`serve --loop` replays a timestamped trace (`@TIME request|observe|degrade
SITE ...` per line) through a long-lived estimation server: requests enter
a bounded admission queue (capacity `--queue`), drain in micro-batches of
up to `--batch` onto the worker pool against immutable registry snapshots,
and `observe` lines feed the drift monitors — enough evidence triggers an
incremental refit (every `--refit` observations) or a full rederivation
(when the good-estimate fraction over the `--drift-window` falls below
`--drift-fraction`, default 0.5), republished without blocking readers. Queued requests older than
`--deadline` and arrivals beyond the queue capacity are shed. The loop
runs in virtual time: the report and stripped telemetry are byte-identical
for every `--jobs` value.

`serve --loop` observability: `--heartbeat S` emits a snapshot record
(queue depth, shed counters, registry version, accuracy-ledger totals)
every S seconds of *virtual* time; `--flight-recorder PATH` dumps the
flight recorder — the last N request lifecycles (trace id, queue wait,
batch, model version, detected state, outcome) plus every maintenance
event and anomaly — as JSONL; `--report-json PATH` writes the
machine-readable report (all counters, latency percentiles and the
per-site/per-state accuracy ledger). `stats FILE` renders a telemetry or
flight-recorder JSONL back into tables (heartbeat time series, accuracy
ledger), strictly re-parsing every line.

`archive` snapshots a catalog into a destination file (`file:PATH` or a
bare path; other URL schemes are rejected), by default in the compact
binary snapshot-store format (`MDBC` magic): floats round-trip bit for
bit, loads parse nothing, and maintenance can append per-model delta
frames without rewriting the file. `restore` materializes an archive —
replaying any appended delta chain — back into a catalog file, by default
in the text interchange format; `--format` overrides either direction.
Every catalog-reading command accepts both formats transparently.

`--telemetry PATH` writes structured spans and metrics as JSONL to PATH
and appends a human-readable summary to the report. All telemetry except
`wall_ms` fields and `pool.sched.*` scheduling metrics is deterministic
for a fixed seed.

EXIT CODES: 0 success, 2 bad arguments or input, 3 IO failure,
4 derivation/estimation failure.
"
    .to_string()
}

fn parse_class(s: &str) -> Result<QueryClass, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "g1" => Ok(QueryClass::UnaryNoIndex),
        "g2" => Ok(QueryClass::UnaryNonClusteredIndex),
        "gc" => Ok(QueryClass::UnaryClusteredIndex),
        "g3" => Ok(QueryClass::JoinNoIndex),
        "gj" => Ok(QueryClass::JoinIndexed),
        other => Err(CliError::Invalid(format!(
            "unknown class `{other}` (expected g1, g2, gc, g3 or gj)"
        ))),
    }
}

/// Parses a comma-separated `--site` list; `all` means every built-in site.
fn parse_sites(s: &str) -> Result<Vec<SiteName>, CliError> {
    if s.eq_ignore_ascii_case("all") {
        return Ok(vec![SiteName::Oracle, SiteName::Db2]);
    }
    s.split(',')
        .map(|part| SiteName::parse(part.trim()).map_err(CliError::from))
        .collect()
}

/// Parses a comma-separated `--class` list; `all` means every query class.
fn parse_classes(s: &str) -> Result<Vec<QueryClass>, CliError> {
    if s.eq_ignore_ascii_case("all") {
        return Ok(QueryClass::all().to_vec());
    }
    s.split(',').map(|part| parse_class(part.trim())).collect()
}

fn parse_algorithm(s: &str) -> Result<StateAlgorithm, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "iupma" => Ok(StateAlgorithm::Iupma),
        "icma" => Ok(StateAlgorithm::Icma),
        other => Err(CliError::Invalid(format!(
            "unknown algorithm `{other}` (expected iupma or icma)"
        ))),
    }
}

/// Loads a catalog snapshot through the store (text or binary, sniffed
/// from content); a missing file is an empty unversioned snapshot — the
/// "first run" convention of `derive`.
fn load_snapshot_or_empty(path: &str, tel: &mut Telemetry) -> Result<CatalogSnapshot, CliError> {
    FileCatalogStore::sniffing(path)
        .load_or_empty(tel)
        .map_err(CliError::from)
}

/// Loads a catalog snapshot through the store; a missing file is an IO
/// error (exit 3) — the convention of every command that *requires* a
/// catalog (`serve`, `estimate`, `catalog`, `archive`).
fn load_snapshot(path: &str, tel: &mut Telemetry) -> Result<CatalogSnapshot, CliError> {
    FileCatalogStore::sniffing(path)
        .load(tel)
        .map_err(CliError::from)
}

/// Resolves an archive destination operand to a filesystem path. The
/// operand is either a bare path or a `file:` URL; any other scheme is
/// rejected up front so a typoed remote destination fails with exit 2
/// instead of creating a file literally named `s3:bucket/x`.
fn parse_destination(operand: &str) -> Result<String, CliError> {
    if let Some(path) = operand.strip_prefix("file:") {
        if path.is_empty() {
            return Err(CliError::Invalid(format!(
                "destination `{operand}` names no path after `file:`"
            )));
        }
        return Ok(path.to_string());
    }
    // A scheme prefix other than `file:` (e.g. `s3:`, `http:`) is an
    // unsupported destination, not a funny filename. Windows-style drive
    // letters are not a concern on the supported platforms, and relative
    // paths never contain `:` before the first separator.
    if let Some((scheme, _)) = operand.split_once(':') {
        if !scheme.is_empty()
            && !scheme.contains('/')
            && scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "+-.".contains(c))
        {
            return Err(CliError::Invalid(format!(
                "unsupported destination scheme `{scheme}:` (only `file:` destinations \
                 and bare paths are supported)"
            )));
        }
    }
    Ok(operand.to_string())
}

fn cmd_derive(args: &Args) -> Result<String, CliError> {
    check_keys(
        args,
        &[
            "site",
            "class",
            "algorithm",
            "profile",
            "samples",
            "max-states",
            "seed",
            "jobs",
            "out",
            "telemetry",
        ],
    )?;
    let sites = parse_sites(args.required("site")?)?;
    let classes = parse_classes(args.required("class")?)?;
    let algorithm = parse_algorithm(args.or_default("algorithm", "iupma"))?;
    let profile = parse_profile(args.or_default("profile", "uniform:20:125"))?;
    let seed = args.parse_opt::<u64>("seed")?.unwrap_or(1);
    let samples = args.parse_opt::<usize>("samples")?;
    let max_states = args.parse_opt::<usize>("max-states")?.unwrap_or(6);
    let jobs = args.parse_opt::<usize>("jobs")?;
    let out_path = args.or_default("out", "catalog.txt").to_string();
    let telemetry_path = args.parse_opt::<String>("telemetry")?;
    let cfg = DerivationConfig {
        states: StatesConfig {
            max_states,
            ..StatesConfig::default()
        },
        sample_size: samples,
        ..DerivationConfig::default()
    };

    if sites.len() == 1 && classes.len() == 1 && jobs.is_none() {
        // Single site/class: the original serial path, with the generator
        // seeded exactly as before so existing catalogs reproduce.
        let (site, class) = (sites[0], classes[0]);
        let mut agent = site_agent(site, &profile, seed);
        let mut ctx = if telemetry_path.is_some() {
            agent.enable_trace(64);
            PipelineCtx::traced(seed.wrapping_add(1))
        } else {
            PipelineCtx::seeded(seed.wrapping_add(1))
        };
        let derived = derive_cost_model(&mut agent, class, algorithm, &cfg, &mut ctx)?;

        let store = FileCatalogStore::sniffing(&out_path);
        let mut snapshot = load_snapshot_or_empty(&out_path, &mut ctx.telemetry)?;
        snapshot
            .catalog
            .insert_model(site.id().into(), class, derived.model.clone());
        // Persist the fit's sufficient statistics too, so a later
        // `serve --loop` resumes incremental refits from the full sample.
        snapshot.catalog.insert_accumulator(
            site.id().into(),
            class,
            ModelAccumulator::from_observations(&derived.model, &derived.observations),
        );
        if let Some(est) = &derived.probe_estimator {
            snapshot
                .catalog
                .insert_probe_estimator(site.id().into(), est.clone());
        }
        // One model published on top of whatever the catalog held.
        snapshot.version += 1;
        store.store(&snapshot, &mut ctx.telemetry)?;

        let mut out = String::new();
        out.push_str(&format!(
            "derived {} at site `{}` ({} sample queries)\n",
            class.label(),
            site.id(),
            derived.observations.len()
        ));
        out.push_str(&format!(
            "  contention states: {} | R^2 = {:.3} | SEE = {:.3} | F p-value = {:.2e}\n",
            derived.model.num_states(),
            derived.model.fit.r_squared,
            derived.model.fit.see,
            derived.model.fit.f_p_value
        ));
        out.push_str(&format!(
            "  one-state comparison R^2 = {:.3}\n",
            derived.one_state.fit.r_squared
        ));
        out.push_str("\nper-state cost equations:\n");
        out.push_str(&derived.model.render());
        out.push_str(&format!("\ncatalog written to {out_path}\n"));
        if let Some(path) = &telemetry_path {
            out.push_str(&telemetry_section(&ctx.telemetry, agent.trace(), path)?);
        }
        return Ok(out);
    }

    // Batch path: fan every (site, class) pair out to the worker pool.
    // Each job's RNG streams are split from the root seed by the job key,
    // so the derived catalog is identical for every `--jobs` value.
    let batch = BatchConfig {
        derivation: cfg,
        workers: jobs,
    };
    let job_list: Vec<DeriveJob> = sites
        .iter()
        .flat_map(|site| {
            classes
                .iter()
                .map(|class| DeriveJob::new(site.id(), *class, algorithm))
        })
        .collect();
    let total = job_list.len();
    let mut ctx = if telemetry_path.is_some() {
        PipelineCtx::traced(seed)
    } else {
        PipelineCtx::seeded(seed)
    };
    let outcomes = derive_all(
        job_list,
        &batch,
        |job, env_seed| {
            let site = SiteName::parse(&job.site.0).expect("jobs built from parsed sites");
            site_agent(site, &profile, env_seed)
        },
        &mut ctx,
    );

    let registry = ModelRegistry::new();
    let store = FileCatalogStore::sniffing(&out_path);
    let mut snapshot = load_snapshot_or_empty(&out_path, &mut ctx.telemetry)?;
    let catalog = &mut snapshot.catalog;
    let mut lines = String::new();
    let mut ok = 0usize;
    for outcome in &outcomes {
        match &outcome.result {
            Ok(derived) => {
                ok += 1;
                registry.publish(
                    outcome.job.site.clone(),
                    outcome.job.class,
                    derived.model.clone(),
                );
                catalog.insert_model(
                    outcome.job.site.clone(),
                    outcome.job.class,
                    derived.model.clone(),
                );
                catalog.insert_accumulator(
                    outcome.job.site.clone(),
                    outcome.job.class,
                    ModelAccumulator::from_observations(&derived.model, &derived.observations),
                );
                if let Some(est) = &derived.probe_estimator {
                    catalog.insert_probe_estimator(outcome.job.site.clone(), est.clone());
                }
                lines.push_str(&format!(
                    "  {}: {} states | R^2 = {:.3} | SEE = {:.3} ({} samples)\n",
                    outcome.job.label(),
                    derived.model.num_states(),
                    derived.model.fit.r_squared,
                    derived.model.fit.see,
                    derived.observations.len()
                ));
            }
            Err(e) => lines.push_str(&format!("  {}: FAILED: {e}\n", outcome.job.label())),
        }
    }
    if ok == 0 {
        return Err(CliError::Invalid(format!(
            "all {total} derivation job(s) failed:\n{lines}"
        )));
    }
    // Each derived model is one publish on top of the loaded snapshot,
    // mirroring the registry's publish counter.
    snapshot.version += ok as u64;
    store.store(&snapshot, &mut ctx.telemetry)?;

    let mut out = format!(
        "derived {ok} of {total} model(s) across {} site(s)\n",
        sites.len()
    );
    out.push_str(&lines);
    out.push_str(&format!("catalog written to {out_path}\n"));
    if let Some(path) = &telemetry_path {
        registry.fold_metrics(&mut ctx.telemetry);
        out.push_str(&telemetry_section(&ctx.telemetry, None, path)?);
    }
    Ok(out)
}

fn cmd_estimate(args: &Args) -> Result<String, CliError> {
    check_keys(
        args,
        &[
            "catalog",
            "site",
            "sql",
            "profile",
            "seed",
            "execute",
            "telemetry",
        ],
    )?;
    let site = SiteName::parse(args.required("site")?)?;
    let catalog_path = args.required("catalog")?;
    let sql = args.required("sql")?;
    let profile = parse_profile(args.or_default("profile", "uniform:20:125"))?;
    let seed = args.parse_opt::<u64>("seed")?.unwrap_or(1);
    let telemetry_path = args.parse_opt::<String>("telemetry")?;

    let mut agent = site_agent(site, &profile, seed);
    let mut tel = if telemetry_path.is_some() {
        agent.enable_metrics();
        agent.enable_trace(16);
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let catalog = load_snapshot_or_empty(catalog_path, &mut tel)?.catalog;
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, sql).map_err(|e| CliError::Invalid(e.to_string()))?;
    let class = classify(&schema, &query)
        .ok_or_else(|| CliError::Invalid("query cannot be classified".into()))?;

    let span = tel.begin_span("estimate");
    tel.field(span, "class", class.label().to_string());
    agent.tick();
    let probe = agent.probe();
    tel.field(span, "probe_cost_s", probe);
    let site_id: SiteId = site.id().into();
    let Some(detail) = catalog.estimate(&EstimateQuery::raw(&site_id, &schema, &query, probe))
    else {
        return Err(CliError::Invalid(format!(
            "no cost model for {} at site `{}` in {catalog_path} — derive one first:\n  \
             mdbs-qcost derive --site {} --class {} --out {catalog_path}",
            class.label(),
            site.id(),
            site.id(),
            class_tag(class),
        )));
    };
    let estimate = detail.estimate;
    let mut out = String::new();
    out.push_str(&format!("query class: {}\n", class.label()));
    out.push_str(&format!(
        "probing cost: {probe:.3}s -> contention state {}\n",
        detail.state_label
    ));
    out.push_str(&format!("estimated cost: {estimate:.2}s\n"));
    tel.field(span, "estimated_cost_s", estimate);
    tel.field(span, "state", detail.state_label.clone());
    if args.flag("execute") {
        let exec = agent
            .run(&query)
            .map_err(|e| CliError::Invalid(e.to_string()))?;
        out.push_str(&format!("observed cost:  {:.2}s\n", exec.cost_s));
        let rel = (estimate - exec.cost_s).abs() / exec.cost_s.max(f64::MIN_POSITIVE);
        out.push_str(&format!("relative error: {:.0}%\n", rel * 100.0));
        tel.field(span, "observed_cost_s", exec.cost_s);
    }
    tel.end_span(span);
    if let Some(path) = &telemetry_path {
        if let Some(metrics) = agent.disable_metrics() {
            tel.merge_metrics(&metrics);
        }
        out.push_str(&telemetry_section(&tel, agent.trace(), path)?);
    }
    Ok(out)
}

/// Batch estimation: answer a file of queries from the catalog's in-memory
/// [`ModelRegistry`] on a pool of workers.
///
/// Each non-blank, non-`#` line of `--queries` is `SITE SQL...`. Every line
/// probes the site's contention with its own deterministic agent (seeded
/// from `--seed` and the line number, independent of worker count and
/// scheduling) and prices the query through the registry, so the report is
/// byte-identical for every `--jobs` value.
fn cmd_serve(args: &Args) -> Result<String, CliError> {
    check_keys(
        args,
        &[
            "catalog",
            "queries",
            "jobs",
            "profile",
            "seed",
            "telemetry",
            "loop",
            "trace",
            "queue",
            "batch",
            "batch-delay",
            "service-cost",
            "deadline",
            "refit",
            "drift-window",
            "drift-min",
            "drift-fraction",
            "algorithm",
            "heartbeat",
            "flight-recorder",
            "report-json",
            "correction",
            "correction-alpha",
            "correction-saturation",
            "ledger-cells",
        ],
    )?;
    if args.flag("loop") {
        return cmd_serve_loop(args);
    }
    for key in [
        "trace",
        "queue",
        "batch",
        "batch-delay",
        "service-cost",
        "deadline",
        "refit",
        "drift-window",
        "drift-min",
        "drift-fraction",
        "algorithm",
        "heartbeat",
        "flight-recorder",
        "report-json",
        "correction",
        "correction-alpha",
        "correction-saturation",
        "ledger-cells",
    ] {
        if args.parse_opt::<String>(key)?.is_some() {
            return Err(CliError::Invalid(format!(
                "`--{key}` only applies to `serve --loop`"
            )));
        }
    }
    let catalog_path = args.required("catalog")?;
    let queries_path = args.required("queries")?;
    let jobs = args.parse_opt::<usize>("jobs")?;
    let profile = parse_profile(args.or_default("profile", "uniform:20:125"))?;
    let seed = args.parse_opt::<u64>("seed")?.unwrap_or(1);
    let telemetry_path = args.parse_opt::<String>("telemetry")?;

    // The span covers the whole serve — parse, dispatch and aggregation —
    // not just the post-pool bookkeeping.
    let mut tel = if telemetry_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let snapshot = load_snapshot(catalog_path, &mut tel)?;
    let registry = ModelRegistry::from_snapshot(&snapshot);
    let queries = std::fs::read_to_string(queries_path)
        .map_err(io_err(format!("cannot read `{queries_path}`")))?;

    let span = tel.begin_span("serve");

    // A malformed line is that line's problem, not the batch's: it becomes
    // an inline failure row while every other line keeps being served.
    let mut rows: Vec<(usize, Option<bool>, String)> = Vec::new();
    let mut work: Vec<(usize, SiteName, String)> = Vec::new();
    for (i, raw) in queries.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = i + 1;
        let Some((site_word, sql)) = line.split_once(char::is_whitespace) else {
            let msg = format!("{queries_path}:{lineno}: expected `SITE SQL...`");
            rows.push((lineno, None, format!("  {lineno:>3} ERROR: {msg}\n")));
            continue;
        };
        match SiteName::parse(site_word) {
            Ok(site) => work.push((lineno, site, sql.trim().to_string())),
            Err(e) => {
                let msg = format!("{queries_path}:{lineno}: {e}");
                rows.push((lineno, None, format!("  {lineno:>3} ERROR: {msg}\n")));
            }
        }
    }
    let total = work.len() + rows.len();
    let workers = mdbs_core::pool::effective_workers(jobs, work.len());
    let (answers, report) = mdbs_core::pool::run_jobs(work, workers, |_, (lineno, site, sql)| {
        let answer = serve_query_line(&registry, &profile, queries_path, lineno, site, &sql, seed);
        (lineno, answer)
    });

    let mut answered = 0usize;
    let mut served = 0usize;
    for (lineno, answer) in answers {
        match answer {
            Ok((hit, line)) => {
                served += 1;
                answered += usize::from(hit);
                rows.push((lineno, Some(hit), line));
            }
            Err(msg) => rows.push((lineno, None, format!("  {lineno:>3} ERROR: {msg}\n"))),
        }
    }
    rows.sort_by_key(|&(lineno, _, _)| lineno);
    let failed = total - served;

    tel.field(span, "queries", total as u64);
    tel.field(span, "answered", answered as u64);
    tel.field(span, "failed", failed as u64);
    tel.inc("pool.jobs_completed", report.jobs_completed as u64);
    tel.inc("pool.sched.steals", report.steals);
    tel.gauge("pool.sched.workers", report.workers as f64);
    registry.fold_metrics(&mut tel);
    tel.end_span(span);

    if total > 0 && served == 0 {
        // Only a batch with *no* serviceable line is a hard failure.
        let details: String = rows.into_iter().map(|(_, _, line)| line).collect();
        return Err(CliError::Invalid(format!(
            "serve: all {total} quer(y/ies) failed:\n{details}"
        )));
    }

    let mut out = format!(
        "serve: {answered} of {total} quer(ies) answered from {catalog_path} ({} model(s))\n",
        registry.len()
    );
    if failed > 0 {
        out.push_str(&format!("  {failed} line(s) failed (reported inline)\n"));
    }
    for (_, _, line) in rows {
        out.push_str(&line);
    }
    if let Some(path) = &telemetry_path {
        out.push_str(&telemetry_section(&tel, None, path)?);
    }
    Ok(out)
}

/// Prices one `SITE SQL...` line against the registry (the batch `serve`
/// worker body). `Ok((hit, row))` serves the line — `hit` false means "no
/// model in catalog"; `Err` is a per-line failure message.
fn serve_query_line(
    registry: &ModelRegistry,
    profile: &mdbs_sim::ContentionProfile,
    queries_path: &str,
    lineno: usize,
    site: SiteName,
    sql: &str,
    seed: u64,
) -> Result<(bool, String), String> {
    let mut agent = site_agent(site, profile, split_stream(seed, lineno as u64));
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, sql).map_err(|e| format!("{queries_path}:{lineno}: {e}"))?;
    let class = classify(&schema, &query)
        .ok_or_else(|| format!("{queries_path}:{lineno}: query cannot be classified"))?;
    agent.tick();
    let probe = agent.probe();
    let site_id: SiteId = site.id().into();
    match registry.estimate(&EstimateQuery::raw(&site_id, &schema, &query, probe)) {
        Some(detail) => Ok((
            true,
            format!(
                "  {lineno:>3} {} {}: probe {probe:.3}s -> estimate {:.2}s\n",
                site.id(),
                class.label(),
                detail.estimate,
            ),
        )),
        None => Ok((
            false,
            format!(
                "  {lineno:>3} {} {}: no model in catalog (derive --site {} --class {})\n",
                site.id(),
                class.label(),
                site.id(),
                class_tag(class)
            ),
        )),
    }
}

/// The long-lived serving loop: replays a timestamped request/observation
/// trace through [`EstimationServer`] — micro-batched estimation over
/// registry snapshots with background maintenance (incremental refits and
/// drift-triggered rederivations) and deterministic backpressure, all in
/// virtual time. Output is byte-identical for every `--jobs` value.
fn cmd_serve_loop(args: &Args) -> Result<String, CliError> {
    let catalog_path = args.required("catalog")?;
    let trace_path = args.required("trace")?;
    let jobs = args.parse_opt::<usize>("jobs")?;
    let profile = parse_profile(args.or_default("profile", "uniform:20:125"))?;
    let seed = args.parse_opt::<u64>("seed")?.unwrap_or(1);
    let telemetry_path = args.parse_opt::<String>("telemetry")?;
    let algorithm = parse_algorithm(args.or_default("algorithm", "iupma"))?;
    // Every `--flag` maps onto a builder setter; unset flags keep the
    // builder defaults, and `build()` rejects degenerate combinations with
    // an actionable message instead of silently clamping.
    let builder = ServeConfig::builder()
        .workers(jobs)
        .correction(args.flag("correction"));
    let builder = args.apply_opt("queue", builder, ServeConfigBuilder::queue_capacity)?;
    let builder = args.apply_opt("batch", builder, ServeConfigBuilder::batch_max)?;
    let builder = args.apply_opt("batch-delay", builder, ServeConfigBuilder::batch_delay_s)?;
    let builder = args.apply_opt("service-cost", builder, ServeConfigBuilder::service_cost_s)?;
    let builder = args.apply_opt("deadline", builder, ServeConfigBuilder::deadline_s)?;
    let builder = args.apply_opt("refit", builder, ServeConfigBuilder::refit_threshold)?;
    let builder = args.apply_opt("heartbeat", builder, ServeConfigBuilder::heartbeat_s)?;
    let builder = args.apply_opt(
        "correction-alpha",
        builder,
        ServeConfigBuilder::correction_ewma_alpha,
    )?;
    let builder = args.apply_opt(
        "correction-saturation",
        builder,
        ServeConfigBuilder::correction_saturation,
    )?;
    let builder = args.apply_opt(
        "ledger-cells",
        builder,
        ServeConfigBuilder::ledger_max_cells,
    )?;
    let config = builder
        .build()
        .map_err(|e| CliError::Invalid(format!("serve --loop: {e}")))?;
    let flight_path = args.parse_opt::<String>("flight-recorder")?;
    let report_json_path = args.parse_opt::<String>("report-json")?;
    let mb = MaintenanceConfig::builder();
    let mb = args.apply_opt("drift-window", mb, MaintenanceConfigBuilder::window)?;
    let mb = args.apply_opt("drift-min", mb, MaintenanceConfigBuilder::min_observations)?;
    let mb = args.apply_opt(
        "drift-fraction",
        mb,
        MaintenanceConfigBuilder::min_good_fraction,
    )?;
    let maintenance = mb
        .build()
        .map_err(|e| CliError::Invalid(format!("serve --loop: {e}")))?;

    let mut ctx = if telemetry_path.is_some() {
        PipelineCtx::traced(seed)
    } else {
        PipelineCtx::seeded(seed)
    };
    let snapshot = load_snapshot(catalog_path, &mut ctx.telemetry)?;
    // The registry resumes version numbering from the snapshot, so models
    // republished by the loop version monotonically past the archive.
    let registry = ModelRegistry::from_snapshot(&snapshot);
    // Maintainers only for sites the CLI can build agents for; rederivation
    // needs to re-run the sampling pipeline against the live site.
    let fleet = fleet_from_snapshot(
        &snapshot,
        maintenance,
        DerivationConfig::quick(),
        algorithm,
        |site| SiteName::parse(&site.0).is_ok(),
    )?;
    let trace_text = std::fs::read_to_string(trace_path)
        .map_err(io_err(format!("cannot read `{trace_path}`")))?;
    let trace = RequestTrace::parse(&trace_text);
    if trace.is_empty() && !trace.errors.is_empty() {
        let details: String = trace
            .errors
            .iter()
            .map(|(lineno, msg)| format!("  {trace_path}:{lineno}: {msg}\n"))
            .collect();
        return Err(CliError::Invalid(format!(
            "serve --loop: no well-formed trace line in {trace_path}:\n{details}"
        )));
    }
    let mut server = EstimationServer::new(registry, fleet, config);
    let report = server.run(
        &trace,
        |site: &SiteId, agent_seed: u64| {
            SiteName::parse(&site.0)
                .ok()
                .map(|s| site_agent(s, &profile, agent_seed))
        },
        &mut ctx,
    );

    let mut out = format!(
        "serve --loop: trace {trace_path} against {catalog_path} ({} maintained model(s))\n",
        server.fleet().len()
    );
    out.push_str(&report.rendered);
    out.push_str(&format!(
        "throughput: {:.2} answered/virtual-s\n",
        report.throughput_per_virtual_s()
    ));
    if let Some(path) = &flight_path {
        let recorder = server.recorder();
        std::fs::write(path, recorder.dump_jsonl())
            .map_err(io_err(format!("cannot write `{path}`")))?;
        out.push_str(&format!(
            "flight recorder: {} record(s) ({} request(s), {} event(s)) written to {path}\n",
            recorder.len(),
            recorder.request_len(),
            recorder.event_len(),
        ));
    }
    if let Some(path) = &report_json_path {
        let mut body = report.to_json().render();
        body.push('\n');
        std::fs::write(path, body).map_err(io_err(format!("cannot write `{path}`")))?;
        out.push_str(&format!("report json: written to {path}\n"));
    }
    if let Some(path) = &telemetry_path {
        out.push_str(&telemetry_section(&ctx.telemetry, None, path)?);
    }
    Ok(out)
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    check_keys(args, &["site", "sql", "procs", "seed", "telemetry"])?;
    let site = SiteName::parse(args.required("site")?)?;
    let sql = args.required("sql")?;
    let procs = args.parse_opt::<f64>("procs")?.unwrap_or(0.0);
    let seed = args.parse_opt::<u64>("seed")?.unwrap_or(1);
    let telemetry_path = args.parse_opt::<String>("telemetry")?;
    let mut agent = site.agent(seed);
    let mut tel = if telemetry_path.is_some() {
        agent.enable_metrics();
        agent.enable_trace(16);
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    agent.set_load(mdbs_sim::contention::Load::background(procs));
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, sql).map_err(|e| CliError::Invalid(e.to_string()))?;
    let span = tel.begin_span("run");
    tel.field(span, "procs", procs);
    let exec = agent
        .run(&query)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let access = exec.access.to_string();
    let result_card = match exec.sizes {
        mdbs_sim::agent::ExecutionSizes::Unary(s) => s.result,
        mdbs_sim::agent::ExecutionSizes::Join(s) => s.result,
    };
    tel.field(span, "access", access.clone());
    tel.field(span, "result_card", result_card);
    tel.field(span, "cost_s", exec.cost_s);
    tel.end_span(span);
    let mut out = format!(
        "site `{}` under {procs:.0} background processes\n\
         access path: {access}\nresult tuples: {result_card}\n\
         elapsed: {:.2}s\n",
        site.id(),
        exec.cost_s
    );
    if let Some(path) = &telemetry_path {
        if let Some(metrics) = agent.disable_metrics() {
            tel.merge_metrics(&metrics);
        }
        out.push_str(&telemetry_section(&tel, agent.trace(), path)?);
    }
    Ok(out)
}

fn cmd_catalog(args: &Args) -> Result<String, CliError> {
    check_keys(args, &["file"])?;
    let path = args.required("file")?;
    let store = FileCatalogStore::sniffing(path);
    let snapshot = store
        .load(&mut Telemetry::disabled())
        .map_err(CliError::from)?;
    let catalog = &snapshot.catalog;
    let mut out = format!(
        "catalog {path}: {} model(s), {} format, snapshot version {}\n",
        catalog.len(),
        store.format().as_str(),
        snapshot.version
    );
    for site in catalog.sites() {
        for class in catalog.classes_for(&site) {
            let m = catalog.model(&site, class).expect("listed");
            out.push_str(&format!(
                "  {site} / {:<28} {} states, {} vars [{}], R^2 = {:.3}\n",
                class.label(),
                m.num_states(),
                m.num_variables(),
                m.var_names.join(", "),
                m.fit.r_squared
            ));
        }
        if catalog.probe_estimator(&site).is_some() {
            out.push_str(&format!("  {site} / probing-cost estimator (eq. 2)\n"));
        }
    }
    Ok(out)
}

/// `archive`: snapshot a catalog into a destination file, defaulting to
/// the compact binary format (load is parse-free, floats round-trip bit
/// for bit). The reverse escape hatch `--format text` re-encodes a binary
/// archive back into the human-readable interchange form.
fn cmd_archive(args: &Args) -> Result<String, CliError> {
    check_keys(args, &["catalog", "dest", "format"])?;
    let catalog_path = args.required("catalog")?;
    let dest = parse_destination(args.required("dest")?)?;
    let format = CatalogFormat::parse(args.or_default("format", "binary"))
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let mut tel = Telemetry::disabled();
    let snapshot = load_snapshot(catalog_path, &mut tel)?;
    FileCatalogStore::new(&dest, format).store(&snapshot, &mut tel)?;
    let bytes = std::fs::metadata(&dest).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "archived {catalog_path} -> {dest}\n  {} model(s), snapshot version {}, {} format, {bytes} bytes\n",
        snapshot.catalog.len(),
        snapshot.version,
        format.as_str(),
    ))
}

/// `restore`: materialize an archive (replaying any appended delta chain)
/// back into a catalog file, defaulting to the text interchange format.
fn cmd_restore(args: &Args) -> Result<String, CliError> {
    check_keys(args, &["archive", "out", "format"])?;
    let archive = parse_destination(args.required("archive")?)?;
    let out_path = args.required("out")?;
    let format = CatalogFormat::parse(args.or_default("format", "text"))
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let mut tel = Telemetry::disabled();
    let snapshot = load_snapshot(&archive, &mut tel)?;
    FileCatalogStore::new(out_path, format).store(&snapshot, &mut tel)?;
    Ok(format!(
        "restored {archive} -> {out_path}\n  {} model(s), snapshot version {}, {} format\n",
        snapshot.catalog.len(),
        snapshot.version,
        format.as_str(),
    ))
}

/// Renders a telemetry or flight-recorder JSONL file back into tables:
/// heartbeat time series, the per-site/per-state accuracy ledger, and a
/// census of record kinds. Every line is strictly re-parsed through the
/// same JSON implementation that wrote it, so a clean `stats` run doubles
/// as schema validation for the emitted file.
fn cmd_stats(args: &Args) -> Result<String, CliError> {
    check_keys(args, &["file"])?;
    let path = match (args.parse_opt::<String>("file")?, args.positional()) {
        (Some(p), []) => p,
        (None, [p]) => p.clone(),
        (None, []) => {
            return Err(CliError::Invalid(
                "stats: give a JSONL file (`mdbs-qcost stats telemetry.jsonl`)".into(),
            ))
        }
        _ => {
            return Err(CliError::Invalid(
                "stats: give exactly one JSONL file".into(),
            ))
        }
    };
    let text = std::fs::read_to_string(&path).map_err(io_err(format!("cannot read `{path}`")))?;
    render_stats(&path, &text)
}

/// The testable body of `stats`: parses `text` (one JSON object per line)
/// and renders the tables. Fails on the first line that is not a record
/// this workspace could have written.
fn render_stats(path: &str, text: &str) -> Result<String, CliError> {
    use mdbs_obs::json::{parse, Json};

    fn num(obj: &Json, key: &str) -> f64 {
        obj.get(key).and_then(Json::as_f64).unwrap_or(0.0)
    }

    let mut lines = 0usize;
    let mut spans = 0usize;
    let mut metrics = 0usize;
    let mut flights = std::collections::BTreeMap::<String, usize>::new();
    let mut heartbeats: Vec<Json> = Vec::new();
    // (site, state) -> [n, mean_rel, p50, p95] folded from the ledger metrics.
    let mut ledger = std::collections::BTreeMap::<(String, String), [f64; 4]>::new();

    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse(line)
            .map_err(|e| CliError::Invalid(format!("{path}:{}: not a JSON record: {e}", i + 1)))?;
        lines += 1;
        match value.get("type").and_then(Json::as_str).unwrap_or("") {
            "span" => {
                spans += 1;
                if value.get("name").and_then(Json::as_str) == Some("serve.heartbeat") {
                    if let Some(fields) = value.get("fields") {
                        heartbeats.push(fields.clone());
                    }
                }
            }
            "counter" | "gauge" | "histogram" => {
                metrics += 1;
                let name = value.get("name").and_then(Json::as_str).unwrap_or("");
                if let Some(rest) = name.strip_prefix("serve.ledger.") {
                    // serve.ledger.<site>.<state>.<metric>; the state label
                    // (`S1`...) never contains a dot, the site id may.
                    if let Some((cell, metric)) = rest.rsplit_once('.') {
                        if let Some((site, state)) = cell.rsplit_once('.') {
                            let row = ledger
                                .entry((site.to_string(), state.to_string()))
                                .or_default();
                            match metric {
                                "mean_rel_err" => row[1] = num(&value, "value"),
                                "abs_rel_err" => {
                                    row[0] = num(&value, "count");
                                    row[2] = num(&value, "p50");
                                    row[3] = num(&value, "p95");
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
            "flight" => {
                let kind = value.get("kind").and_then(Json::as_str).unwrap_or("?");
                *flights.entry(kind.to_string()).or_default() += 1;
                if kind == "heartbeat" {
                    heartbeats.push(value.clone());
                }
            }
            other => {
                return Err(CliError::Invalid(format!(
                    "{path}:{}: unknown record type `{other}`",
                    i + 1
                )))
            }
        }
    }

    let mut out = format!(
        "stats {path}: {lines} record(s) — {spans} span(s), {metrics} metric(s), {} flight record(s)\n",
        flights.values().sum::<usize>()
    );
    if !flights.is_empty() {
        out.push_str("flight records by kind:\n");
        for (kind, n) in &flights {
            out.push_str(&format!("  {kind:<16} {n}\n"));
        }
    }
    if !heartbeats.is_empty() {
        out.push_str("heartbeats:\n");
        out.push_str(
            "      at_s  queue  requests  answered  shed  batches  observations  refits  rederives  registry\n",
        );
        for hb in &heartbeats {
            let shed = num(hb, "shed_queue_full") + num(hb, "shed_deadline");
            out.push_str(&format!(
                "  {:>8.3}  {:>5}  {:>8}  {:>8}  {:>4}  {:>7}  {:>12}  {:>6}  {:>9}  {:>8}\n",
                num(hb, "at_s"),
                num(hb, "queue_depth") as u64,
                num(hb, "requests") as u64,
                num(hb, "answered") as u64,
                shed as u64,
                num(hb, "batches") as u64,
                num(hb, "observations") as u64,
                num(hb, "incremental_refits") as u64,
                num(hb, "rederivations") as u64,
                num(hb, "registry_version") as u64,
            ));
        }
    }
    if !ledger.is_empty() {
        out.push_str("accuracy ledger (site x state):\n");
        for ((site, state), row) in &ledger {
            out.push_str(&format!(
                "  {site}/{state}: n={} mean rel {:+.1}% |rel| p50 {:.1}% p95 {:.1}%\n",
                row[0] as u64,
                row[1] * 100.0,
                row[2] * 100.0,
                row[3] * 100.0,
            ));
        }
    }
    Ok(out)
}

fn class_tag(class: QueryClass) -> &'static str {
    match class {
        QueryClass::UnaryNoIndex => "g1",
        QueryClass::UnaryNonClusteredIndex => "g2",
        QueryClass::UnaryClusteredIndex => "gc",
        QueryClass::JoinNoIndex => "g3",
        QueryClass::JoinIndexed => "gj",
    }
}

/// The single reporting path for telemetry: writes the events as JSONL to
/// `path` and returns the human-readable section (telemetry summary plus,
/// when present, the agent's execution-trace report).
fn telemetry_section(
    tel: &Telemetry,
    trace: Option<&ExecutionTrace>,
    path: &str,
) -> Result<String, CliError> {
    let mut sink = JsonlFileSink::create(std::path::Path::new(path))
        .map_err(io_err(format!("cannot create telemetry file `{path}`")))?;
    tel.emit_to(&mut sink);
    sink.finish()
        .map_err(io_err(format!("cannot write telemetry file `{path}`")))?;
    let mut out = format!(
        "\ntelemetry: {} event(s) written to {path}\n",
        tel.events().len()
    );
    out.push_str(&tel.render_summary());
    if let Some(trace) = trace {
        out.push_str(&trace.report());
    }
    Ok(out)
}

fn check_keys(args: &Args, known: &[&str]) -> Result<(), CliError> {
    let unknown = args.unknown_keys(known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(CliError::Invalid(format!(
            "unknown option(s): {}",
            unknown
                .iter()
                .map(|k| format!("--{k}"))
                .collect::<Vec<_>>()
                .join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbs_core::catalog::GlobalCatalog;

    fn argv(s: &str) -> Vec<String> {
        // Split on spaces except inside single quotes (for --sql).
        let mut out = Vec::new();
        let mut cur = String::new();
        let mut quoted = false;
        for ch in s.chars() {
            match ch {
                '\'' => quoted = !quoted,
                ' ' if !quoted => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                }
                _ => cur.push(ch),
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mdbs-cli-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_lists_subcommands() {
        let out = dispatch(&argv("help")).unwrap();
        for cmd in ["derive", "estimate", "serve", "run", "catalog"] {
            assert!(out.contains(cmd), "help misses {cmd}");
        }
    }

    #[test]
    fn unknown_subcommand_mentions_usage() {
        let e = dispatch(&argv("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("unknown subcommand"));
        assert!(e.to_string().contains("USAGE"));
    }

    #[test]
    fn run_executes_sql() {
        let out = dispatch(&argv(
            "run --site oracle --sql 'select a1, a5 from R7 where a3 > 300 and a8 < 2000' --procs 60",
        ))
        .unwrap();
        assert!(out.contains("access path"), "{out}");
        assert!(out.contains("elapsed"), "{out}");
    }

    #[test]
    fn run_rejects_bad_sql() {
        let e = dispatch(&argv("run --site oracle --sql 'select from'")).unwrap_err();
        assert!(e.to_string().contains("SQL error"), "{e}");
    }

    #[test]
    fn derive_then_estimate_roundtrip() {
        let path = tmp("roundtrip-catalog.txt");
        let _ = std::fs::remove_file(&path);
        let out = dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 160 --max-states 3 --out {path}"
        )))
        .unwrap();
        assert!(out.contains("contention states"), "{out}");
        assert!(std::path::Path::new(&path).exists());

        let out = dispatch(&argv(&format!(
            "estimate --catalog {path} --site oracle \
             --sql 'select a1, a5 from R8 where a5 > 100 and a6 < 500' --execute"
        )))
        .unwrap();
        assert!(out.contains("estimated cost"), "{out}");
        assert!(out.contains("observed cost"), "{out}");

        let out = dispatch(&argv(&format!("catalog --file {path}"))).unwrap();
        assert!(out.contains("G1"), "{out}");
    }

    #[test]
    fn estimate_without_model_suggests_derive() {
        let path = tmp("empty-catalog.txt");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, GlobalCatalog::new().export()).unwrap();
        let e = dispatch(&argv(&format!(
            "estimate --catalog {path} --site db2 --sql 'select a1 from R2 where a2 < 100'"
        )))
        .unwrap_err();
        assert!(e.to_string().contains("derive one first"), "{e}");
        assert!(e.to_string().contains("--class g1"), "{e}");
    }

    #[test]
    fn typoed_flag_is_caught() {
        let e = dispatch(&argv(
            "run --site oracle --sql 'select a1 from R2' --porcs 9",
        ))
        .unwrap_err();
        assert!(e.to_string().contains("--porcs"), "{e}");
    }

    #[test]
    fn derive_supports_icma_and_clustered_profiles() {
        let path = tmp("icma-catalog.txt");
        let _ = std::fs::remove_file(&path);
        let out = dispatch(&argv(&format!(
            "derive --site db2 --class g1 --algorithm icma --profile clustered \
             --samples 150 --max-states 3 --out {path}"
        )))
        .unwrap();
        assert!(out.contains("contention states"), "{out}");
    }

    #[test]
    fn derive_rejects_bad_options() {
        for bad in [
            "derive --site teradata --class g1",
            "derive --site oracle --class g9",
            "derive --site oracle,postgres --class g1",
            "derive --site oracle --class g1,gx",
            "derive --site oracle --class g1 --algorithm kmeans",
            "derive --site oracle --class g1 --profile uniform:bad:10",
        ] {
            assert!(dispatch(&argv(bad)).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn catalog_command_reports_unreadable_files() {
        let e = dispatch(&argv("catalog --file /nonexistent/nowhere.txt")).unwrap_err();
        assert!(e.to_string().contains("cannot read"), "{e}");
        let path = tmp("garbage.txt");
        std::fs::write(&path, "not a catalog at all").unwrap();
        assert!(dispatch(&argv(&format!("catalog --file {path}"))).is_err());
    }

    #[test]
    fn errors_carry_structured_causes_and_exit_codes() {
        use std::error::Error as _;

        let core = CliError::from(mdbs_core::CoreError::InsufficientSamples { needed: 9, got: 1 });
        assert!(matches!(
            core,
            CliError::Core(mdbs_core::CoreError::InsufficientSamples { needed: 9, .. })
        ));
        assert!(core.source().is_some(), "core errors chain their cause");
        assert_eq!(core.exit_code(), 4);

        let args = CliError::from(ArgsError("bad flag".into()));
        assert!(args.source().is_some());
        assert_eq!(args.exit_code(), 2);

        let io = dispatch(&argv("catalog --file /nonexistent/nowhere.txt")).unwrap_err();
        assert!(matches!(io, CliError::Io { .. }), "{io:?}");
        assert!(io.source().is_some());
        assert_eq!(io.exit_code(), 3);

        let invalid = dispatch(&argv("frobnicate")).unwrap_err();
        assert_eq!(invalid.exit_code(), 2);
    }

    #[test]
    fn derive_batch_catalog_is_identical_across_worker_counts() {
        let p1 = tmp("batch-j1-catalog.txt");
        let p2 = tmp("batch-j4-catalog.txt");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
        let out = dispatch(&argv(&format!(
            "derive --site oracle,db2 --class g1 --samples 150 --max-states 3 \
             --jobs 1 --out {p1}"
        )))
        .unwrap();
        assert!(out.contains("derived 2 of 2 model(s)"), "{out}");
        assert!(out.contains("oracle/"), "{out}");
        assert!(out.contains("db2/"), "{out}");
        dispatch(&argv(&format!(
            "derive --site oracle,db2 --class g1 --samples 150 --max-states 3 \
             --jobs 4 --out {p2}"
        )))
        .unwrap();
        let c1 = std::fs::read_to_string(&p1).unwrap();
        let c2 = std::fs::read_to_string(&p2).unwrap();
        assert!(!c1.trim().is_empty());
        assert_eq!(c1, c2, "batch catalog must not depend on worker count");
    }

    #[test]
    fn serve_answers_queries_in_input_order_independent_of_workers() {
        let cat = tmp("serve-catalog.txt");
        let _ = std::fs::remove_file(&cat);
        dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 150 --max-states 3 --out {cat}"
        )))
        .unwrap();
        let qf = tmp("serve-queries.txt");
        std::fs::write(
            &qf,
            "# batch estimation smoke\n\
             oracle select a1, a5 from R8 where a5 > 100 and a6 < 500\n\
             \n\
             db2 select a1 from R2 where a2 < 100\n",
        )
        .unwrap();
        let out = dispatch(&argv(&format!(
            "serve --catalog {cat} --queries {qf} --jobs 2"
        )))
        .unwrap();
        assert!(out.contains("1 of 2 quer(ies) answered"), "{out}");
        assert!(out.contains("estimate"), "{out}");
        assert!(out.contains("no model in catalog"), "{out}");
        let oracle_at = out.find(" oracle ").expect("oracle answer line");
        let db2_at = out.find(" db2 ").expect("db2 answer line");
        assert!(oracle_at < db2_at, "answers must keep input order:\n{out}");
        let serial = dispatch(&argv(&format!(
            "serve --catalog {cat} --queries {qf} --jobs 1"
        )))
        .unwrap();
        assert_eq!(out, serial, "serve output must not depend on worker count");
    }

    #[test]
    fn serve_keeps_serving_good_lines_when_some_are_bad() {
        // Regression: one malformed line used to discard the whole batch
        // after the pool had already computed every answer.
        let cat = tmp("serve-mixed-catalog.txt");
        let _ = std::fs::remove_file(&cat);
        dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 150 --max-states 3 --out {cat}"
        )))
        .unwrap();
        let qf = tmp("serve-mixed-queries.txt");
        std::fs::write(
            &qf,
            "oracle select a1 from R2 where a2 < 100\n\
             oracle select bogus syntax here\n\
             teradata select a1 from R2 where a2 < 100\n\
             oracle select a1, a5 from R8 where a5 > 100 and a6 < 500\n",
        )
        .unwrap();
        let out = dispatch(&argv(&format!(
            "serve --catalog {cat} --queries {qf} --jobs 2"
        )))
        .unwrap();
        assert!(out.contains("2 of 4 quer(ies) answered"), "{out}");
        assert!(out.contains("2 line(s) failed"), "{out}");
        assert!(out.contains(&format!("{qf}:2")), "bad SQL located:\n{out}");
        assert!(out.contains("unknown site"), "{out}");
        // Failure rows stay inline, in line-number order with the answers.
        let l1 = out.find("  1 oracle").expect("line 1 answered");
        let l2 = out.find("  2 ERROR").expect("line 2 failed inline");
        let l3 = out.find("  3 ERROR").expect("line 3 failed inline");
        let l4 = out.find("  4 oracle").expect("line 4 answered");
        assert!(
            l1 < l2 && l2 < l3 && l3 < l4,
            "rows keep input order:\n{out}"
        );
        let serial = dispatch(&argv(&format!(
            "serve --catalog {cat} --queries {qf} --jobs 1"
        )))
        .unwrap();
        assert_eq!(out, serial, "mixed output must not depend on worker count");
    }

    #[test]
    fn serve_reports_malformed_query_lines_with_location() {
        let cat = tmp("serve-bad-catalog.txt");
        std::fs::write(&cat, GlobalCatalog::new().export()).unwrap();
        let qf = tmp("serve-bad-queries.txt");
        std::fs::write(&qf, "oracle\n").unwrap();
        let e = dispatch(&argv(&format!("serve --catalog {cat} --queries {qf}"))).unwrap_err();
        assert!(e.to_string().contains(":1"), "{e}");
        std::fs::write(&qf, "teradata select a1 from R2\n").unwrap();
        let e = dispatch(&argv(&format!("serve --catalog {cat} --queries {qf}"))).unwrap_err();
        assert!(e.to_string().contains("unknown site"), "{e}");
    }

    #[test]
    fn run_telemetry_writes_parseable_jsonl_and_folds_the_trace_report() {
        let path = tmp("run-telemetry.jsonl");
        let _ = std::fs::remove_file(&path);
        let out = dispatch(&argv(&format!(
            "run --site oracle --sql 'select a1, a5 from R7 where a3 > 300 and a8 < 2000' \
             --procs 40 --telemetry {path}"
        )))
        .unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        assert!(out.contains("engine.executions"), "{out}");
        // The agent's execution-trace report rides in the same section
        // (single reporting path, no separate trace output).
        assert!(out.contains("trace: "), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.trim().is_empty(), "telemetry file is empty");
        for line in text.lines() {
            mdbs_obs::json::parse(line)
                .unwrap_or_else(|e| panic!("unparseable telemetry line `{line}`: {e:?}"));
        }
    }

    #[test]
    fn derive_telemetry_emits_one_span_per_stage() {
        let catalog = tmp("telemetry-catalog.txt");
        let events = tmp("derive-telemetry.jsonl");
        let _ = std::fs::remove_file(&catalog);
        let _ = std::fs::remove_file(&events);
        let out = dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 150 --max-states 3 \
             --out {catalog} --telemetry {events}"
        )))
        .unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        let text = std::fs::read_to_string(&events).unwrap();
        for stage in [
            "derive.sampling",
            "derive.states",
            "derive.selection",
            "derive.fit",
            "derive.validation",
        ] {
            let n = text
                .lines()
                .filter(|l| l.contains(&format!("\"name\":\"{stage}\"")))
                .count();
            assert_eq!(n, 1, "expected exactly one `{stage}` span, got {n}");
        }
    }

    #[test]
    fn batch_derive_telemetry_nests_per_job_spans_under_derive_all() {
        let catalog = tmp("batch-telemetry-catalog.txt");
        let events = tmp("batch-telemetry.jsonl");
        let _ = std::fs::remove_file(&catalog);
        let _ = std::fs::remove_file(&events);
        dispatch(&argv(&format!(
            "derive --site oracle,db2 --class g1 --samples 150 --max-states 3 \
             --jobs 2 --out {catalog} --telemetry {events}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&events).unwrap();
        let derive_all_spans = text
            .lines()
            .filter(|l| l.contains("\"name\":\"derive_all\""))
            .count();
        assert_eq!(derive_all_spans, 1, "{text}");
        let sampling_spans = text
            .lines()
            .filter(|l| l.contains("\"name\":\"derive.sampling\""))
            .count();
        assert_eq!(sampling_spans, 2, "one per job:\n{text}");
        assert!(text.contains("registry.publishes"), "{text}");
    }

    #[test]
    fn telemetry_path_errors_are_reported_not_panicked() {
        let e = dispatch(&argv(
            "run --site oracle --sql 'select a1 from R2 where a2 < 100' \
             --telemetry /nonexistent/dir/t.jsonl",
        ))
        .unwrap_err();
        assert!(e.to_string().contains("telemetry"), "{e}");
        assert_eq!(e.exit_code(), 3);
    }

    #[test]
    fn serve_loop_observability_end_to_end() {
        use mdbs_obs::json::Json;

        let cat = tmp("loop-obs-catalog.txt");
        let _ = std::fs::remove_file(&cat);
        dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 150 --max-states 3 --seed 7 --out {cat}"
        )))
        .unwrap();
        let trace = tmp("loop-obs.trace");
        std::fs::write(
            &trace,
            "@0.0 request oracle select a1 from R2 where a2 < 100\n\
             @1.0 observe oracle select a1 from R2 where a2 < 100\n\
             @2.0 request oracle select a3 from R4 where a4 > 200\n\
             @3.0 observe oracle select a3 from R4 where a4 > 200\n\
             @9.0 request oracle select a1 from R2 where a2 < 100\n",
        )
        .unwrap();
        let tel = tmp("loop-obs-tel.jsonl");
        let flight = tmp("loop-obs-flight.jsonl");
        let report = tmp("loop-obs-report.json");
        let out = dispatch(&argv(&format!(
            "serve --loop --catalog {cat} --trace {trace} --seed 7 --heartbeat 4 \
             --flight-recorder {flight} --report-json {report} --telemetry {tel}"
        )))
        .unwrap();
        assert!(out.contains("heartbeat(s)"), "{out}");
        assert!(out.contains("accuracy ledger"), "{out}");
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(out.contains("report json: written"), "{out}");

        // The machine-readable report round-trips and carries the ledger.
        let rep = std::fs::read_to_string(&report).unwrap();
        let rep = mdbs_obs::json::parse(&rep).unwrap();
        assert!(
            matches!(rep.get("ledger"), Some(Json::Arr(rows)) if !rows.is_empty()),
            "report json must carry a non-empty ledger: {}",
            rep.render()
        );
        assert!(rep.get("heartbeats").and_then(Json::as_i64).unwrap_or(0) >= 2);

        // `stats` renders both emitted files back into tables.
        let st = dispatch(&argv(&format!("stats {tel}"))).unwrap();
        assert!(st.contains("heartbeats:"), "{st}");
        assert!(st.contains("accuracy ledger"), "{st}");
        let sf = dispatch(&argv(&format!("stats --file {flight}"))).unwrap();
        assert!(sf.contains("flight records by kind:"), "{sf}");
        assert!(sf.contains("request"), "{sf}");
        assert!(sf.contains("heartbeat"), "{sf}");
    }

    #[test]
    fn stats_rejects_bad_input() {
        assert!(dispatch(&argv("stats")).is_err());
        assert!(dispatch(&argv("stats /nonexistent/nowhere.jsonl")).is_err());
        let bad = tmp("stats-bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        let e = dispatch(&argv(&format!("stats {bad}"))).unwrap_err();
        assert!(e.to_string().contains(":1"), "{e}");
        assert!(dispatch(&argv(&format!("stats {bad} extra.jsonl"))).is_err());
        let alien = tmp("stats-alien.jsonl");
        std::fs::write(&alien, "{\"type\":\"mystery\"}\n").unwrap();
        let e = dispatch(&argv(&format!("stats {alien}"))).unwrap_err();
        assert!(e.to_string().contains("unknown record type"), "{e}");
    }

    #[test]
    fn operands_rejected_outside_stats() {
        let e = dispatch(&argv("derive oops --site oracle")).unwrap_err();
        assert!(e.to_string().contains("unexpected operand"), "{e}");
    }

    #[test]
    fn derive_accumulates_into_the_same_catalog() {
        let path = tmp("accumulate-catalog.txt");
        let _ = std::fs::remove_file(&path);
        dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 150 --max-states 3 --out {path}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "derive --site db2 --class g1 --samples 150 --max-states 3 --out {path}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let catalog = GlobalCatalog::import(&text).unwrap();
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.sites().len(), 2);
    }

    /// text → binary archive → restored text must reproduce the original
    /// catalog bytes exactly, and every catalog-reading command accepts
    /// the binary archive transparently.
    #[test]
    fn archive_restore_round_trips_catalog_bytes() {
        let path = tmp("archive-catalog.txt");
        let arch = tmp("archive-catalog.mdbc");
        let back = tmp("archive-catalog-restored.txt");
        for p in [&path, &arch, &back] {
            let _ = std::fs::remove_file(p);
        }
        dispatch(&argv(&format!(
            "derive --site oracle --class g1 --samples 150 --max-states 3 --out {path}"
        )))
        .unwrap();

        let out = dispatch(&argv(&format!(
            "archive --catalog {path} --dest file:{arch}"
        )))
        .unwrap();
        assert!(out.contains("binary format"), "{out}");
        let out = dispatch(&argv(&format!(
            "restore --archive file:{arch} --out {back}"
        )))
        .unwrap();
        assert!(out.contains("text format"), "{out}");

        let original = std::fs::read(&path).unwrap();
        let restored = std::fs::read(&back).unwrap();
        assert_eq!(original, restored, "restore must be byte-identical");
        let archived = std::fs::read(&arch).unwrap();
        assert!(archived.starts_with(b"MDBC"), "archive is not binary");
        assert!(
            archived.len() * 2 <= original.len(),
            "binary archive not compact: {} vs {} bytes",
            archived.len(),
            original.len()
        );

        // The binary archive is a first-class catalog everywhere else.
        let out = dispatch(&argv(&format!("catalog --file {arch}"))).unwrap();
        assert!(out.contains("binary format"), "{out}");
        assert!(out.contains("G1"), "{out}");
        let out = dispatch(&argv(&format!(
            "estimate --catalog {arch} --site oracle \
             --sql 'select a1, a5 from R8 where a5 > 100 and a6 < 500'"
        )))
        .unwrap();
        assert!(out.contains("estimated cost"), "{out}");
    }

    #[test]
    fn archive_rejects_remote_destination_schemes() {
        let path = tmp("archive-scheme-catalog.txt");
        std::fs::write(&path, GlobalCatalog::new().export()).unwrap();
        let e = dispatch(&argv(&format!(
            "archive --catalog {path} --dest s3:bucket/catalog.mdbc"
        )))
        .unwrap_err();
        assert!(
            e.to_string()
                .contains("unsupported destination scheme `s3:`"),
            "{e}"
        );
        assert_eq!(e.exit_code(), 2);

        let e = dispatch(&argv(&format!(
            "archive --catalog {path} --dest file: --format text"
        )))
        .unwrap_err();
        assert!(e.to_string().contains("names no path"), "{e}");

        let e = dispatch(&argv(&format!(
            "archive --catalog {path} --dest {path}.out --format sideways"
        )))
        .unwrap_err();
        assert!(e.to_string().contains("unknown catalog format"), "{e}");
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn restore_maps_archive_failures_onto_exit_codes() {
        // Missing archive: IO failure, exit 3.
        let e = dispatch(&argv(
            "restore --archive /nonexistent/a.mdbc --out /tmp/x.txt",
        ))
        .unwrap_err();
        assert!(matches!(e, CliError::Io { .. }), "{e:?}");
        assert_eq!(e.exit_code(), 3);

        // Truncated binary archive: corrupt catalog, exit 4.
        let arch = tmp("truncated.mdbc");
        std::fs::write(&arch, b"MDBC\x01\x00\x00\x00S").unwrap();
        let out = tmp("truncated-restore.txt");
        let e = dispatch(&argv(&format!("restore --archive {arch} --out {out}"))).unwrap_err();
        assert!(matches!(e, CliError::Core(_)), "{e:?}");
        assert_eq!(e.exit_code(), 4);
        assert!(e.to_string().contains("catalog binary error"), "{e}");
    }
}
