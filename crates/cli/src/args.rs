//! A tiny `--flag value` argument parser.
//!
//! The workspace's dependency budget has no `clap`; the CLI's needs — a
//! subcommand word followed by `--key value` pairs, plus bare positional
//! operands (`stats telemetry.jsonl`) — fit in a page of code with better
//! error messages than ad-hoc `args()` indexing.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options and bare
/// positional operands.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand word (first non-flag argument).
    pub command: String,
    options: BTreeMap<String, String>,
    positional: Vec<String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgsError(pub String);

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, ArgsError> {
        let mut it = argv.iter().peekable();
        let command = match it.next() {
            Some(c) if !c.starts_with("--") => c.clone(),
            Some(c) => return Err(ArgsError(format!("expected a subcommand, got `{c}`"))),
            None => return Err(ArgsError("no subcommand given (try `help`)".into())),
        };
        let mut options = BTreeMap::new();
        let mut positional = Vec::new();
        while let Some(flag) = it.next() {
            let Some(key) = flag.strip_prefix("--") else {
                // A bare word is a positional operand (e.g. the file in
                // `stats telemetry.jsonl`).
                positional.push(flag.clone());
                continue;
            };
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                // Valueless flags are booleans.
                _ => "true".to_string(),
            };
            if options.insert(key.to_string(), value).is_some() {
                return Err(ArgsError(format!("`--{key}` given twice")));
            }
        }
        Ok(Args {
            command,
            options,
            positional,
        })
    }

    /// Bare (non-`--`) operands after the subcommand, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, ArgsError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgsError(format!("missing required option `--{key}`")))
    }

    /// An optional string option with a default.
    pub fn or_default<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map_or(default, String::as_str)
    }

    /// An optional parsed option.
    pub fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgsError> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| ArgsError(format!("`--{key} {v}` is not a valid value"))),
        }
    }

    /// Maps an optional `--key value` onto a builder setter: when the key
    /// is present its parsed value is fed through `set`, otherwise the
    /// builder passes through unchanged. Keeps `--flag` → builder wiring a
    /// one-liner per knob.
    pub fn apply_opt<B, T: std::str::FromStr>(
        &self,
        key: &str,
        builder: B,
        set: impl FnOnce(B, T) -> B,
    ) -> Result<B, ArgsError> {
        match self.parse_opt::<T>(key)? {
            Some(v) => Ok(set(builder, v)),
            None => Ok(builder),
        }
    }

    /// A boolean flag (present → true).
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v != "false")
    }

    /// Keys the caller never consumed (to catch typos).
    pub fn unknown_keys(&self, known: &[&str]) -> Vec<String> {
        self.options
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(&argv("derive --site oracle --samples 200 --verbose")).unwrap();
        assert_eq!(a.command, "derive");
        assert_eq!(a.required("site").unwrap(), "oracle");
        assert_eq!(a.parse_opt::<usize>("samples").unwrap(), Some(200));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("--site oracle")).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(Args::parse(&argv("x --a 1 --a 2")).is_err());
    }

    #[test]
    fn bare_words_are_positional_operands() {
        let a = Args::parse(&argv("stats tel.jsonl --limit 5")).unwrap();
        assert_eq!(a.command, "stats");
        assert_eq!(a.positional(), ["tel.jsonl".to_string()]);
        assert_eq!(a.parse_opt::<usize>("limit").unwrap(), Some(5));
        let b = Args::parse(&argv("derive")).unwrap();
        assert!(b.positional().is_empty());
    }

    #[test]
    fn missing_required_reports_the_key() {
        let a = Args::parse(&argv("derive")).unwrap();
        let e = a.required("site").unwrap_err();
        assert!(e.0.contains("--site"));
    }

    #[test]
    fn bad_numeric_value_reports_value() {
        let a = Args::parse(&argv("derive --samples abc")).unwrap();
        assert!(a.parse_opt::<usize>("samples").is_err());
    }

    #[test]
    fn unknown_keys_detected() {
        let a = Args::parse(&argv("derive --site x --oops 1")).unwrap();
        assert_eq!(a.unknown_keys(&["site"]), vec!["oops".to_string()]);
    }

    #[test]
    fn apply_opt_feeds_builder_only_when_present() {
        let a = Args::parse(&argv("serve --queue 7")).unwrap();
        let set = a.apply_opt("queue", 0usize, |_, v: usize| v).unwrap();
        assert_eq!(set, 7);
        let unset = a.apply_opt("batch", 3usize, |_, v: usize| v).unwrap();
        assert_eq!(unset, 3);
        assert!(a.apply_opt::<usize, usize>("queue", 0, |_, v| v).is_ok());
        let bad = Args::parse(&argv("serve --queue abc")).unwrap();
        assert!(bad.apply_opt::<usize, usize>("queue", 0, |_, v| v).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv("derive")).unwrap();
        assert_eq!(a.or_default("algorithm", "iupma"), "iupma");
    }
}
