//! Resolving `--site` / `--profile` options into simulated local sites.
//!
//! The CLI operates against the workspace's simulated MDBS: two built-in
//! local DBSs (`oracle`, `db2`) hosting the standard 12-table database,
//! driven by a contention profile chosen on the command line:
//!
//! * `uniform:LO:HI` — background processes uniform in `[LO, HI]`,
//! * `clustered` — the paper's tri-modal clustered case,
//! * `static:N` — a constant load of `N` processes.

use crate::args::ArgsError;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

/// A named simulated site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteName {
    /// The Oracle-8.0-like local DBS.
    Oracle,
    /// The DB2-5.0-like local DBS.
    Db2,
}

impl SiteName {
    /// Parses `--site`.
    pub fn parse(s: &str) -> Result<SiteName, ArgsError> {
        match s.to_ascii_lowercase().as_str() {
            "oracle" => Ok(SiteName::Oracle),
            "db2" => Ok(SiteName::Db2),
            other => Err(ArgsError(format!(
                "unknown site `{other}` (expected `oracle` or `db2`)"
            ))),
        }
    }

    /// The canonical catalog identifier of this site.
    pub fn id(self) -> &'static str {
        match self {
            SiteName::Oracle => "oracle",
            SiteName::Db2 => "db2",
        }
    }

    /// Builds an agent for this site with the given environment seed.
    pub fn agent(self, env_seed: u64) -> MdbsAgent {
        match self {
            SiteName::Oracle => {
                MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), env_seed)
            }
            SiteName::Db2 => {
                MdbsAgent::new(VendorProfile::db2v5(), standard_database(43), env_seed)
            }
        }
    }
}

/// Parses `--profile` into a contention profile.
pub fn parse_profile(s: &str) -> Result<ContentionProfile, ArgsError> {
    let lower = s.to_ascii_lowercase();
    if lower == "clustered" {
        return Ok(ContentionProfile::paper_clustered());
    }
    let parts: Vec<&str> = lower.split(':').collect();
    match parts.as_slice() {
        ["uniform", lo, hi] => {
            let lo: f64 = lo
                .parse()
                .map_err(|_| ArgsError(format!("bad uniform lower bound `{lo}`")))?;
            let hi: f64 = hi
                .parse()
                .map_err(|_| ArgsError(format!("bad uniform upper bound `{hi}`")))?;
            if !(lo >= 0.0 && hi >= lo) {
                return Err(ArgsError(format!(
                    "uniform profile needs 0 <= LO <= HI, got {lo}:{hi}"
                )));
            }
            Ok(ContentionProfile::Uniform { lo, hi })
        }
        ["static", n] => {
            let n: f64 = n
                .parse()
                .map_err(|_| ArgsError(format!("bad static process count `{n}`")))?;
            Ok(ContentionProfile::Constant(n))
        }
        _ => Err(ArgsError(format!(
            "unknown profile `{s}` (expected `uniform:LO:HI`, `clustered` or `static:N`)"
        ))),
    }
}

/// Builds a site agent with the profile applied.
pub fn site_agent(site: SiteName, profile: &ContentionProfile, env_seed: u64) -> MdbsAgent {
    let mut agent = site.agent(env_seed);
    agent.set_load_builder(LoadBuilder::new(profile.clone()));
    agent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_parse() {
        assert_eq!(SiteName::parse("oracle").unwrap(), SiteName::Oracle);
        assert_eq!(SiteName::parse("DB2").unwrap(), SiteName::Db2);
        assert!(SiteName::parse("postgres").is_err());
    }

    #[test]
    fn profiles_parse() {
        assert_eq!(
            parse_profile("uniform:20:125").unwrap(),
            ContentionProfile::Uniform {
                lo: 20.0,
                hi: 125.0
            }
        );
        assert_eq!(
            parse_profile("static:15").unwrap(),
            ContentionProfile::Constant(15.0)
        );
        assert!(matches!(
            parse_profile("clustered").unwrap(),
            ContentionProfile::Clustered { .. }
        ));
        assert!(parse_profile("uniform:9").is_err());
        assert!(parse_profile("uniform:50:10").is_err());
        assert!(parse_profile("bogus").is_err());
    }

    #[test]
    fn agents_differ_per_site() {
        let o = SiteName::Oracle.agent(1);
        let d = SiteName::Db2.agent(1);
        assert_ne!(o.vendor().name, d.vendor().name);
    }
}
