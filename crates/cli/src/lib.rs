//! # mdbs-cli
//!
//! The command-line interface of the `mdbs-qcost` workspace: derive
//! multi-states cost models against the built-in simulated local DBSs,
//! keep them in a catalog file, and estimate or execute SQL queries.
//!
//! ```text
//! mdbs-qcost derive   --site oracle --class g1 --out catalog.txt
//! mdbs-qcost estimate --catalog catalog.txt --site oracle \
//!                     --sql "select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000" \
//!                     --execute
//! mdbs-qcost run      --site db2 --sql "select * from R4 where a2 < 100" --procs 80
//! mdbs-qcost catalog  --file catalog.txt
//! ```
//!
//! All logic lives in [`commands::dispatch`] and returns strings, so the
//! whole surface is unit-tested; `main` only prints.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod site;

pub use commands::{dispatch, usage, CliError};
