//! `mdbs-qcost` — see [`mdbs_cli`] for the full documentation.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv = if argv.is_empty() {
        vec!["help".to_string()]
    } else {
        argv
    };
    match mdbs_cli::dispatch(&argv) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
