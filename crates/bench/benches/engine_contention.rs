//! Benchmarks of the simulated local DBS itself: query execution and
//! probing throughput at increasing contention, plus the full Figure-1
//! sweep — the substrate every experiment stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbs_bench::experiments::fig1::{fig1, fig1_query};
use mdbs_bench::workloads::Site;
use mdbs_core::classes::QueryClass;
use mdbs_core::sampling::SampleGenerator;
use mdbs_sim::contention::Load;
use std::hint::black_box;

fn bench_query_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_run");
    for procs in [0.0, 60.0, 125.0] {
        let mut agent = Site::Oracle.agent(7);
        agent.set_load(Load::background(procs));
        let query = fig1_query(&agent);
        group.bench_with_input(BenchmarkId::new("unary", procs as u64), &query, |b, q| {
            b.iter(|| black_box(agent.run(q).expect("valid query")));
        });
    }
    let mut agent = Site::Db2.agent(8);
    let mut generator = SampleGenerator::new(9);
    let join = generator.generate(QueryClass::JoinNoIndex, agent.catalog());
    group.bench_function("join", |b| {
        b.iter(|| black_box(agent.run(&join).expect("valid join")));
    });
    group.finish();
}

fn bench_probe_and_stats(c: &mut Criterion) {
    let mut agent = Site::Oracle.agent(11);
    agent.set_load(Load::background(80.0));
    c.bench_function("agent_probe", |b| b.iter(|| black_box(agent.probe())));
    c.bench_function("agent_stats", |b| b.iter(|| black_box(agent.stats())));
}

/// E-FIG1 as a bench target: regenerating the whole Figure-1 sweep.
fn bench_fig1_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_sweep");
    group.sample_size(20);
    group.bench_function("reps=2", |b| b.iter(|| black_box(fig1(2))));
    group.finish();
}

criterion_group!(
    benches,
    bench_query_execution,
    bench_probe_and_stats,
    bench_fig1_sweep
);
criterion_main!(benches);
