//! Benchmarks of the simulated local DBS itself: query execution and
//! probing throughput at increasing contention, plus the full Figure-1
//! sweep — the substrate every experiment stands on.

use mdbs_bench::experiments::fig1::{fig1, fig1_query};
use mdbs_bench::harness::Harness;
use mdbs_bench::workloads::Site;
use mdbs_core::classes::QueryClass;
use mdbs_core::sampling::SampleGenerator;
use mdbs_sim::contention::Load;

fn main() {
    let mut h = Harness::new("engine_contention");

    for procs in [0.0, 60.0, 125.0] {
        let mut agent = Site::Oracle.agent(7);
        agent.set_load(Load::background(procs));
        let query = fig1_query(&agent);
        h.bench(
            &format!("agent_run/unary/{}", procs as u64),
            50,
            500,
            || agent.run(&query).expect("valid query"),
        );
    }

    let mut agent = Site::Db2.agent(8);
    let mut generator = SampleGenerator::new(9);
    let join = generator.generate(QueryClass::JoinNoIndex, agent.catalog());
    h.bench("agent_run/join", 50, 500, || {
        agent.run(&join).expect("valid join")
    });

    let mut agent = Site::Oracle.agent(11);
    agent.set_load(Load::background(80.0));
    h.bench("agent_probe", 50, 500, || agent.probe());
    h.bench("agent_stats", 50, 500, || agent.stats());

    // E-FIG1 as a bench target: regenerating the whole Figure-1 sweep.
    h.bench("fig1_sweep/reps=2", 1, 10, || fig1(2));

    h.finish();
}
