//! Sustained-QPS and tail-latency bench for the long-lived estimation
//! server ([`mdbs_core::server`]).
//!
//! Two kinds of numbers come out:
//!
//! * `replay/*` — wall-clock cost of replaying a scripted trace through
//!   the serving loop at different worker counts (the real CPU cost of
//!   sustained estimation traffic, and of an observation stream that
//!   triggers an incremental refit);
//! * `virtual/*` — metrics in **virtual trace time**, injected with
//!   [`Harness::record`]: per-request latency percentiles and virtual
//!   nanoseconds per answered request (sustained throughput is its
//!   reciprocal). These are deterministic replay outputs, identical on
//!   every host and at every `--jobs` count.

use mdbs_bench::harness::Harness;
use mdbs_bench::workloads::Site;
use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::maintenance::MaintenanceConfig;
use mdbs_core::model::ModelAccumulator;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::server::{fleet_from_catalog, EstimationServer, RequestTrace, ServeConfig};
use mdbs_core::states::StateAlgorithm;

const G1_SQLS: &[&str] = &[
    "select a1 from R2 where a2 < 100",
    "select a1, a5 from R8 where a5 > 100 and a6 < 500",
    "select a3 from R4 where a4 > 200",
    "select a1, a3 from R6 where a6 < 900",
];

/// One maintained oracle/G1 model with its warm-start accumulator.
fn seeded_catalog() -> GlobalCatalog {
    let mut agent = Site::Oracle.dynamic_agent(50);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(51),
    )
    .expect("seed derivation succeeds");
    let mut catalog = GlobalCatalog::new();
    let site = SiteId::from("oracle");
    catalog.insert_model(
        site.clone(),
        QueryClass::UnaryNoIndex,
        derived.model.clone(),
    );
    catalog.insert_accumulator(
        site,
        QueryClass::UnaryNoIndex,
        ModelAccumulator::from_observations(&derived.model, &derived.observations),
    );
    catalog
}

/// `requests` estimation requests, 20 per virtual second.
fn request_trace(requests: usize) -> RequestTrace {
    let mut text = String::new();
    for i in 0..requests {
        text.push_str(&format!(
            "@{:.3} request oracle {}\n",
            i as f64 * 0.05,
            G1_SQLS[i % G1_SQLS.len()]
        ));
    }
    let trace = RequestTrace::parse(&text);
    assert!(trace.errors.is_empty(), "bench trace must be clean");
    trace
}

/// An observation stream exactly long enough to trigger one incremental
/// refit (the cheap online-maintenance path; rederivation is benched by
/// `derivation` already).
fn observe_trace(observations: usize) -> RequestTrace {
    let mut text = String::new();
    for i in 0..observations {
        text.push_str(&format!(
            "@{:.3} observe oracle {}\n",
            i as f64 * 0.5,
            G1_SQLS[i % G1_SQLS.len()]
        ));
    }
    let trace = RequestTrace::parse(&text);
    assert!(trace.errors.is_empty(), "bench trace must be clean");
    trace
}

fn replay(
    catalog: &GlobalCatalog,
    trace: &RequestTrace,
    refit_threshold: usize,
    workers: usize,
) -> mdbs_core::server::ServeReport {
    let registry = ModelRegistry::from_catalog(catalog);
    let fleet = fleet_from_catalog(
        catalog,
        MaintenanceConfig::default(),
        DerivationConfig::quick(),
        StateAlgorithm::Iupma,
        |site| site.0 == "oracle",
    )
    .expect("fleet builds from the catalog");
    let config = ServeConfig::builder()
        .refit_threshold(refit_threshold)
        .workers(Some(workers))
        .build()
        .expect("sane config");
    let mut server = EstimationServer::new(registry, fleet, config);
    server.run(
        trace,
        |site: &SiteId, seed: u64| (site.0 == "oracle").then(|| Site::Oracle.dynamic_agent(seed)),
        &mut PipelineCtx::seeded(52),
    )
}

fn main() {
    let mut h = Harness::new("serve_loop");

    let catalog = seeded_catalog();
    let requests = request_trace(200);
    let observations = observe_trace(24);

    // Wall-clock cost of sustained estimation traffic.
    for workers in [1usize, 4] {
        h.bench(&format!("replay/requests_200_jobs{workers}"), 1, 5, || {
            replay(&catalog, &requests, usize::MAX, workers)
        });
    }
    // Wall-clock cost of the observe -> drift-check -> incremental-refit
    // maintenance path (24 observations, refit at 24).
    h.bench("replay/observe_24_refit", 1, 3, || {
        replay(&catalog, &observations, 24, 4)
    });

    // Virtual-time service quality of the same replay: deterministic, so
    // one run is the distribution.
    let report = replay(&catalog, &requests, usize::MAX, 4);
    assert!(report.answered > 0, "request replay answered nothing");
    assert_eq!(report.incremental_refits, 0);
    h.record(
        "virtual/request_latency",
        report.answered,
        (report.latency_p50_s * 1e9) as u128,
        (report.latency_p95_s * 1e9) as u128,
    );
    // Sustained throughput, expressed as virtual time per answered request
    // so it fits the harness's ns-denominated report (QPS = 1e9 / median).
    let ns_per_answer = (report.virtual_makespan_s * 1e9) as u128 / report.answered as u128;
    h.record(
        "virtual/ns_per_answered",
        report.answered,
        ns_per_answer,
        ns_per_answer,
    );

    h.finish();
}
