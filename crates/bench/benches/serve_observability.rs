//! Overhead bench for the serving-loop observability layer
//! ([`mdbs_core::server`] + [`mdbs_obs::recorder`]).
//!
//! Replays the same mixed request/observation trace twice — recording off
//! (no telemetry, heartbeats disabled, flight recorder disabled) and
//! recording on (traced context, 1s virtual heartbeats, a 256-deep flight
//! ring drained to JSONL) — and reports the wall-clock cost of each.
//! The recorder rides outside the virtual clock, so the bench also
//! *asserts* that full recording costs zero virtual throughput: answered
//! counts, makespan and latency percentiles must be bit-identical.

use mdbs_bench::harness::Harness;
use mdbs_bench::workloads::Site;
use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::maintenance::MaintenanceConfig;
use mdbs_core::model::ModelAccumulator;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::server::{fleet_from_catalog, EstimationServer, RequestTrace, ServeConfig};
use mdbs_core::states::StateAlgorithm;

const G1_SQLS: &[&str] = &[
    "select a1 from R2 where a2 < 100",
    "select a1, a5 from R8 where a5 > 100 and a6 < 500",
    "select a3 from R4 where a4 > 200",
    "select a1, a3 from R6 where a6 < 900",
];

/// One maintained oracle/G1 model with its warm-start accumulator.
fn seeded_catalog() -> GlobalCatalog {
    let mut agent = Site::Oracle.dynamic_agent(50);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(51),
    )
    .expect("seed derivation succeeds");
    let mut catalog = GlobalCatalog::new();
    let site = SiteId::from("oracle");
    catalog.insert_model(
        site.clone(),
        QueryClass::UnaryNoIndex,
        derived.model.clone(),
    );
    catalog.insert_accumulator(
        site,
        QueryClass::UnaryNoIndex,
        ModelAccumulator::from_observations(&derived.model, &derived.observations),
    );
    catalog
}

/// Requests at 20/virtual-second with an observation after every fourth,
/// so the ledger, the heartbeat stream and the request ring all fill.
fn mixed_trace(requests: usize) -> RequestTrace {
    let mut text = String::new();
    for i in 0..requests {
        let at = i as f64 * 0.05;
        text.push_str(&format!(
            "@{at:.3} request oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
        if i % 4 == 3 {
            text.push_str(&format!(
                "@{:.3} observe oracle {}\n",
                at + 0.01,
                G1_SQLS[i % G1_SQLS.len()]
            ));
        }
    }
    let trace = RequestTrace::parse(&text);
    assert!(trace.errors.is_empty(), "bench trace must be clean");
    trace
}

/// Replays the trace; `recording` switches the whole observability layer
/// (telemetry sink, heartbeats, flight recorder + JSONL drain) on or off.
/// Returns the report and the number of flight-dump bytes produced.
fn replay(
    catalog: &GlobalCatalog,
    trace: &RequestTrace,
    workers: usize,
    recording: bool,
) -> (mdbs_core::server::ServeReport, usize) {
    let registry = ModelRegistry::from_catalog(catalog);
    let fleet = fleet_from_catalog(
        catalog,
        MaintenanceConfig::default(),
        DerivationConfig::quick(),
        StateAlgorithm::Iupma,
        |site| site.0 == "oracle",
    )
    .expect("fleet builds from the catalog");
    let config = ServeConfig {
        refit_threshold: usize::MAX,
        workers: Some(workers),
        heartbeat_s: if recording { 1.0 } else { 0.0 },
        flight_capacity: if recording { 256 } else { 0 },
        ..ServeConfig::default()
    };
    let mut server = EstimationServer::new(registry, fleet, config);
    let mut ctx = if recording {
        PipelineCtx::traced(52)
    } else {
        PipelineCtx::seeded(52)
    };
    let report = server.run(
        trace,
        |site: &SiteId, seed: u64| (site.0 == "oracle").then(|| Site::Oracle.dynamic_agent(seed)),
        &mut ctx,
    );
    let dumped = if recording {
        server.recorder().dump_jsonl().len()
    } else {
        0
    };
    (report, dumped)
}

fn main() {
    let mut h = Harness::new("serve_observability");

    let catalog = seeded_catalog();
    let trace = mixed_trace(160);

    // Wall-clock cost of the same replay with the recording layer off/on.
    h.bench("replay/mixed_160_recording_off", 1, 5, || {
        replay(&catalog, &trace, 4, false)
    });
    h.bench("replay/mixed_160_recording_on", 1, 5, || {
        replay(&catalog, &trace, 4, true)
    });

    // Virtual-time service quality must be recording-invariant.
    let (base, no_bytes) = replay(&catalog, &trace, 4, false);
    let (full, bytes) = replay(&catalog, &trace, 4, true);
    assert_eq!(no_bytes, 0);
    assert!(bytes > 0, "recording run produced no flight dump");
    assert!(full.heartbeats >= 2, "recording run must heartbeat");
    assert_eq!(base.answered, full.answered);
    assert_eq!(
        base.virtual_makespan_s.to_bits(),
        full.virtual_makespan_s.to_bits(),
        "recording leaked into the virtual clock"
    );
    assert_eq!(base.latency_p50_s.to_bits(), full.latency_p50_s.to_bits());
    assert_eq!(base.latency_p95_s.to_bits(), full.latency_p95_s.to_bits());

    // Virtual throughput with full recording (identical to recording-off
    // by the asserts above; recorded so regressions show up in the JSON).
    assert!(full.answered > 0, "replay answered nothing");
    let ns_per_answer = (full.virtual_makespan_s * 1e9) as u128 / full.answered as u128;
    h.record(
        "virtual/ns_per_answered_recording_on",
        full.answered,
        ns_per_answer,
        ns_per_answer,
    );

    h.finish();
}
