//! Full-QR refit vs sufficient-statistics candidate fit.
//!
//! The state-determination search scores hundreds of candidate partitions.
//! The legacy path rebuilds the design matrix and runs a Householder QR
//! over all `n` observations per candidate — O(n·k²). The Gram path keeps
//! prefix sums of the per-observation outer products in probe-cost order,
//! assembles a candidate's per-state blocks by prefix difference, and
//! solves the k×k normal equations — O(k³), independent of `n`. This bench
//! measures exactly those two candidate-evaluation costs at the sample
//! sizes the pipeline sees (and one 10k stress size), for a 4-state
//! General-form model with 3 variables (k = 16 design columns).
//!
//! Names are zero-padded (`n=00100`) so `cargo bench -- n=00100` selects
//! one size without substring-matching the larger ones.

use mdbs_bench::harness::Harness;
use mdbs_core::model::{fit_cost_model, ModelForm};
use mdbs_core::observation::Observation;
use mdbs_core::qualvar::StateSet;
use mdbs_core::ModelAccumulator;
use mdbs_stats::{GramPrefix, Rng};

const NUM_STATES: usize = 4;
const NUM_VARS: usize = 3;

/// Deterministic noisy observations spread over [`NUM_STATES`] contention
/// states (probe costs in `[0, 4)`).
fn observations(n: usize) -> Vec<Observation> {
    let mut rng = Rng::seed_from_u64(0x05EE_DF17);
    (0..n)
        .map(|i| {
            let x1 = rng.gen_f64() * 4_000.0;
            let x2 = rng.gen_f64() * 1_500.0;
            let x3 = rng.gen_f64() * 90.0;
            let s = i % NUM_STATES;
            Observation {
                x: vec![x1, x2, x3],
                cost: (s + 1) as f64 * (1.0 + 0.01 * x1 + 0.003 * x2 + 0.02 * x3)
                    + rng.gen_f64() * 0.5,
                probe_cost: s as f64 + 0.1 + rng.gen_f64() * 0.8,
            }
        })
        .collect()
}

fn main() {
    let mut h = Harness::new("fit_suffstats");
    let states = StateSet::from_edges(vec![0.0, 1.0, 2.0, 3.0, 4.0]).expect("ascending");
    let var_indexes = vec![0, 1, 2];
    let var_names: Vec<String> = vec!["a".into(), "b".into(), "c".into()];

    for &n in &[100usize, 1_000, 10_000] {
        let obs = observations(n);
        let iters = if n >= 10_000 { 30 } else { 100 };

        // Legacy candidate evaluation: design-matrix rebuild + Householder
        // QR over all n observations.
        let (st, vi, vn) = (states.clone(), var_indexes.clone(), var_names.clone());
        h.bench(&format!("full_qr/n={n:05}"), 3, iters, || {
            fit_cost_model(ModelForm::General, st.clone(), vi.clone(), vn.clone(), &obs)
                .expect("fit succeeds")
        });

        // Gram candidate evaluation: prefix-difference block extraction +
        // O(k³) normal-equations solve. The prefix itself is built once per
        // sample (outside the timed loop), exactly as the search caches it.
        let mut order: Vec<usize> = (0..obs.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            obs[a]
                .probe_cost
                .partial_cmp(&obs[b].probe_cost)
                .expect("finite probe costs")
                .then(a.cmp(&b))
        });
        let mut prefix = GramPrefix::new(NUM_VARS + 1);
        for &i in &order {
            let o = &obs[i];
            let mut z = Vec::with_capacity(NUM_VARS + 1);
            z.push(1.0);
            z.extend_from_slice(&o.x);
            prefix.push(&z, o.cost).expect("row width matches");
        }
        let sorted_probes: Vec<f64> = order.iter().map(|&i| obs[i].probe_cost).collect();
        let mut bounds = vec![0usize];
        for s in 0..NUM_STATES {
            bounds.push(sorted_probes.partition_point(|&pc| states.state_of(pc) <= s));
        }
        let (st, vi, vn) = (states.clone(), var_indexes.clone(), var_names.clone());
        h.bench(&format!("gram/n={n:05}"), 3, iters, || {
            let blocks: Vec<_> = (0..NUM_STATES)
                .map(|s| {
                    prefix
                        .range(bounds[s], bounds[s + 1])
                        .expect("bounds are valid prefix indexes")
                })
                .collect();
            ModelAccumulator::from_parts(
                ModelForm::General,
                st.clone(),
                vi.clone(),
                vn.clone(),
                blocks,
            )
            .expect("well-formed accumulator")
            .refit()
            .expect("fit succeeds")
        });
    }

    h.finish();
}
