//! Binary snapshot store vs. the text catalog format.
//!
//! The serving paths load the catalog at every startup; the maintenance
//! loop persists accumulator growth continuously. This bench builds the
//! acceptance-criteria catalog — 2 vendors × 3 classes, every pair with
//! its Gram accumulator — in the join-family shape (8 candidate
//! variables including a cross product, 6 contention states, measured
//! full-precision costs) and measures:
//!
//! * `load/*` — full [`FileCatalogStore::load`] of the same catalog from
//!   the text file and from the binary file. Binary skips all float
//!   parsing/formatting and must be ≥ 5× faster.
//! * `size/*` — the on-disk bytes of each form (recorded as pseudo
//!   measurements so the JSON report tracks them). The binary form packs
//!   the symmetric Gram triangle and inherits accumulator shape from the
//!   model entry, and must be ≥ 3× smaller.
//! * `append/*` — [`CatalogStore::append_delta`] of one folded
//!   accumulator increment onto a small (1 site × 1 class) and a large
//!   (scaled accumulators, ~10× file bytes) catalog. Append writes (and
//!   reads back) O(delta) bytes, so its cost must not scale with the
//!   catalog: the large-catalog median must stay within 8× of the small
//!   one (wide margin for fs jitter) and far under a full `store`
//!   rewrite.
//!
//! All three properties are self-asserted, so CI fails if the binary
//! format loses its edge. Run with `--json PATH` for the machine report
//! (`BENCH_catalog.json` in the repo root is the committed reference).

use mdbs_bench::harness::Harness;
use mdbs_core::catalog::GlobalCatalog;
use mdbs_core::classes::QueryClass;
use mdbs_core::model::{fit_cost_model, CostModel, ModelAccumulator, ModelForm};
use mdbs_core::observation::Observation;
use mdbs_core::probing::ProbeCostEstimator;
use mdbs_core::qualvar::StateSet;
use mdbs_core::store::{
    CatalogDelta, CatalogFormat, CatalogSnapshot, CatalogStore, FileCatalogStore,
};
use mdbs_obs::Telemetry;
use mdbs_stats::Rng;
use std::path::PathBuf;

const NUM_STATES: usize = 6;
const CLASSES: [QueryClass; 3] = [
    QueryClass::JoinNoIndex,
    QueryClass::JoinIndexed,
    QueryClass::UnaryNonClusteredIndex,
];

/// Join-family observations: operand/intermediate cardinalities, sizes,
/// a cross-product term, and contention spread over [`NUM_STATES`]
/// states. Everything is measured (fractional), as in a live system —
/// full 52-bit mantissas, the text format's worst case and the honest
/// shape for sizing the binary one.
fn observations(n: usize, seed: u64) -> Vec<Observation> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let n_o = rng.gen_f64() * 400.0 + 1.0;
            let n_i = rng.gen_f64() * 150.0 + 1.0;
            let s_o = rng.gen_f64() * 90.0;
            let s_i = rng.gen_f64() * 40.0;
            let t_o = rng.gen_f64() * 12.0;
            let n_r = rng.gen_f64() * 200.0;
            let l_o = rng.gen_f64() * 120.0;
            let s = i % NUM_STATES;
            Observation {
                x: vec![n_o, n_i, s_o, s_i, n_r, t_o, l_o, n_o * n_i],
                cost: (s + 1) as f64 * (0.8 + 0.004 * n_o + 0.002 * n_i + 0.0007 * n_o * n_i)
                    + rng.gen_f64() * 0.25,
                probe_cost: s as f64 + 0.1 + rng.gen_f64() * 0.8,
            }
        })
        .collect()
}

fn join_model(obs: &[Observation]) -> CostModel {
    let states = StateSet::from_edges((0..=NUM_STATES).map(|s| s as f64).collect())
        .expect("ascending edges");
    fit_cost_model(
        ModelForm::General,
        states,
        (0..8).collect(),
        ["N_O", "N_I", "S_O", "S_I", "N_R", "T_O", "L_O", "N_O*N_I"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        obs,
    )
    .expect("fit succeeds")
}

/// `sites` × [`CLASSES`] with a model + accumulator per pair and a probe
/// estimator per site; `n` observations feed each accumulator.
fn snapshot(sites: &[&str], n: usize, version: u64) -> CatalogSnapshot {
    let mut catalog = GlobalCatalog::new();
    for (si, site) in sites.iter().enumerate() {
        for (ci, class) in CLASSES.iter().enumerate() {
            let obs = observations(n, 0xCA7A_0600 + (si * 8 + ci) as u64);
            let model = join_model(&obs);
            let acc = ModelAccumulator::from_observations(&model, &obs);
            catalog.insert_model((*site).into(), *class, model);
            catalog.insert_accumulator((*site).into(), *class, acc);
        }
        catalog.insert_probe_estimator(
            (*site).into(),
            ProbeCostEstimator {
                selected: vec![0, 2],
                names: vec!["cpu".into(), "io".into()],
                coefficients: vec![0.1031 + si as f64, 1.2517, 0.7741],
                r_squared: 0.9172,
                see: 0.0831,
            },
        );
    }
    CatalogSnapshot::at_version(catalog, version)
}

fn scratch(name: &str) -> PathBuf {
    // PID-scoped so concurrent bench runs never race on the same files.
    let dir = std::env::temp_dir().join(format!("mdbs-bench-catalog-store.{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn median_of(h: &Harness, name: &str) -> Option<u128> {
    h.results()
        .iter()
        .find(|m| m.name == name)
        .map(|m| m.median_ns)
}

fn main() {
    let mut h = Harness::new("catalog_store");
    let mut tel = Telemetry::disabled();

    // --- the acceptance catalog: 2 vendors x 3 classes ------------------
    let snap = snapshot(&["oracle-a", "db2-b"], 420, 12);
    let text_path = scratch("catalog.txt");
    let bin_path = scratch("catalog.mdbc");
    let text_store = FileCatalogStore::new(&text_path, CatalogFormat::Text);
    let bin_store = FileCatalogStore::new(&bin_path, CatalogFormat::Binary);
    text_store.store(&snap, &mut tel).expect("write text");
    bin_store.store(&snap, &mut tel).expect("write binary");
    let text_bytes = std::fs::metadata(&text_path).expect("text file").len() as usize;
    let bin_bytes = std::fs::metadata(&bin_path).expect("binary file").len() as usize;

    h.record("size/text_bytes", 1, text_bytes as u128, text_bytes as u128);
    h.record("size/binary_bytes", 1, bin_bytes as u128, bin_bytes as u128);
    assert!(
        bin_bytes * 3 <= text_bytes,
        "binary snapshot must be >= 3x smaller: {bin_bytes} vs {text_bytes} bytes"
    );

    h.bench("load/text", 3, 60, || {
        text_store.load(&mut tel).expect("text load")
    });
    h.bench("load/binary", 3, 60, || {
        bin_store.load(&mut tel).expect("binary load")
    });
    if let (Some(t), Some(b)) = (median_of(&h, "load/text"), median_of(&h, "load/binary")) {
        assert!(
            b * 5 <= t,
            "binary load must be >= 5x faster: {b}ns vs {t}ns"
        );
    }

    // --- delta append: O(delta), independent of catalog size -------------
    // The same one-entry increment delta is appended to a 1-site/1-class
    // catalog and to one holding ~10x the bytes (scaled accumulators).
    let small = snapshot(&["oracle-a"], 60, 1);
    let large = snapshot(&["oracle-a", "db2-b"], 4_200, 1);
    let increment = {
        let obs = observations(10, 0xDE17A);
        small
            .catalog
            .accumulator(&"oracle-a".into(), CLASSES[0])
            .expect("accumulator stored")
            .increment_from(&obs)
    };
    let mut cases = Vec::new();
    for (tag, snap) in [("small", &small), ("large", &large)] {
        let path = scratch(&format!("append-{tag}.mdbc"));
        let store = FileCatalogStore::new(&path, CatalogFormat::Binary);
        store.store(snap, &mut tel).expect("write base");
        let base_len = std::fs::metadata(&path).expect("base file").len();
        // Version bookkeeping is irrelevant to append cost; every frame
        // reuses the same base so the file grows but is never reloaded.
        let delta = {
            let mut d = CatalogDelta::new(1, 2);
            d.merge_accumulator("oracle-a".into(), CLASSES[0], increment.clone());
            d
        };
        let name = format!("append/catalog={tag}");
        h.bench(&name, 5, 200, || {
            store.append_delta(&delta, &mut tel).expect("append")
        });
        let grown = std::fs::metadata(&path).expect("grown file").len();
        cases.push((name, base_len, grown));
    }
    // Every append wrote the same O(delta) frame regardless of base size:
    // both files grew by exactly the same bytes (5 warmup + 200 timed
    // appends each), even though the large base is ~10x the small one.
    if cases.iter().all(|(_, base, grown)| grown > base) {
        let growths: Vec<u64> = cases.iter().map(|(_, base, grown)| grown - base).collect();
        assert!(
            growths.windows(2).all(|w| w[0] == w[1]),
            "append growth must not depend on catalog size: {cases:?}"
        );
    }
    if let (Some(s), Some(l)) = (
        median_of(&h, "append/catalog=small"),
        median_of(&h, "append/catalog=large"),
    ) {
        assert!(
            l <= s.saturating_mul(8),
            "append cost must not scale with catalog size: small={s}ns large={l}ns"
        );
    }
    // And appending is far cheaper than rewriting the large snapshot.
    h.bench("store_full/large", 2, 20, || {
        FileCatalogStore::new(scratch("rewrite.mdbc"), CatalogFormat::Binary)
            .store(&large, &mut tel)
            .expect("rewrite")
    });
    if let (Some(a), Some(f)) = (
        median_of(&h, "append/catalog=large"),
        median_of(&h, "store_full/large"),
    ) {
        assert!(
            a < f,
            "append ({a}ns) must undercut a full snapshot rewrite ({f}ns)"
        );
    }

    h.finish();
}
