//! Overhead bench for the feedback-driven correction layer
//! ([`mdbs_core::correction`] wired into [`mdbs_core::server`]).
//!
//! Replays the same mixed request/observation trace twice — correction off
//! and correction on — and reports the wall-clock cost of each. The
//! correction ledger folds and applies outside the virtual clock, so the
//! bench also *asserts* that correction costs zero virtual throughput:
//! answered counts, makespan and latency percentiles must be bit-identical
//! between the two runs.

use mdbs_bench::harness::Harness;
use mdbs_bench::workloads::Site;
use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::maintenance::MaintenanceConfig;
use mdbs_core::model::ModelAccumulator;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::server::{fleet_from_catalog, EstimationServer, RequestTrace, ServeConfig};
use mdbs_core::states::StateAlgorithm;

const G1_SQLS: &[&str] = &[
    "select a1 from R2 where a2 < 100",
    "select a1, a5 from R8 where a5 > 100 and a6 < 500",
    "select a3 from R4 where a4 > 200",
    "select a1, a3 from R6 where a6 < 900",
];

/// One maintained oracle/G1 model with its warm-start accumulator.
fn seeded_catalog() -> GlobalCatalog {
    let mut agent = Site::Oracle.dynamic_agent(50);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(51),
    )
    .expect("seed derivation succeeds");
    let mut catalog = GlobalCatalog::new();
    let site = SiteId::from("oracle");
    catalog.insert_model(
        site.clone(),
        QueryClass::UnaryNoIndex,
        derived.model.clone(),
    );
    catalog.insert_accumulator(
        site,
        QueryClass::UnaryNoIndex,
        ModelAccumulator::from_observations(&derived.model, &derived.observations),
    );
    catalog
}

/// Requests at 20/virtual-second with an observation after every fourth,
/// so the correction cells warm up and every answered batch consults a
/// live ledger.
fn mixed_trace(requests: usize) -> RequestTrace {
    let mut text = String::new();
    for i in 0..requests {
        let at = i as f64 * 0.05;
        text.push_str(&format!(
            "@{at:.3} request oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
        if i % 4 == 3 {
            text.push_str(&format!(
                "@{:.3} observe oracle {}\n",
                at + 0.01,
                G1_SQLS[i % G1_SQLS.len()]
            ));
        }
    }
    let trace = RequestTrace::parse(&text);
    assert!(trace.errors.is_empty(), "bench trace must be clean");
    trace
}

/// Replays the trace with the correction layer on or off.
fn replay(
    catalog: &GlobalCatalog,
    trace: &RequestTrace,
    workers: usize,
    correction: bool,
) -> mdbs_core::server::ServeReport {
    let registry = ModelRegistry::from_catalog(catalog);
    let fleet = fleet_from_catalog(
        catalog,
        MaintenanceConfig::default(),
        DerivationConfig::quick(),
        StateAlgorithm::Iupma,
        |site| site.0 == "oracle",
    )
    .expect("fleet builds from the catalog");
    let config = ServeConfig::builder()
        .refit_threshold(usize::MAX)
        .workers(Some(workers))
        .heartbeat_s(0.0)
        .flight_capacity(0)
        .correction(correction)
        .build()
        .expect("sane config");
    let mut server = EstimationServer::new(registry, fleet, config);
    let mut ctx = PipelineCtx::seeded(52);
    server.run(
        trace,
        |site: &SiteId, seed: u64| (site.0 == "oracle").then(|| Site::Oracle.dynamic_agent(seed)),
        &mut ctx,
    )
}

fn main() {
    let mut h = Harness::new("serve_correction");

    let catalog = seeded_catalog();
    let trace = mixed_trace(160);

    // Wall-clock cost of the same replay with the correction layer off/on.
    h.bench("replay/mixed_160_correction_off", 1, 5, || {
        replay(&catalog, &trace, 4, false)
    });
    h.bench("replay/mixed_160_correction_on", 1, 5, || {
        replay(&catalog, &trace, 4, true)
    });

    // Virtual-time service quality must be correction-invariant: the
    // ledger folds and applies between batches, never on the clock.
    let off = replay(&catalog, &trace, 4, false);
    let on = replay(&catalog, &trace, 4, true);
    assert_eq!(off.corrections_applied, 0, "correction leaked into off run");
    assert!(on.corrections_applied > 0, "correction never fired");
    assert_eq!(off.answered, on.answered);
    assert_eq!(
        off.virtual_makespan_s.to_bits(),
        on.virtual_makespan_s.to_bits(),
        "correction leaked into the virtual clock"
    );
    assert_eq!(off.latency_p50_s.to_bits(), on.latency_p50_s.to_bits());
    assert_eq!(off.latency_p95_s.to_bits(), on.latency_p95_s.to_bits());

    // Virtual throughput with correction on (identical to correction-off
    // by the asserts above; recorded so regressions show up in the JSON).
    assert!(on.answered > 0, "replay answered nothing");
    let ns_per_answer = (on.virtual_makespan_s * 1e9) as u128 / on.answered as u128;
    h.record(
        "virtual/ns_per_answered_correction_on",
        on.answered,
        ns_per_answer,
        ns_per_answer,
    );

    h.finish();
}
