//! Micro-benchmarks of the statistical substrate: QR factorization, OLS
//! fitting with full diagnostics, and qualitative-model fitting at the
//! design sizes the derivation pipeline actually produces (a few hundred
//! rows, up to ~25 design columns for 6 states × 4 variables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbs_core::model::{fit_cost_model, ModelForm};
use mdbs_core::observation::Observation;
use mdbs_core::qualvar::StateSet;
use mdbs_stats::{Matrix, OlsFit};
use std::hint::black_box;

/// Deterministic pseudo-random design matrix.
fn design(n: usize, k: usize) -> (Matrix, Vec<f64>) {
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..n {
        let mut row = Vec::with_capacity(k);
        row.push(1.0);
        for _ in 1..k {
            row.push(next() * 1_000.0);
        }
        let target: f64 = row
            .iter()
            .enumerate()
            .map(|(j, v)| v * (j as f64 + 0.5) * 1e-3)
            .sum::<f64>()
            + next();
        rows.push(row);
        y.push(target);
    }
    (Matrix::from_rows(&rows).expect("rectangular"), y)
}

fn observations(n: usize, states: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            // Three linearly independent pseudo-random columns.
            let x1 = (i % 37) as f64 * 120.0;
            let x2 = ((i * 13) % 29) as f64 * 55.0;
            let x3 = ((i * 7) % 11) as f64 * 9.0;
            let s = i % states;
            Observation {
                x: vec![x1, x2, x3],
                cost: (s + 1) as f64 * (1.0 + 0.01 * x1 + 0.003 * x2 + 0.02 * x3)
                    + (i % 5) as f64 * 0.01,
                probe_cost: s as f64 + 0.3 + (i % 7) as f64 * 0.05,
            }
        })
        .collect()
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    for &(n, k) in &[(100usize, 5usize), (400, 12), (600, 25)] {
        let (x, _) = design(n, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{k}")),
            &x,
            |b, x| {
                b.iter(|| black_box(x.qr().expect("full rank")));
            },
        );
    }
    group.finish();
}

fn bench_ols(c: &mut Criterion) {
    let mut group = c.benchmark_group("ols_fit");
    for &(n, k) in &[(100usize, 5usize), (400, 12), (600, 25)] {
        let (x, y) = design(n, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{k}")),
            &(x, y),
            |b, (x, y)| {
                b.iter(|| black_box(OlsFit::fit(x, y, true).expect("full rank")));
            },
        );
    }
    group.finish();
}

fn bench_qualitative_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("qualitative_model_fit");
    let obs = observations(400, 4);
    let states = StateSet::from_edges(vec![0.0, 1.0, 2.0, 3.0, 4.0]).expect("ascending");
    for form in [
        ModelForm::Coincident,
        ModelForm::Parallel,
        ModelForm::Concurrent,
        ModelForm::General,
    ] {
        let st = if matches!(form, ModelForm::Coincident) {
            StateSet::single()
        } else {
            states.clone()
        };
        group.bench_function(format!("{form:?}"), |b| {
            b.iter(|| {
                black_box(
                    fit_cost_model(
                        form,
                        st.clone(),
                        vec![0, 1, 2],
                        vec!["a".into(), "b".into(), "c".into()],
                        &obs,
                    )
                    .expect("fit succeeds"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qr, bench_ols, bench_qualitative_forms);
criterion_main!(benches);
