//! Micro-benchmarks of the statistical substrate: QR factorization, OLS
//! fitting with full diagnostics, and qualitative-model fitting at the
//! design sizes the derivation pipeline actually produces (a few hundred
//! rows, up to ~25 design columns for 6 states × 4 variables).

use mdbs_bench::harness::Harness;
use mdbs_core::model::{fit_cost_model, ModelForm};
use mdbs_core::observation::Observation;
use mdbs_core::qualvar::StateSet;
use mdbs_stats::{Matrix, OlsFit, Rng};

/// Deterministic pseudo-random design matrix.
fn design(n: usize, k: usize) -> (Matrix, Vec<f64>) {
    let mut rng = Rng::seed_from_u64(0x0D15);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(k);
        row.push(1.0);
        for _ in 1..k {
            row.push(rng.gen_f64() * 1_000.0);
        }
        let target: f64 = row
            .iter()
            .enumerate()
            .map(|(j, v)| v * (j as f64 + 0.5) * 1e-3)
            .sum::<f64>()
            + rng.gen_f64();
        rows.push(row);
        y.push(target);
    }
    (Matrix::from_rows(&rows).expect("rectangular"), y)
}

fn observations(n: usize, states: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            // Three linearly independent pseudo-random columns.
            let x1 = (i % 37) as f64 * 120.0;
            let x2 = ((i * 13) % 29) as f64 * 55.0;
            let x3 = ((i * 7) % 11) as f64 * 9.0;
            let s = i % states;
            Observation {
                x: vec![x1, x2, x3],
                cost: (s + 1) as f64 * (1.0 + 0.01 * x1 + 0.003 * x2 + 0.02 * x3)
                    + (i % 5) as f64 * 0.01,
                probe_cost: s as f64 + 0.3 + (i % 7) as f64 * 0.05,
            }
        })
        .collect()
}

fn main() {
    let mut h = Harness::new("regression_fit");

    for &(n, k) in &[(100usize, 5usize), (400, 12), (600, 25)] {
        let (x, _) = design(n, k);
        h.bench(&format!("qr/{n}x{k}"), 10, 100, || {
            x.qr().expect("full rank")
        });
    }

    for &(n, k) in &[(100usize, 5usize), (400, 12), (600, 25)] {
        let (x, y) = design(n, k);
        h.bench(&format!("ols_fit/{n}x{k}"), 10, 100, || {
            OlsFit::fit(&x, &y, true).expect("full rank")
        });
    }

    let obs = observations(400, 4);
    let states = StateSet::from_edges(vec![0.0, 1.0, 2.0, 3.0, 4.0]).expect("ascending");
    for form in [
        ModelForm::Coincident,
        ModelForm::Parallel,
        ModelForm::Concurrent,
        ModelForm::General,
    ] {
        let st = if matches!(form, ModelForm::Coincident) {
            StateSet::single()
        } else {
            states.clone()
        };
        h.bench(&format!("qualitative_model_fit/{form:?}"), 5, 50, || {
            fit_cost_model(
                form,
                st.clone(),
                vec![0, 1, 2],
                vec!["a".into(), "b".into(), "c".into()],
                &obs,
            )
            .expect("fit succeeds")
        });
    }

    h.finish();
}
