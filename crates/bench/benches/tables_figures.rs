//! One bench target per paper table/figure: times regenerating each
//! artifact end-to-end (reduced scale — the `repro` binary produces the
//! full-scale rows; these benches keep the regeneration path honest and
//! measurable).

use mdbs_bench::experiments::{
    fig1, fig10, fig4_9, states_sweep, table4, table5, table6, Table5Config,
};
use mdbs_bench::harness::Harness;
use mdbs_core::classes::QueryClass;

fn tiny_table5_config() -> Table5Config {
    Table5Config {
        sample_size: Some(130),
        max_states: 3,
        test_queries: 20,
    }
}

fn main() {
    let mut h = Harness::new("tables_figures");

    h.bench("repro/fig1", 1, 10, || fig1(1));
    h.bench("repro/fig10", 1, 10, || fig10(200, 30));
    h.bench("repro/states_sweep", 1, 5, || {
        states_sweep(QueryClass::UnaryNonClusteredIndex, 200, 4).expect("sweep succeeds")
    });
    h.bench("repro/table4", 1, 5, || {
        table4(Some(130)).expect("table 4 succeeds")
    });
    h.bench("repro/table5", 1, 5, || {
        table5(&tiny_table5_config()).expect("table 5 succeeds")
    });
    // Figures 4–9 derive from a Table-5 run; time only the figure assembly.
    let t5 = table5(&tiny_table5_config()).expect("table 5 succeeds");
    h.bench("repro/fig4_9_from_table5", 1, 10, || fig4_9(&t5));
    h.bench("repro/table6", 1, 5, || {
        table6(QueryClass::UnaryNoIndex, Some(130), 20).expect("table 6 succeeds")
    });

    h.finish();
}
