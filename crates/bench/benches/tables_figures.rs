//! One bench target per paper table/figure: times regenerating each
//! artifact end-to-end (reduced scale — the `repro` binary produces the
//! full-scale rows; these benches keep the regeneration path honest and
//! measurable).

use criterion::{criterion_group, criterion_main, Criterion};
use mdbs_bench::experiments::{
    fig1, fig10, fig4_9, states_sweep, table4, table5, table6, Table5Config,
};
use mdbs_core::classes::QueryClass;
use std::hint::black_box;

fn tiny_table5_config() -> Table5Config {
    Table5Config {
        sample_size: Some(130),
        max_states: 3,
        test_queries: 20,
    }
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(20);
    g.bench_function("fig1", |b| b.iter(|| black_box(fig1(1))));
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(20);
    g.bench_function("fig10", |b| b.iter(|| black_box(fig10(200, 30))));
    g.finish();
}

fn bench_states_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("states_sweep", |b| {
        b.iter(|| {
            black_box(
                states_sweep(QueryClass::UnaryNonClusteredIndex, 200, 4).expect("sweep succeeds"),
            )
        })
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("table4", |b| {
        b.iter(|| black_box(table4(Some(130)).expect("table 4 succeeds")))
    });
    g.finish();
}

fn bench_table5_and_fig4_9(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("table5", |b| {
        b.iter(|| black_box(table5(&tiny_table5_config()).expect("table 5 succeeds")))
    });
    // Figures 4–9 derive from a Table-5 run; time only the figure assembly.
    let t5 = table5(&tiny_table5_config()).expect("table 5 succeeds");
    g.bench_function("fig4_9_from_table5", |b| b.iter(|| black_box(fig4_9(&t5))));
    g.finish();
}

fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("table6", |b| {
        b.iter(|| {
            black_box(table6(QueryClass::UnaryNoIndex, Some(130), 20).expect("table 6 succeeds"))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig10,
    bench_states_sweep,
    bench_table4,
    bench_table5_and_fig4_9,
    bench_table6
);
criterion_main!(benches);
