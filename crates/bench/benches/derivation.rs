//! End-to-end derivation benchmarks: the full multi-states pipeline
//! (sampling → probing → state determination → variable selection → fit)
//! per query class, plus ablations over the regression form and the
//! probing-cost estimator — the design choices DESIGN.md calls out.

use mdbs_bench::harness::Harness;
use mdbs_bench::workloads::Site;
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{collect_observations, derive_cost_model, DerivationConfig};
use mdbs_core::model::{fit_cost_model, ModelForm};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::qualvar::StateSet;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::states::{StateAlgorithm, StatesConfig};

fn quick_cfg() -> DerivationConfig {
    DerivationConfig {
        states: StatesConfig {
            max_states: 4,
            ..StatesConfig::default()
        },
        sample_size: Some(160),
        fit_probe_estimator: false,
        ..DerivationConfig::default()
    }
}

fn main() {
    let mut h = Harness::new("derivation");

    for (class, name) in [
        (QueryClass::UnaryNoIndex, "unary_g1"),
        (QueryClass::UnaryNonClusteredIndex, "unary_g2"),
        (QueryClass::JoinNoIndex, "join_g3"),
    ] {
        h.bench(&format!("derive_cost_model/{name}"), 1, 10, || {
            let mut agent = Site::Oracle.dynamic_agent(31);
            derive_cost_model(
                &mut agent,
                class,
                StateAlgorithm::Iupma,
                &quick_cfg(),
                &mut PipelineCtx::seeded(32),
            )
            .expect("derivation succeeds")
        });
    }

    // Ablation: the same observations fitted under each regression form of
    // paper Table 2 — quantifying what the general form costs over the
    // restricted ones.
    let mut agent = Site::Oracle.dynamic_agent(41);
    let mut generator = SampleGenerator::new(42);
    let obs = collect_observations(
        &mut agent,
        QueryClass::UnaryNoIndex,
        240,
        &mut generator,
        None,
    )
    .expect("collection succeeds");
    let (lo, hi) = obs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), o| {
            (a.min(o.probe_cost), b.max(o.probe_cost))
        });
    let states = StateSet::uniform(lo, hi, 4).expect("valid range");
    for form in [
        ModelForm::Parallel,
        ModelForm::Concurrent,
        ModelForm::General,
    ] {
        h.bench(&format!("form_ablation/{form:?}"), 5, 50, || {
            fit_cost_model(
                form,
                states.clone(),
                vec![0, 1, 2],
                vec!["N_O".into(), "N_I".into(), "N_R".into()],
                &obs,
            )
            .expect("fit succeeds")
        });
    }

    // Ablation: IUPMA vs ICMA inside the full pipeline on clustered loads.
    for (algo, name) in [
        (StateAlgorithm::Iupma, "iupma"),
        (StateAlgorithm::Icma, "icma"),
    ] {
        h.bench(&format!("algorithm_ablation/{name}"), 1, 10, || {
            let mut agent = Site::Oracle.clustered_agent(51);
            derive_cost_model(
                &mut agent,
                QueryClass::UnaryNoIndex,
                algo,
                &quick_cfg(),
                &mut PipelineCtx::seeded(52),
            )
            .expect("derivation succeeds")
        });
    }

    h.finish();
}
