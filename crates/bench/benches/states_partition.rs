//! Benchmarks of contention-state machinery: 1-D agglomerative clustering,
//! state lookup, and the full IUPMA/ICMA determination loop — the ablation
//! the paper's §3.3 motivates (uniform vs clustering-based partitioning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbs_core::observation::Observation;
use mdbs_core::qualvar::StateSet;
use mdbs_core::states::{determine_states, NoResampling, StateAlgorithm, StatesConfig};
use mdbs_stats::cluster_1d;
use std::hint::black_box;

/// Synthetic observations with `regimes` genuine contention regimes and
/// clustered probing costs.
fn clustered_observations(n: usize, regimes: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            let r = i % regimes;
            let x = (i % 29) as f64 * 40.0;
            let centre = 1.0 + r as f64 * 3.0;
            let probe = centre + ((i % 11) as f64 - 5.0) * 0.04;
            Observation {
                x: vec![x],
                cost: (r + 1) as f64 * (0.5 + 0.02 * x) + (i % 7) as f64 * 0.01,
                probe_cost: probe,
            }
        })
        .collect()
}

fn bench_cluster_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_1d");
    for &n in &[200usize, 600, 2_000] {
        let probes: Vec<f64> = clustered_observations(n, 3)
            .iter()
            .map(|o| o.probe_cost)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &probes, |b, p| {
            b.iter(|| black_box(cluster_1d(p, 4)));
        });
    }
    group.finish();
}

fn bench_state_lookup(c: &mut Criterion) {
    let states = StateSet::uniform(0.0, 10.0, 6).expect("valid partition");
    c.bench_function("state_of_lookup", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1_000 {
                acc += states.state_of(black_box(i as f64 * 0.011));
            }
            black_box(acc)
        });
    });
}

fn bench_determination(c: &mut Criterion) {
    let mut group = c.benchmark_group("determine_states");
    group.sample_size(20);
    for (algo, name) in [
        (StateAlgorithm::Iupma, "iupma"),
        (StateAlgorithm::Icma, "icma"),
    ] {
        for &n in &[300usize, 600] {
            let base = clustered_observations(n, 4);
            group.bench_function(format!("{name}/{n}"), |b| {
                b.iter(|| {
                    let mut obs = base.clone();
                    black_box(
                        determine_states(
                            algo,
                            &mut obs,
                            &[0],
                            &["x".to_string()],
                            &StatesConfig::default(),
                            &mut NoResampling,
                        )
                        .expect("determination succeeds"),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cluster_1d,
    bench_state_lookup,
    bench_determination
);
criterion_main!(benches);
