//! Benchmarks of contention-state machinery: 1-D agglomerative clustering,
//! state lookup, and the full IUPMA/ICMA determination loop — the ablation
//! the paper's §3.3 motivates (uniform vs clustering-based partitioning).

use mdbs_bench::harness::Harness;
use mdbs_core::observation::Observation;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::qualvar::StateSet;
use mdbs_core::states::{determine_states, NoResampling, StateAlgorithm, StatesConfig};
use mdbs_stats::cluster_1d;
use std::hint::black_box;

/// Synthetic observations with `regimes` genuine contention regimes and
/// clustered probing costs.
fn clustered_observations(n: usize, regimes: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            let r = i % regimes;
            let x = (i % 29) as f64 * 40.0;
            let centre = 1.0 + r as f64 * 3.0;
            let probe = centre + ((i % 11) as f64 - 5.0) * 0.04;
            Observation {
                x: vec![x],
                cost: (r + 1) as f64 * (0.5 + 0.02 * x) + (i % 7) as f64 * 0.01,
                probe_cost: probe,
            }
        })
        .collect()
}

fn main() {
    let mut h = Harness::new("states_partition");

    for &n in &[200usize, 600, 2_000] {
        let probes: Vec<f64> = clustered_observations(n, 3)
            .iter()
            .map(|o| o.probe_cost)
            .collect();
        h.bench(&format!("cluster_1d/{n}"), 5, 50, || cluster_1d(&probes, 4));
    }

    let states = StateSet::uniform(0.0, 10.0, 6).expect("valid partition");
    h.bench("state_of_lookup", 10, 200, || {
        let mut acc = 0usize;
        for i in 0..1_000 {
            acc += states.state_of(black_box(i as f64 * 0.011));
        }
        acc
    });

    for (algo, name) in [
        (StateAlgorithm::Iupma, "iupma"),
        (StateAlgorithm::Icma, "icma"),
    ] {
        for &n in &[300usize, 600] {
            let base = clustered_observations(n, 4);
            h.bench(&format!("determine_states/{name}/{n}"), 2, 20, || {
                let mut obs = base.clone();
                determine_states(
                    algo,
                    &mut obs,
                    &[0],
                    &["x".to_string()],
                    &StatesConfig::default(),
                    &mut NoResampling,
                    &mut PipelineCtx::default(),
                )
                .expect("determination succeeds")
            });
        }
    }

    h.finish();
}
