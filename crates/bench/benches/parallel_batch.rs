//! Serial vs multi-worker batch derivation wall-clock, plus the concurrent
//! model registry's read path. The interesting number is the speedup of
//! `derive_all/{2,4,8}_workers` over `derive_all/1_worker` — on a
//! single-CPU host it is ~1x by construction; the derived catalog is
//! byte-identical at every worker count either way.

use mdbs_bench::experiments::parallel_derive::run_batch;
use mdbs_bench::harness::Harness;
use mdbs_bench::workloads::Site;
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::states::StateAlgorithm;

fn main() {
    let mut h = Harness::new("parallel_batch");

    for workers in [1usize, 2, 4, 8] {
        h.bench(&format!("derive_all/{workers}_workers"), 0, 5, || {
            let (export, _) = run_batch(150, workers, 7).expect("batch derivation succeeds");
            export
        });
    }

    // The registry hot path the pool publishes into: estimation-side reads.
    let mut agent = Site::Oracle.dynamic_agent(31);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(32),
    )
    .expect("derivation succeeds");
    let registry = ModelRegistry::new();
    registry.publish("oracle".into(), QueryClass::UnaryNoIndex, derived.model);
    let site = "oracle".into();
    h.bench("registry/get_hit", 100, 10_000, || {
        registry.get(&site, QueryClass::UnaryNoIndex)
    });
    h.bench("registry/get_miss", 100, 10_000, || {
        registry.get(&site, QueryClass::JoinNoIndex)
    });

    h.finish();
}
