//! A tiny in-tree wall-clock benchmark harness.
//!
//! The workspace keeps its dependency set hermetic (path crates only), so
//! the `[[bench]]` targets are plain `fn main()` programs built on this
//! harness instead of an external benchmarking framework. Each measurement
//! runs a closure for a configurable number of warmup iterations (excluded
//! from the report) followed by `iters` timed iterations, then reports the
//! **median** and **p95** per-iteration wall-clock time — the median is
//! robust against scheduler hiccups, the p95 surfaces tail distortions
//! that a mean would hide.
//!
//! Usage inside a bench target (`harness = false` in `Cargo.toml`):
//!
//! ```no_run
//! use mdbs_bench::harness::Harness;
//!
//! let mut h = Harness::new("my_bench");
//! h.bench("fast_path", 10, 100, || 2 + 2);
//! h.finish();
//! ```
//!
//! `cargo bench` passes filter arguments through; [`Harness::new`] reads
//! them from the process arguments, so `cargo bench qr` runs only the
//! measurements whose name contains `"qr"`.
//!
//! `--json PATH` (or `--json=PATH`) additionally writes the report as a
//! machine-readable JSON document when [`Harness::finish`] runs, so CI can
//! track results without scraping the human-oriented table.

use mdbs_obs::json::Json;
use std::hint::black_box;
// lint:allow(no-wall-clock): the bench harness exists to measure wall-clock time; nothing here feeds reproducible output
#[allow(clippy::disallowed_types)]
use std::time::Instant;

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Measurement name (`group/case`-style by convention).
    pub name: String,
    /// Timed iterations (after warmup).
    pub iters: usize,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: u128,
    /// 95th-percentile per-iteration time in nanoseconds.
    pub p95_ns: u128,
    /// Fastest iteration in nanoseconds.
    pub min_ns: u128,
    /// Arithmetic-mean iteration time in nanoseconds.
    pub mean_ns: u128,
}

/// Collects measurements and prints a report at the end.
#[derive(Debug)]
pub struct Harness {
    title: String,
    filters: Vec<String>,
    results: Vec<Measurement>,
    json_path: Option<String>,
}

impl Harness {
    /// A harness reading name filters from the command line (as passed
    /// through by `cargo bench -- <filter>`). `--json PATH` (or
    /// `--json=PATH`) selects a JSON report file; other `--`-prefixed
    /// flags that the test harness would consume, like `--bench`, are
    /// ignored.
    pub fn new(title: &str) -> Harness {
        let mut filters = Vec::new();
        let mut json_path = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--json" {
                json_path = Some(args.next().expect("--json needs a file path"));
            } else if let Some(p) = a.strip_prefix("--json=") {
                json_path = Some(p.to_string());
            } else if !a.starts_with("--") {
                filters.push(a);
            }
        }
        let mut h = Harness::with_filters(title, filters);
        h.json_path = json_path;
        h
    }

    /// A harness with explicit name filters (empty = run everything).
    pub fn with_filters(title: &str, filters: Vec<String>) -> Harness {
        println!("\n== {title} ==");
        println!(
            "{:<38} {:>8} {:>12} {:>12} {:>12}",
            "benchmark", "iters", "median", "p95", "min"
        );
        Harness {
            title: title.to_string(),
            filters,
            results: Vec::new(),
            json_path: None,
        }
    }

    /// Redirects the JSON report to `path` (what `--json PATH` sets).
    pub fn set_json_path(&mut self, path: impl Into<String>) {
        self.json_path = Some(path.into());
    }

    /// Whether `name` passes the command-line filters.
    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Times `f` for `iters` iterations after `warmup` unrecorded runs and
    /// records median/p95/min/mean. The closure's result is passed through
    /// [`black_box`] so the optimizer cannot delete the measured work.
    #[allow(clippy::disallowed_methods, clippy::disallowed_types)]
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, warmup: usize, iters: usize, mut f: F) {
        assert!(iters > 0, "need at least one timed iteration");
        if !self.selected(name) {
            return;
        }
        for _ in 0..warmup {
            black_box(f());
        }
        let mut samples_ns: Vec<u128> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            black_box(f());
            samples_ns.push(start.elapsed().as_nanos());
        }
        samples_ns.sort_unstable();
        let median_ns = samples_ns[samples_ns.len() / 2];
        // Nearest-rank p95: smallest sample ≥ 95 % of the distribution.
        let p95_idx =
            ((samples_ns.len() as f64 * 0.95).ceil() as usize).clamp(1, samples_ns.len()) - 1;
        let m = Measurement {
            name: name.to_string(),
            iters,
            median_ns,
            p95_ns: samples_ns[p95_idx],
            min_ns: samples_ns[0],
            mean_ns: samples_ns.iter().sum::<u128>() / samples_ns.len() as u128,
        };
        println!(
            "{:<38} {:>8} {:>12} {:>12} {:>12}",
            m.name,
            m.iters,
            format_ns(m.median_ns),
            format_ns(m.p95_ns),
            format_ns(m.min_ns),
        );
        self.results.push(m);
    }

    /// Records a measurement computed outside the wall-clock timer — e.g.
    /// virtual-time latency percentiles from a deterministic replay, where
    /// the "duration" is simulated rather than measured. `iters` is the
    /// number of underlying samples the caller aggregated; the harness
    /// prints and reports it exactly like a timed measurement.
    pub fn record(&mut self, name: &str, iters: usize, median_ns: u128, p95_ns: u128) {
        assert!(iters > 0, "need at least one underlying sample");
        if !self.selected(name) {
            return;
        }
        let m = Measurement {
            name: name.to_string(),
            iters,
            median_ns,
            p95_ns,
            min_ns: median_ns.min(p95_ns),
            mean_ns: median_ns,
        };
        println!(
            "{:<38} {:>8} {:>12} {:>12} {:>12}",
            m.name,
            m.iters,
            format_ns(m.median_ns),
            format_ns(m.p95_ns),
            format_ns(m.min_ns),
        );
        self.results.push(m);
    }

    /// The measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the report as a JSON document (what the `--json` file gets).
    pub fn to_json(&self) -> Json {
        let results: Vec<Json> = self
            .results
            .iter()
            .map(|m| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(m.name.clone())),
                    ("iters".into(), Json::Int(m.iters as i64)),
                    ("median_ns".into(), Json::Int(m.median_ns as i64)),
                    ("p95_ns".into(), Json::Int(m.p95_ns as i64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("title".into(), Json::Str(self.title.clone())),
            ("results".into(), Json::Arr(results)),
        ])
    }

    /// Prints the closing line and, when `--json PATH` was given, writes
    /// the JSON report. Call once at the end of `main`.
    pub fn finish(self) {
        if let Some(path) = &self.json_path {
            std::fs::write(path, self.to_json().render() + "\n")
                .unwrap_or_else(|e| panic!("writing bench JSON to {path}: {e}"));
            println!("json report -> {path}");
        }
        println!(
            "== {}: {} measurement(s) ==\n",
            self.title,
            self.results.len()
        );
    }
}

/// Renders nanoseconds with an adaptive unit (ns / µs / ms / s).
fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_requested_iterations_and_orders_stats() {
        let mut h = Harness::with_filters("test", vec![]);
        h.bench("noop", 2, 25, || 1 + 1);
        let m = &h.results()[0];
        assert_eq!(m.iters, 25);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.median_ns <= m.p95_ns);
    }

    #[test]
    fn filters_skip_unmatched_names() {
        let mut h = Harness::with_filters("test", vec!["keep".into()]);
        h.bench("keep/this", 0, 5, || ());
        h.bench("drop/this", 0, 5, || ());
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "keep/this");
    }

    #[test]
    fn json_report_has_expected_shape() {
        let mut h = Harness::with_filters("test", vec![]);
        h.bench("a/b", 0, 5, || 1);
        let j = h.to_json();
        assert_eq!(j.get("title").and_then(Json::as_str), Some("test"));
        let results = match j.get("results") {
            Some(Json::Arr(v)) => v,
            other => panic!("results should be an array, got {other:?}"),
        };
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.get("name").and_then(Json::as_str), Some("a/b"));
        assert_eq!(r.get("iters").and_then(Json::as_i64), Some(5));
        assert!(r.get("median_ns").and_then(Json::as_i64).is_some());
        assert!(r.get("p95_ns").and_then(Json::as_i64).is_some());
        // The rendered report parses back.
        mdbs_obs::json::parse(&j.render()).expect("valid JSON");
    }

    #[test]
    fn injected_measurements_report_like_timed_ones() {
        let mut h = Harness::with_filters("test", vec![]);
        h.record("virtual/latency", 40, 1_000_000, 5_000_000);
        let m = &h.results()[0];
        assert_eq!((m.iters, m.median_ns, m.p95_ns), (40, 1_000_000, 5_000_000));
        let j = h.to_json();
        // Injected rows satisfy the same JSON contract bench-json-check
        // enforces on timed rows.
        let r = match j.get("results") {
            Some(Json::Arr(v)) => &v[0],
            other => panic!("results should be an array, got {other:?}"),
        };
        assert_eq!(r.get("median_ns").and_then(Json::as_i64), Some(1_000_000));
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(1_500), "1.50 µs");
        assert_eq!(format_ns(2_000_000), "2.00 ms");
        assert_eq!(format_ns(3_000_000_000), "3.00 s");
    }
}
