//! Validates a bench-harness `--json` report.
//!
//! CI runs a bench with `--json PATH` and then this checker against the
//! produced file, so a regression in the report shape (or a bench that
//! silently recorded nothing) fails the pipeline instead of producing an
//! unparseable artifact. Exit status 0 means the file parses and every
//! measurement carries the expected fields.

#![forbid(unsafe_code)]

use mdbs_obs::json::{parse, Json};

fn fail(msg: &str) -> ! {
    eprintln!("bench-json-check: {msg}");
    std::process::exit(1);
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => fail("usage: bench-json-check <report.json>"),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("reading {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path}: invalid JSON: {e}")),
    };
    let title = doc
        .get("title")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail(&format!("{path}: missing string `title`")));
    let results = match doc.get("results") {
        Some(Json::Arr(items)) => items,
        _ => fail(&format!("{path}: missing array `results`")),
    };
    if results.is_empty() {
        fail(&format!("{path}: no measurements recorded"));
    }
    for (i, r) in results.iter().enumerate() {
        let name = r
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("{path}: result {i}: missing string `name`")));
        for field in ["iters", "median_ns", "p95_ns"] {
            let v = r
                .get(field)
                .and_then(Json::as_i64)
                .unwrap_or_else(|| fail(&format!("{path}: `{name}`: missing integer `{field}`")));
            if v <= 0 {
                fail(&format!("{path}: `{name}`: non-positive `{field}` ({v})"));
            }
        }
    }
    println!(
        "bench-json-check: {path} ok — `{title}`, {} measurement(s)",
        results.len()
    );
}
