//! `strip-telemetry` — normalizes mixed CLI output for byte-comparison.
//!
//! Reads a file (first argument) or stdin, passes non-telemetry lines
//! through unchanged, and rewrites the embedded telemetry JSONL with
//! [`mdbs_obs::telemetry::strip_wall_clock`]: `wall_ms` span fields are
//! dropped and scheduling-dependent metrics (the `pool.sched.` prefix)
//! removed. What remains is exactly the deterministic portion, so CI can
//! `cmp` two `serve --loop --telemetry` runs at different `--jobs` counts.
//!
//! Telemetry lines are recognized as lines that parse as JSON objects with
//! a `"type"` key (`span`/`counter`/`gauge`/`histogram`) — the shape every
//! line of [`mdbs_obs::telemetry::Telemetry::render_jsonl`] has, and which
//! none of the human-oriented report lines share.

#![forbid(unsafe_code)]

use mdbs_obs::json::parse;
use mdbs_obs::telemetry::strip_wall_clock;
use std::io::Read;

fn main() {
    let mut input = String::new();
    match std::env::args().nth(1) {
        Some(path) => {
            input = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("strip-telemetry: reading {path}: {e}"));
        }
        None => {
            std::io::stdin()
                .read_to_string(&mut input)
                .expect("strip-telemetry: reading stdin");
        }
    }
    let mut out = String::new();
    for line in input.lines() {
        let is_telemetry =
            line.starts_with('{') && parse(line).is_ok_and(|j| j.get("type").is_some());
        if is_telemetry {
            // strip_wall_clock may drop the line entirely (sched metrics).
            out.push_str(&strip_wall_clock(line));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    print!("{out}");
}
