//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [fig1|table4|table5|table6|fig4_9|fig10|states|all]
//! ```
//!
//! `--quick` trades sample sizes for speed (useful for smoke runs); the
//! default uses the paper's planned sample sizes (eq. (4)).

use mdbs_bench::experiments::fig4_9::multi_wins;
use mdbs_bench::experiments::{
    average_improvement, fig1, fig10, fig4_9, forms_ablation, noise_sensitivity, plan_quality,
    probe_ablation, range_sensitivity, states_sweep, table4, table5, table6, Table5Config,
};
use mdbs_core::classes::QueryClass;
use std::process::ExitCode;

struct Options {
    quick: bool,
}

impl Options {
    fn table5_config(&self) -> Table5Config {
        if self.quick {
            Table5Config::quick()
        } else {
            Table5Config::default()
        }
    }

    fn sample_size(&self) -> Option<usize> {
        self.quick.then_some(180)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let target = targets.first().copied().unwrap_or("all");
    let opts = Options { quick };

    let known = [
        "fig1",
        "table4",
        "table5",
        "table6",
        "fig4_9",
        "fig10",
        "states",
        "forms",
        "probe",
        "sensitivity",
        "plans",
        "all",
    ];
    if !known.contains(&target) {
        eprintln!(
            "unknown target `{target}`; expected one of: {}",
            known.join(", ")
        );
        return ExitCode::FAILURE;
    }

    let run = |name: &str| target == name || target == "all";
    let result = (|| -> Result<(), Box<dyn std::error::Error>> {
        if run("fig1") {
            banner("E-FIG1");
            println!("{}", fig1(if opts.quick { 2 } else { 5 }));
        }
        if run("fig10") {
            banner("E-FIG10");
            println!("{}", fig10(if opts.quick { 300 } else { 800 }, 40));
        }
        if run("states") {
            banner("E-STATES");
            println!(
                "{}",
                states_sweep(
                    QueryClass::UnaryNonClusteredIndex,
                    if opts.quick { 300 } else { 500 },
                    6
                )?
            );
        }
        if run("table4") {
            banner("E-TAB4");
            println!("{}", table4(opts.sample_size())?);
        }
        if run("table5") || run("fig4_9") {
            banner("E-TAB5");
            let t5 = table5(&opts.table5_config())?;
            println!("{t5}");
            let (d_vg, d_g) = average_improvement(&t5);
            println!(
                "\nmulti-states vs one-state, averaged over the 6 combinations: \
                 {d_vg:+.1} pp very-good, {d_g:+.1} pp good \
                 (paper: +27.0 pp and +20.2 pp)"
            );
            if run("fig4_9") || target == "all" {
                banner("E-FIG4..9");
                let figs = fig4_9(&t5);
                println!("{figs}");
                println!(
                    "multi-states tracks observations better in {}/6 figures",
                    multi_wins(&figs)
                );
            }
        }
        if run("forms") {
            banner("E-FORMS (ablation)");
            println!(
                "{}",
                forms_ablation(
                    QueryClass::UnaryNoIndex,
                    if opts.quick { 220 } else { 360 },
                    4,
                    if opts.quick { 50 } else { 100 }
                )?
            );
        }
        if run("probe") {
            banner("E-PROBE (ablation)");
            println!(
                "{}",
                probe_ablation(
                    QueryClass::UnaryNoIndex,
                    if opts.quick { 220 } else { 360 },
                    if opts.quick { 50 } else { 100 }
                )?
            );
        }
        if run("sensitivity") {
            banner("E-SENS (extension)");
            let (n, t) = if opts.quick { (200, 40) } else { (300, 80) };
            println!("{}", noise_sensitivity(n, t)?);
            println!("{}", range_sensitivity(n, t)?);
        }
        if run("plans") {
            banner("E-PLAN (extension)");
            let (n, sc) = if opts.quick { (300, 10) } else { (500, 20) };
            println!("{}", plan_quality(n, sc)?);
        }
        if run("table6") {
            banner("E-TAB6");
            println!(
                "{}",
                table6(
                    QueryClass::UnaryNoIndex,
                    opts.sample_size(),
                    if opts.quick { 50 } else { 100 }
                )?
            );
        }
        Ok(())
    })();

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn banner(name: &str) {
    println!("\n================= {name} =================\n");
}
