//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [--telemetry events.jsonl] [fig1|table4|table5|table6|fig4_9|fig10|states|parallel|all]
//! ```
//!
//! `--quick` trades sample sizes for speed (useful for smoke runs); the
//! default uses the paper's planned sample sizes (eq. (4)).
//!
//! Every target's stdout is byte-identical across runs except `parallel`,
//! which reports wall-clock times — it therefore only runs when named
//! explicitly, never as part of `all`.
//!
//! `--telemetry PATH` wraps every experiment in a span, validates the
//! rendered JSONL line-by-line (exiting non-zero if any line fails to
//! parse), writes it to PATH and prints the human-readable summary.

#![forbid(unsafe_code)]

use mdbs_bench::experiments::fig4_9::multi_wins;
use mdbs_bench::experiments::{
    average_improvement, fig1, fig10, fig4_9, forms_ablation, noise_sensitivity, parallel_derive,
    plan_quality, probe_ablation, range_sensitivity, states_sweep, table4, table5, table6,
    Table5Config,
};
use mdbs_core::classes::QueryClass;
use mdbs_obs::{json, JsonlFileSink, Telemetry};
use std::process::ExitCode;

struct Options {
    quick: bool,
}

impl Options {
    fn table5_config(&self) -> Table5Config {
        if self.quick {
            Table5Config::quick()
        } else {
            Table5Config::default()
        }
    }

    fn sample_size(&self) -> Option<usize> {
        self.quick.then_some(180)
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut telemetry_path: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--telemetry" => match args.next() {
                Some(path) => telemetry_path = Some(path),
                None => {
                    eprintln!("--telemetry requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown option `{other}`");
                return ExitCode::FAILURE;
            }
            other => targets.push(other.to_string()),
        }
    }
    let target = targets.first().map(String::as_str).unwrap_or("all");
    let opts = Options { quick };
    let mut tel = if telemetry_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    let known = [
        "fig1",
        "table4",
        "table5",
        "table6",
        "fig4_9",
        "fig10",
        "states",
        "forms",
        "probe",
        "sensitivity",
        "plans",
        "parallel",
        "all",
    ];
    if !known.contains(&target) {
        eprintln!(
            "unknown target `{target}`; expected one of: {}",
            known.join(", ")
        );
        return ExitCode::FAILURE;
    }

    let root = tel.begin_span("repro");
    tel.field(root, "target", target.to_string());
    tel.field(root, "quick", if quick { 1u64 } else { 0u64 });

    // `parallel` prints wall-clock times (its whole point), which would
    // break `all`'s byte-identical-stdout guarantee — explicit target only.
    let run = |name: &str| target == name || (target == "all" && name != "parallel");
    let result = (|tel: &mut Telemetry| -> Result<(), Box<dyn std::error::Error>> {
        let experiment = |tel: &mut Telemetry, name: &str| {
            tel.inc("repro.experiments", 1);
            tel.begin_span(&format!("repro.{name}"))
        };
        if run("fig1") {
            let span = experiment(tel, "fig1");
            banner("E-FIG1");
            println!("{}", fig1(if opts.quick { 2 } else { 5 }));
            tel.end_span(span);
        }
        if run("fig10") {
            let span = experiment(tel, "fig10");
            banner("E-FIG10");
            println!("{}", fig10(if opts.quick { 300 } else { 800 }, 40));
            tel.end_span(span);
        }
        if run("states") {
            let span = experiment(tel, "states");
            banner("E-STATES");
            println!(
                "{}",
                states_sweep(
                    QueryClass::UnaryNonClusteredIndex,
                    if opts.quick { 300 } else { 500 },
                    6
                )?
            );
            tel.end_span(span);
        }
        if run("table4") {
            let span = experiment(tel, "table4");
            banner("E-TAB4");
            println!("{}", table4(opts.sample_size())?);
            tel.end_span(span);
        }
        if run("table5") || run("fig4_9") {
            let span = experiment(tel, "table5");
            banner("E-TAB5");
            let t5 = table5(&opts.table5_config())?;
            println!("{t5}");
            let (d_vg, d_g) = average_improvement(&t5);
            tel.field(span, "avg_very_good_improvement_pp", d_vg);
            tel.field(span, "avg_good_improvement_pp", d_g);
            println!(
                "\nmulti-states vs one-state, averaged over the 6 combinations: \
                 {d_vg:+.1} pp very-good, {d_g:+.1} pp good \
                 (paper: +27.0 pp and +20.2 pp)"
            );
            tel.end_span(span);
            if run("fig4_9") || target == "all" {
                let span = experiment(tel, "fig4_9");
                banner("E-FIG4..9");
                let figs = fig4_9(&t5);
                println!("{figs}");
                let wins = multi_wins(&figs);
                tel.field(span, "multi_wins", wins as u64);
                println!("multi-states tracks observations better in {wins}/6 figures");
                tel.end_span(span);
            }
        }
        if run("forms") {
            let span = experiment(tel, "forms");
            banner("E-FORMS (ablation)");
            println!(
                "{}",
                forms_ablation(
                    QueryClass::UnaryNoIndex,
                    if opts.quick { 220 } else { 360 },
                    4,
                    if opts.quick { 50 } else { 100 }
                )?
            );
            tel.end_span(span);
        }
        if run("probe") {
            let span = experiment(tel, "probe");
            banner("E-PROBE (ablation)");
            println!(
                "{}",
                probe_ablation(
                    QueryClass::UnaryNoIndex,
                    if opts.quick { 220 } else { 360 },
                    if opts.quick { 50 } else { 100 }
                )?
            );
            tel.end_span(span);
        }
        if run("sensitivity") {
            let span = experiment(tel, "sensitivity");
            banner("E-SENS (extension)");
            let (n, t) = if opts.quick { (200, 40) } else { (300, 80) };
            println!("{}", noise_sensitivity(n, t)?);
            println!("{}", range_sensitivity(n, t)?);
            tel.end_span(span);
        }
        if run("plans") {
            let span = experiment(tel, "plans");
            banner("E-PLAN (extension)");
            let (n, sc) = if opts.quick { (300, 10) } else { (500, 20) };
            println!("{}", plan_quality(n, sc)?);
            tel.end_span(span);
        }
        if run("parallel") {
            let span = experiment(tel, "parallel");
            banner("E-PAR (extension)");
            let sweep = parallel_derive(if opts.quick { 150 } else { 300 }, &[1, 2, 4, 8])?;
            println!("{sweep}");
            if sweep.rows.iter().any(|r| !r.identical) {
                return Err("parallel batch diverged from the serial catalog".into());
            }
            tel.field(span, "jobs", sweep.jobs as u64);
            tel.end_span(span);
        }
        if run("table6") {
            let span = experiment(tel, "table6");
            banner("E-TAB6");
            println!(
                "{}",
                table6(
                    QueryClass::UnaryNoIndex,
                    opts.sample_size(),
                    if opts.quick { 50 } else { 100 }
                )?
            );
            tel.end_span(span);
        }
        Ok(())
    })(&mut tel);

    tel.end_span(root);

    match result {
        Ok(()) => {
            if let Some(path) = &telemetry_path {
                write_telemetry(&tel, path)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates every rendered JSONL line, writes the stream to `path` and
/// prints the summary. Exits non-zero on an unparseable line so CI smoke
/// runs can rely on the binary's exit status alone.
fn write_telemetry(tel: &Telemetry, path: &str) -> ExitCode {
    for (i, line) in tel.render_jsonl().lines().enumerate() {
        if let Err(e) = json::parse(line) {
            eprintln!(
                "internal error: telemetry line {} is not valid JSON ({e:?}): {line}",
                i + 1
            );
            return ExitCode::FAILURE;
        }
    }
    let mut sink = match JsonlFileSink::create(std::path::Path::new(path)) {
        Ok(sink) => sink,
        Err(e) => {
            eprintln!("cannot create telemetry file `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    tel.emit_to(&mut sink);
    if let Err(e) = sink.finish() {
        eprintln!("cannot write telemetry file `{path}`: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "\ntelemetry: {} event(s) written to {path}",
        tel.events().len()
    );
    print!("{}", tel.render_summary());
    ExitCode::SUCCESS
}

fn banner(name: &str) {
    println!("\n================= {name} =================\n");
}
