//! Canonical experimental setups, mirroring the paper's testbed (§5):
//! two local DBSs — Oracle 8.0 and DB2 5.0 — each hosting the standard
//! 12-table database, driven by a load builder.

use mdbs_core::classes::QueryClass;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

/// Contention range of the uniform dynamic environment (processes). The
/// paper's dynamic experiments ran well into contention (Fig. 1 sweeps
/// 50–130 processes); the lower edge stays above the static baseline so
/// "dynamic" genuinely differs from "static".
pub const UNIFORM_LO: f64 = 20.0;
/// Upper end of the uniform dynamic environment (processes).
pub const UNIFORM_HI: f64 = 125.0;
/// Background processes of the *static* environment (Static Approach 1):
/// a quiet machine, the situation the earlier static query sampling method
/// was designed for.
pub const STATIC_PROCS: f64 = 5.0;

/// The two simulated local DBMS vendors of the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// The Oracle-8.0-like local DBS.
    Oracle,
    /// The DB2-5.0-like local DBS.
    Db2,
}

impl Site {
    /// Both sites, in report order (paper tables list DB2 first).
    pub fn all() -> [Site; 2] {
        [Site::Db2, Site::Oracle]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Site::Oracle => "Oracle 8.0",
            Site::Db2 => "DB2 5.0",
        }
    }

    /// The vendor profile.
    pub fn vendor(self) -> VendorProfile {
        match self {
            Site::Oracle => VendorProfile::oracle8(),
            Site::Db2 => VendorProfile::db2v5(),
        }
    }

    /// Database seed: each site hosts its own random database, as in the
    /// paper's two independent local databases.
    pub fn db_seed(self) -> u64 {
        match self {
            Site::Oracle => 42,
            Site::Db2 => 43,
        }
    }

    /// A fresh agent for this site with an idle, static environment.
    pub fn agent(self, env_seed: u64) -> MdbsAgent {
        MdbsAgent::new(self.vendor(), standard_database(self.db_seed()), env_seed)
    }

    /// A fresh agent in the uniform dynamic environment.
    pub fn dynamic_agent(self, env_seed: u64) -> MdbsAgent {
        let mut a = self.agent(env_seed);
        a.set_load_builder(LoadBuilder::new(uniform_profile()));
        a
    }

    /// A fresh agent in the clustered dynamic environment (Table 6 case).
    pub fn clustered_agent(self, env_seed: u64) -> MdbsAgent {
        let mut a = self.agent(env_seed);
        a.set_load_builder(LoadBuilder::new(clustered_profile()));
        a
    }

    /// A fresh agent pinned to the static environment.
    pub fn static_agent(self, env_seed: u64) -> MdbsAgent {
        let mut a = self.agent(env_seed);
        a.set_load_builder(LoadBuilder::new(ContentionProfile::Constant(STATIC_PROCS)));
        a
    }
}

/// The uniform contention profile used by most experiments.
pub fn uniform_profile() -> ContentionProfile {
    ContentionProfile::Uniform {
        lo: UNIFORM_LO,
        hi: UNIFORM_HI,
    }
}

/// The clustered contention profile of Table 6 / Figure 10.
pub fn clustered_profile() -> ContentionProfile {
    ContentionProfile::paper_clustered()
}

/// The paper's three representative query classes, with their table labels.
pub fn paper_classes() -> [(QueryClass, &'static str); 3] {
    [
        (QueryClass::UnaryNoIndex, "G1"),
        (QueryClass::UnaryNonClusteredIndex, "G2"),
        (QueryClass::JoinNoIndex, "G3"),
    ]
}

/// A deterministic seed for `(site, class, role)` so every experiment is
/// reproducible yet streams are independent.
pub fn seed_for(site: Site, class: QueryClass, role: u64) -> u64 {
    let s = match site {
        Site::Oracle => 1u64,
        Site::Db2 => 2,
    };
    let c = QueryClass::all()
        .iter()
        .position(|&x| x == class)
        .expect("known class") as u64;
    1_000_003 * s + 7_919 * c + role
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_have_distinct_setups() {
        assert_ne!(Site::Oracle.vendor(), Site::Db2.vendor());
        assert_ne!(Site::Oracle.db_seed(), Site::Db2.db_seed());
        assert_ne!(Site::Oracle.name(), Site::Db2.name());
    }

    #[test]
    fn seeds_are_unique_across_roles() {
        let mut seen = std::collections::BTreeSet::new();
        for site in Site::all() {
            for (class, _) in paper_classes() {
                for role in 0..4 {
                    assert!(seen.insert(seed_for(site, class, role)));
                }
            }
        }
    }

    #[test]
    fn agents_are_constructible() {
        let mut a = Site::Oracle.dynamic_agent(1);
        a.tick();
        assert!(a.probe() > 0.0);
        let mut s = Site::Db2.static_agent(1);
        s.tick();
        assert!(s.probe() > 0.0);
    }
}
