//! # mdbs-bench
//!
//! The reproduction harness: one runner per table and figure of the paper's
//! evaluation (§5), shared by the `repro` binary, the in-tree wall-clock
//! benches ([`harness`]) and the integration tests.
//!
//! | Experiment | Paper artifact | Runner |
//! |---|---|---|
//! | E-FIG1 | Fig. 1 — query cost vs concurrent processes | [`experiments::fig1`](mod@experiments::fig1) |
//! | E-TAB4 | Table 4 — derived multi-states cost models | [`experiments::table4`](mod@experiments::table4) |
//! | E-TAB5 | Table 5 — multi-states vs one-state vs static | [`experiments::table5`](mod@experiments::table5) |
//! | E-TAB6 | Table 6 — IUPMA vs ICMA, clustered contention | [`experiments::table6`](mod@experiments::table6) |
//! | E-FIG4..9 | Figs. 4–9 — observed vs estimated test costs | [`experiments::fig4_9`](mod@experiments::fig4_9) |
//! | E-FIG10 | Fig. 10 — contention-level histogram | [`experiments::fig10`](mod@experiments::fig10) |
//! | E-STATES | §5 — R² as the state count grows | [`experiments::states_sweep`](mod@experiments::states_sweep) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod workloads;
