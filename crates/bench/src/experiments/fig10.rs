//! **E-FIG10** — paper Figure 10: "Histogram of Contention Level in a
//! Clustered Case".
//!
//! The contention level is gauged by the probing-query cost; in the
//! clustered environment its frequency distribution shows distinct modes —
//! the situation ICMA is designed for.

use crate::workloads::Site;
use mdbs_stats::describe::{Histogram, Summary};

/// The histogram result.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Sampled probing costs.
    pub probes: Vec<f64>,
    /// The binned histogram.
    pub histogram: Histogram,
    /// Summary statistics of the sample.
    pub summary: Summary,
}

impl Fig10 {
    /// Counts local maxima of the (lightly smoothed) histogram — the
    /// number of visible contention clusters.
    pub fn modes(&self) -> usize {
        let c = &self.histogram.counts;
        if c.len() < 3 {
            return c.iter().filter(|&&x| x > 0).count().min(1);
        }
        // Smooth with a 3-bin moving average to suppress noise peaks.
        let smooth: Vec<f64> = (0..c.len())
            .map(|i| {
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(c.len() - 1);
                (lo..=hi).map(|j| c[j] as f64).sum::<f64>() / (hi - lo + 1) as f64
            })
            .collect();
        let peak = smooth.iter().fold(0.0f64, |a, &b| a.max(b));
        let floor = peak * 0.15;
        let mut modes = 0;
        let mut rising = true;
        for w in smooth.windows(2) {
            if w[1] > w[0] {
                rising = true;
            } else if w[1] < w[0] {
                if rising && w[0] > floor {
                    modes += 1;
                }
                rising = false;
            }
        }
        if rising && *smooth.last().expect("non-empty") > floor {
            modes += 1;
        }
        modes
    }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 10: contention level (probing cost, sec) in a clustered case"
        )?;
        writeln!(
            f,
            "n = {}, mean = {:.2}, min = {:.2}, max = {:.2}, modes ≈ {}",
            self.summary.n,
            self.summary.mean,
            self.summary.min,
            self.summary.max,
            self.modes()
        )?;
        write!(f, "{}", self.histogram.ascii(50))
    }
}

/// Samples `n` probing costs in the clustered environment and bins them.
pub fn fig10(n: usize, bins: usize) -> Fig10 {
    let mut agent = Site::Oracle.clustered_agent(1001);
    let probes: Vec<f64> = (0..n)
        .map(|_| {
            agent.tick();
            agent.probe()
        })
        .collect();
    let histogram = Histogram::build(&probes, bins.max(3), None).expect("non-empty probe sample");
    let summary = Summary::of(&probes).expect("non-empty probe sample");
    Fig10 {
        probes,
        histogram,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_probes_show_multiple_modes() {
        let r = fig10(600, 40);
        assert_eq!(r.probes.len(), 600);
        assert!(
            r.modes() >= 2,
            "histogram should show the clusters, got {} modes\n{}",
            r.modes(),
            r.histogram.ascii(40)
        );
    }

    #[test]
    fn display_includes_every_bin() {
        let r = fig10(200, 20);
        let text = r.to_string();
        assert!(text.lines().count() >= 22);
    }
}
