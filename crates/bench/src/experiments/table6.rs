//! **E-TAB6** — paper Table 6: "Statistics for Cost Models in a Clustered
//! Case".
//!
//! When the contention level follows a non-uniform, clustered distribution
//! (Figure 10), both state-determination algorithms still work, but ICMA's
//! cluster-aligned boundaries beat IUPMA's fixed uniform grid: the paper
//! measured R² 0.991 vs 0.978 and 82 % vs 58 % very-good estimates for a
//! query class under clustered contention.
//!
//! To isolate the partitioning question, both algorithms here run over the
//! *same* sample of observations, are compared at the *same* number of
//! states (the paper's table shows 3 vs 3), and are scored on the *same*
//! held-out test workload.

use crate::experiments::{run_test_suite, test_points};
use crate::workloads::{seed_for, Site};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::collect_observations;
use mdbs_core::model::CostModel;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::selection::{select_variables, SelectionConfig};
use mdbs_core::states::{determine_states, NoResampling, StateAlgorithm, StatesConfig};
use mdbs_core::validate::{quality, Quality};
use mdbs_core::CoreError;

/// One row of Table 6: one state-determination algorithm.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Algorithm name (`IUPMA` / `ICMA`).
    pub algorithm: String,
    /// Number of contention states determined.
    pub states: usize,
    /// R² on the (shared) sampling data.
    pub r_squared: f64,
    /// Standard error of estimation.
    pub see: f64,
    /// Average observed sample cost (shared between the rows).
    pub avg_cost: f64,
    /// Estimate quality on the shared clustered test workload.
    pub quality: Quality,
    /// The fitted model.
    pub model: CostModel,
}

/// The full Table-6 result.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Class label.
    pub label: String,
    /// IUPMA and ICMA rows (paper order: IUPMA first).
    pub rows: Vec<Table6Row>,
}

impl Table6 {
    /// The row of one algorithm.
    pub fn row(&self, algorithm: &str) -> Option<&Table6Row> {
        self.rows.iter().find(|r| r.algorithm == algorithm)
    }
}

impl std::fmt::Display for Table6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 6: cost models in a clustered case — {}",
            self.label
        )?;
        writeln!(
            f,
            "{:<8} {:>3} {:>8} {:>11} {:>11} {:>10} {:>7}",
            "algo", "m", "R^2", "SEE", "avg cost", "very good", "good"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>3} {:>8.3} {:>11.3e} {:>11.3e} {:>9.0}% {:>6.0}%",
                r.algorithm,
                r.states,
                r.r_squared,
                r.see,
                r.avg_cost,
                r.quality.very_good_pct,
                r.quality.good_pct
            )?;
        }
        Ok(())
    }
}

/// Runs the clustered-contention comparison for `class` on the Oracle site.
pub fn table6(
    class: QueryClass,
    sample_size: Option<usize>,
    test_queries: usize,
) -> Result<Table6, CoreError> {
    let site = Site::Oracle;
    let family = class.family();
    let n = sample_size.unwrap_or_else(|| {
        mdbs_core::sampling::planned_sample_size(family, StatesConfig::default().max_states)
    });

    // One shared sample in the clustered environment.
    let mut agent = site.clustered_agent(seed_for(site, class, 20));
    let mut generator = SampleGenerator::new(seed_for(site, class, 21));
    let base_observations = collect_observations(&mut agent, class, n, &mut generator, None)?;
    let avg_cost =
        base_observations.iter().map(|o| o.cost).sum::<f64>() / base_observations.len() as f64;

    let basic = family.basic_indexes();
    let basic_names: Vec<String> = basic
        .iter()
        .map(|&i| family.all()[i].name.to_string())
        .collect();

    // ICMA first (its natural state count becomes the matched budget).
    let fit_algo = |algo: StateAlgorithm, cap: Option<usize>| -> Result<CostModel, CoreError> {
        let mut obs = base_observations.clone();
        let cfg = StatesConfig {
            max_states: cap.unwrap_or(StatesConfig::default().max_states),
            ..StatesConfig::default()
        };
        let states_result = determine_states(
            algo,
            &mut obs,
            &basic,
            &basic_names,
            &cfg,
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )?;
        let sel = select_variables(
            family,
            &obs,
            &states_result.model.states,
            cfg.form,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )?;
        Ok(sel.model)
    };
    let icma_model = fit_algo(StateAlgorithm::Icma, None)?;
    let iupma_model = fit_algo(StateAlgorithm::Iupma, Some(icma_model.num_states()))?;

    // Shared test workload, both models priced per query.
    let points = run_test_suite(
        &mut agent,
        class,
        &[&iupma_model, &icma_model],
        test_queries,
        seed_for(site, class, 22),
    )?;

    let rows = vec![
        Table6Row {
            algorithm: "IUPMA".into(),
            states: iupma_model.num_states(),
            r_squared: iupma_model.fit.r_squared,
            see: iupma_model.fit.see,
            avg_cost,
            quality: quality(&test_points(&points, 0)),
            model: iupma_model,
        },
        Table6Row {
            algorithm: "ICMA".into(),
            states: icma_model.num_states(),
            r_squared: icma_model.fit.r_squared,
            see: icma_model.fit.see,
            avg_cost,
            quality: quality(&test_points(&points, 1)),
            model: icma_model,
        },
    ];
    Ok(Table6 {
        label: format!("{} on {}", class.label(), site.name()),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_algorithms_produce_valid_models() {
        let t = table6(QueryClass::UnaryNoIndex, Some(220), 40).unwrap();
        assert_eq!(t.rows.len(), 2);
        for r in &t.rows {
            assert!(r.states >= 2, "{} stayed single-state", r.algorithm);
            assert!(r.r_squared > 0.85, "{} R² {}", r.algorithm, r.r_squared);
        }
        assert!(t.row("IUPMA").is_some());
        assert!(t.row("ICMA").is_some());
        // Matched comparison: same sample, comparable state budgets.
        let (a, b) = (t.row("IUPMA").unwrap(), t.row("ICMA").unwrap());
        assert_eq!(a.avg_cost, b.avg_cost);
        assert!(a.states <= b.states);
    }

    #[test]
    fn icma_at_least_matches_iupma_on_clustered_loads() {
        let t = table6(QueryClass::UnaryNoIndex, Some(260), 60).unwrap();
        let iupma = t.row("IUPMA").unwrap();
        let icma = t.row("ICMA").unwrap();
        // The paper's shape: with the same data and state budget, ICMA's
        // cluster-aligned boundaries fit the clustered case at least as
        // well as the uniform grid.
        assert!(
            icma.r_squared >= iupma.r_squared - 0.02,
            "ICMA {} vs IUPMA {}",
            icma.r_squared,
            iupma.r_squared
        );
    }
}
