//! **E-TAB5** — paper Table 5: "Statistics for Cost Models".
//!
//! For each representative query class (G1, G2, G3) on each local DBS
//! (DB2, Oracle), three cost models are compared:
//!
//! * **multi-states** — the paper's method, derived in the dynamic
//!   environment (IUPMA),
//! * **one-state** — the static query sampling method applied to *dynamic*
//!   sampling data (Static Approach 2),
//! * **static** — the static method applied to data from a *static*
//!   environment (Static Approach 1), then evaluated in the dynamic one.
//!
//! Reported per model: R², standard error of estimation, average sample
//! cost, and the percentages of very-good (≤30 % relative error) and good
//! (within 2×) estimates on a held-out dynamic test workload.

use crate::experiments::{run_test_suite, test_points, MultiEstimatePoint};
use crate::workloads::{paper_classes, seed_for, Site};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig, DerivedModel};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::{StateAlgorithm, StatesConfig};
use mdbs_core::validate::quality;
use mdbs_core::CoreError;

/// Scale of a Table-5 style run.
#[derive(Debug, Clone)]
pub struct Table5Config {
    /// Override sample size per derivation (None → paper eq. (4)).
    pub sample_size: Option<usize>,
    /// Maximum number of contention states.
    pub max_states: usize,
    /// Held-out test queries per combination.
    pub test_queries: usize,
}

impl Default for Table5Config {
    fn default() -> Self {
        Table5Config {
            sample_size: None,
            max_states: 6,
            test_queries: 100,
        }
    }
}

impl Table5Config {
    /// A reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Table5Config {
            sample_size: Some(180),
            max_states: 4,
            test_queries: 40,
        }
    }
}

/// All artifacts of one (site, class) combination — reused by Table 4 and
/// Figures 4–9.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// The site.
    pub site: Site,
    /// The query class.
    pub class: QueryClass,
    /// Paper-style label, e.g. `G1 (DB2 5.0)`.
    pub label: String,
    /// Multi-states derivation (also carries the one-state model).
    pub derived: DerivedModel,
    /// Static Approach 1: derived in the static environment.
    pub static1: DerivedModel,
    /// Dynamic test workload; estimates are `[multi, one-state, static]`.
    pub points: Vec<MultiEstimatePoint>,
}

/// One printed row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Combination label.
    pub combo: String,
    /// Model type (`multi-states (m)`, `one-state`, `static`).
    pub model_type: String,
    /// Number of contention states of the model.
    pub states: usize,
    /// R² on its own sampling data.
    pub r_squared: f64,
    /// Standard error of estimation on its own sampling data.
    pub see: f64,
    /// Average observed cost of its sample queries.
    pub avg_cost: f64,
    /// Percentage of very good estimates on the dynamic test workload.
    pub very_good_pct: f64,
    /// Percentage of good estimates on the dynamic test workload.
    pub good_pct: f64,
}

/// The full Table-5 result.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Three rows per combination.
    pub rows: Vec<Table5Row>,
    /// Underlying per-combination artifacts.
    pub combos: Vec<ComboResult>,
}

impl Table5 {
    /// The rows of one model type, in combo order.
    pub fn rows_of(&self, model_type: &str) -> Vec<&Table5Row> {
        self.rows
            .iter()
            .filter(|r| r.model_type == model_type)
            .collect()
    }
}

impl std::fmt::Display for Table5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 5: statistics for cost models")?;
        writeln!(
            f,
            "{:<18} {:<16} {:>3} {:>8} {:>11} {:>11} {:>10} {:>7}",
            "class", "model type", "m", "R^2", "SEE", "avg cost", "very good", "good"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<18} {:<16} {:>3} {:>8.3} {:>11.3e} {:>11.3e} {:>9.0}% {:>6.0}%",
                r.combo,
                r.model_type,
                r.states,
                r.r_squared,
                r.see,
                r.avg_cost,
                r.very_good_pct,
                r.good_pct
            )?;
        }
        Ok(())
    }
}

/// Derives everything for one (site, class) combination.
pub fn derive_combo(
    site: Site,
    class: QueryClass,
    label: &str,
    cfg: &Table5Config,
) -> Result<ComboResult, CoreError> {
    // Multi-states + one-state, derived in the dynamic environment.
    let mut dyn_agent = site.dynamic_agent(seed_for(site, class, 0));
    let derivation_cfg = DerivationConfig {
        states: StatesConfig {
            max_states: cfg.max_states,
            ..StatesConfig::default()
        },
        sample_size: cfg.sample_size,
        fit_probe_estimator: false,
        ..DerivationConfig::default()
    };
    let derived = derive_cost_model(
        &mut dyn_agent,
        class,
        StateAlgorithm::Iupma,
        &derivation_cfg,
        &mut PipelineCtx::seeded(seed_for(site, class, 1)),
    )?;

    // Static Approach 1: same budget, static environment, single state.
    let mut static_agent = site.static_agent(seed_for(site, class, 2));
    let static_cfg = DerivationConfig {
        states: StatesConfig {
            max_states: 1,
            ..StatesConfig::default()
        },
        sample_size: cfg.sample_size,
        fit_probe_estimator: false,
        ..DerivationConfig::default()
    };
    let static1 = derive_cost_model(
        &mut static_agent,
        class,
        StateAlgorithm::Iupma,
        &static_cfg,
        &mut PipelineCtx::seeded(seed_for(site, class, 3)),
    )?;

    // Held-out test workload in the dynamic environment, priced by all
    // three models at once.
    let points = run_test_suite(
        &mut dyn_agent,
        class,
        &[&derived.model, &derived.one_state, &static1.model],
        cfg.test_queries,
        seed_for(site, class, 4),
    )?;

    Ok(ComboResult {
        site,
        class,
        label: format!("{label} ({})", site.name()),
        derived,
        static1,
        points,
    })
}

/// Runs the full Table-5 experiment: 3 classes × 2 sites × 3 model types.
/// The six (site, class) combinations are independent and fan out through
/// the worker pool (one worker per combination); rows keep the paper's
/// order because the pool returns results in job order.
pub fn table5(cfg: &Table5Config) -> Result<Table5, CoreError> {
    let mut jobs = Vec::new();
    for site in Site::all() {
        for (class, label) in paper_classes() {
            jobs.push((site, class, label));
        }
    }
    let workers = jobs.len();
    let (results, _report) = mdbs_core::pool::run_jobs(jobs, workers, |_, (site, class, label)| {
        derive_combo(site, class, label, cfg)
    });

    let mut combos = Vec::new();
    let mut rows = Vec::new();
    for result in results {
        {
            let combo = result?;
            let specs: [(&str, &DerivedModel, usize); 3] = [
                ("multi-states", &combo.derived, 0),
                ("one-state", &combo.derived, 1),
                ("static", &combo.static1, 2),
            ];
            for (kind, derivation, est_idx) in specs {
                let (model, avg_cost) = match kind {
                    "one-state" => (&derivation.one_state, derivation.avg_sample_cost),
                    _ => (&derivation.model, derivation.avg_sample_cost),
                };
                let q = quality(&test_points(&combo.points, est_idx));
                rows.push(Table5Row {
                    combo: combo.label.clone(),
                    model_type: if kind == "multi-states" {
                        format!("multi-states ({})", model.num_states())
                    } else {
                        kind.to_string()
                    },
                    states: model.num_states(),
                    r_squared: model.fit.r_squared,
                    see: model.fit.see,
                    avg_cost,
                    very_good_pct: q.very_good_pct,
                    good_pct: q.good_pct,
                });
            }
            combos.push(combo);
        }
    }
    Ok(Table5 { rows, combos })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_combo_has_paper_shape() {
        let cfg = Table5Config::quick();
        let combo = derive_combo(Site::Oracle, QueryClass::UnaryNoIndex, "G1", &cfg).unwrap();
        // Multi-states fits the dynamic data better than one-state.
        assert!(combo.derived.model.fit.r_squared > combo.derived.one_state.fit.r_squared);
        // The static model fits its own (static) data extremely well...
        assert!(combo.static1.model.fit.r_squared > 0.9);
        // ...but its sample costs are far below the dynamic ones.
        assert!(combo.static1.avg_sample_cost < combo.derived.avg_sample_cost);
        assert_eq!(combo.points.len(), cfg.test_queries);
    }

    #[test]
    fn quick_table_quality_ordering() {
        let cfg = Table5Config::quick();
        let combo = derive_combo(Site::Db2, QueryClass::UnaryNoIndex, "G1", &cfg).unwrap();
        let multi = quality(&test_points(&combo.points, 0));
        let one = quality(&test_points(&combo.points, 1));
        let stat = quality(&test_points(&combo.points, 2));
        // The paper's headline: multi-states gives the most good estimates,
        // the purely static model the fewest.
        assert!(
            multi.good_pct >= one.good_pct,
            "multi {} < one-state {}",
            multi.good_pct,
            one.good_pct
        );
        assert!(
            stat.good_pct < multi.good_pct,
            "static {} not worse than multi {}",
            stat.good_pct,
            multi.good_pct
        );
    }
}
