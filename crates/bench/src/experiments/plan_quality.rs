//! **E-PLAN** — plan-decision quality (extension beyond the paper).
//!
//! The paper's whole motivation: "poor query cost estimates may be used by
//! the query optimizer, resulting in inefficient query execution plans"
//! (§2). With executable global plans we can measure that directly. For a
//! set of random two-site join scenarios under varying contention, the
//! optimizer decides *where to run the join* twice — once with the
//! multi-states catalog, once with a Static-Approach-1 catalog — and both
//! candidate plans are then actually executed. Scored per catalog:
//!
//! * **decision accuracy** — how often the chosen direction was the truly
//!   cheaper one,
//! * **mean regret** — realized cost of the chosen plan divided by the
//!   realized cost of the best plan (1.0 = always optimal),
//! * **plan-cost estimation error** — |estimated − realized| / realized of
//!   the plan totals, the raw accuracy the decisions rest on.
//!
//! A finding from developing this experiment: head-to-head *decisions*
//! under heavy thrashing need finer contention states than the paper's 3–6
//! estimation-quality default — within a coarse top state the cost varies
//! 2–3×, enough to flip near-tie comparisons. The multi-states derivation
//! here therefore runs with `max_states = 10` and tight improvement
//! thresholds (the knob the paper itself provides).

use crate::workloads::{seed_for, Site};
use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::mdbs::Mdbs;
use mdbs_core::optimizer::{GlobalJoin, GlobalOptimizer, JoinOperand, PlanEstimate};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::{StateAlgorithm, StatesConfig};
use mdbs_core::CoreError;
use mdbs_sim::contention::Load;

/// Scores of one catalog flavour.
#[derive(Debug, Clone)]
pub struct PlanScore {
    /// Catalog label (`multi-states` / `static`).
    pub label: String,
    /// Scenarios where the chosen direction was truly cheaper (0–100).
    pub decision_accuracy_pct: f64,
    /// Mean realized(chosen)/realized(best) over all scenarios (≥ 1).
    pub mean_regret: f64,
    /// Worst single-scenario regret.
    pub max_regret: f64,
    /// Mean |estimated − realized| / realized over every priced plan.
    pub mean_cost_rel_err: f64,
}

/// The E-PLAN result.
#[derive(Debug, Clone)]
pub struct PlanQuality {
    /// Number of scenarios executed.
    pub scenarios: usize,
    /// One score per catalog flavour.
    pub scores: Vec<PlanScore>,
}

impl PlanQuality {
    /// The score of one flavour.
    pub fn score(&self, label: &str) -> Option<&PlanScore> {
        self.scores.iter().find(|s| s.label == label)
    }
}

impl std::fmt::Display for PlanQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Global-plan decision quality over {} two-site join scenarios",
            self.scenarios
        )?;
        writeln!(
            f,
            "{:<14} {:>18} {:>12} {:>12} {:>14}",
            "cost models", "decision accuracy", "mean regret", "max regret", "plan-cost err"
        )?;
        for s in &self.scores {
            writeln!(
                f,
                "{:<14} {:>17.0}% {:>12.2} {:>12.2} {:>13.0}%",
                s.label,
                s.decision_accuracy_pct,
                s.mean_regret,
                s.max_regret,
                100.0 * s.mean_cost_rel_err
            )?;
        }
        writeln!(
            f,
            "(regret = realized cost of the chosen plan / realized cost of the best plan)"
        )
    }
}

/// Derives the two catalog flavours for both sites.
fn build_catalogs(sample_size: usize) -> Result<(GlobalCatalog, GlobalCatalog), CoreError> {
    let mut multi = GlobalCatalog::new();
    let mut static1 = GlobalCatalog::new();
    for site in Site::all() {
        for class in [QueryClass::UnaryNoIndex, QueryClass::JoinNoIndex] {
            // Multi-states: derived in the dynamic environment, with finer
            // states than the estimation-quality default (see module docs).
            let mut agent = site.dynamic_agent(seed_for(site, class, 60));
            let cfg = DerivationConfig {
                states: StatesConfig {
                    max_states: 10,
                    min_r2_gain: 0.002,
                    min_see_gain: 0.005,
                    ..StatesConfig::default()
                },
                sample_size: Some(sample_size),
                fit_probe_estimator: false,
                ..DerivationConfig::default()
            };
            let derived = derive_cost_model(
                &mut agent,
                class,
                StateAlgorithm::Iupma,
                &cfg,
                &mut PipelineCtx::seeded(seed_for(site, class, 61)),
            )?;
            multi.insert_model(site.name().into(), class, derived.model);
            // Static Approach 1: derived on a quiet machine, single state.
            let mut agent = site.static_agent(seed_for(site, class, 62));
            let cfg = DerivationConfig {
                states: StatesConfig {
                    max_states: 1,
                    ..StatesConfig::default()
                },
                sample_size: Some(sample_size),
                fit_probe_estimator: false,
                ..DerivationConfig::default()
            };
            let derived = derive_cost_model(
                &mut agent,
                class,
                StateAlgorithm::Iupma,
                &cfg,
                &mut PipelineCtx::seeded(seed_for(site, class, 63)),
            )?;
            static1.insert_model(site.name().into(), class, derived.model);
        }
    }
    Ok((multi, static1))
}

/// Builds the two-site MDBS used for execution.
fn build_mdbs() -> Mdbs {
    let mut mdbs = Mdbs::new(0.08);
    for site in Site::all() {
        mdbs.add_site(
            site.name(),
            site.agent(seed_for(site, QueryClass::JoinNoIndex, 64)),
        );
    }
    mdbs
}

/// Runs the experiment: `scenarios` random joins, both catalogs scored on
/// the same realized executions.
pub fn plan_quality(sample_size: usize, scenarios: usize) -> Result<PlanQuality, CoreError> {
    let (multi_catalog, static_catalog) = build_catalogs(sample_size)?;
    let mut mdbs = build_mdbs();
    let site_a: SiteId = Site::all()[0].name().into();
    let site_b: SiteId = Site::all()[1].name().into();

    // Scenario grid: table-size pairs × load pairs.
    let table_pairs = [(3usize, 7usize), (5, 5), (7, 3), (6, 6), (4, 7)];
    let load_pairs = [(25.0, 25.0), (115.0, 30.0), (30.0, 115.0), (90.0, 90.0)];
    struct Tally {
        label: String,
        catalog: GlobalCatalog,
        regrets: Vec<f64>,
        rel_errs: Vec<f64>,
        correct: usize,
    }
    let mut per_catalog = vec![
        Tally {
            label: "multi-states".into(),
            catalog: multi_catalog,
            regrets: Vec::new(),
            rel_errs: Vec::new(),
            correct: 0,
        },
        Tally {
            label: "static".into(),
            catalog: static_catalog,
            regrets: Vec::new(),
            rel_errs: Vec::new(),
            correct: 0,
        },
    ];
    let mut executed = 0usize;

    'outer: for (ti, tj) in table_pairs {
        for (la, lb) in load_pairs {
            if executed >= scenarios {
                break 'outer;
            }
            let ta = mdbs.agent(&site_a).expect("site a").catalog().tables()[ti].id;
            let tb = mdbs.agent(&site_b).expect("site b").catalog().tables()[tj].id;
            let join = GlobalJoin {
                left: JoinOperand {
                    site: site_a.clone(),
                    table: ta,
                    join_col: 4,
                    predicates: vec![],
                },
                right: JoinOperand {
                    site: site_b.clone(),
                    table: tb,
                    join_col: 4,
                    predicates: vec![],
                },
            };
            mdbs.agent_mut(&site_a)
                .expect("site a")
                .set_load(Load::background(la));
            mdbs.agent_mut(&site_b)
                .expect("site b")
                .set_load(Load::background(lb));

            // Ground truth: execute both directions under this load.
            let dummy = |site: &SiteId| PlanEstimate {
                join_site: site.clone(),
                ship_prepare_cost: 0.0,
                transfer_mb: 0.0,
                transfer_cost: 0.0,
                join_cost: 0.0,
            };
            let realized_a = mdbs.execute_plan(&join, &dummy(&site_a))?.total();
            let realized_b = mdbs.execute_plan(&join, &dummy(&site_b))?.total();
            let best = realized_a.min(realized_b);

            // Each catalog decides; score against the realized costs.
            let probes = mdbs.probe_all();
            let schemas: Vec<(SiteId, mdbs_sim::LocalCatalog)> = mdbs
                .site_ids()
                .into_iter()
                .map(|s| {
                    let c = mdbs.agent(&s).expect("registered").catalog().clone();
                    (s, c)
                })
                .collect();
            let schema_refs: Vec<(SiteId, &mdbs_sim::LocalCatalog)> =
                schemas.iter().map(|(s, c)| (s.clone(), c)).collect();
            for tally in per_catalog.iter_mut() {
                let optimizer = GlobalOptimizer::new(tally.catalog.clone(), mdbs.network_s_per_mb);
                let plans = optimizer.plan_join(&join, &schema_refs, &probes)?;
                let Some(chosen) = plans.first() else {
                    continue;
                };
                let realized_of = |site: &SiteId| {
                    if *site == site_a {
                        realized_a
                    } else {
                        realized_b
                    }
                };
                let realized = realized_of(&chosen.join_site);
                tally.regrets.push(realized / best.max(f64::MIN_POSITIVE));
                if (realized - best).abs() / best.max(f64::MIN_POSITIVE) < 1e-9 {
                    tally.correct += 1;
                }
                for p in &plans {
                    let r = realized_of(&p.join_site);
                    tally
                        .rel_errs
                        .push((p.total() - r).abs() / r.max(f64::MIN_POSITIVE));
                }
            }
            executed += 1;
        }
    }

    let scores = per_catalog
        .into_iter()
        .map(|t| {
            let n = t.regrets.len().max(1);
            let m = t.rel_errs.len().max(1);
            PlanScore {
                label: t.label,
                decision_accuracy_pct: 100.0 * t.correct as f64 / n as f64,
                mean_regret: t.regrets.iter().sum::<f64>() / n as f64,
                max_regret: t.regrets.iter().copied().fold(1.0, f64::max),
                mean_cost_rel_err: t.rel_errs.iter().sum::<f64>() / m as f64,
            }
        })
        .collect();
    Ok(PlanQuality {
        scenarios: executed,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_states_decisions_beat_static_ones() {
        let q = plan_quality(500, 12).unwrap();
        assert_eq!(q.scenarios, 12);
        let multi = q.score("multi-states").expect("multi row");
        let stat = q.score("static").expect("static row");
        assert!(
            multi.decision_accuracy_pct >= stat.decision_accuracy_pct,
            "multi {}% vs static {}%",
            multi.decision_accuracy_pct,
            stat.decision_accuracy_pct
        );
        assert!(
            multi.mean_regret <= stat.mean_regret + 1e-9,
            "multi regret {} vs static {}",
            multi.mean_regret,
            stat.mean_regret
        );
        // The multi-states optimizer should be close to optimal...
        assert!(
            multi.mean_regret < 1.25,
            "mean regret {}",
            multi.mean_regret
        );
        // ...and its plan-cost predictions far more accurate than the
        // load-blind static ones.
        assert!(
            multi.mean_cost_rel_err < 0.6 * stat.mean_cost_rel_err,
            "multi err {:.2} vs static err {:.2}",
            multi.mean_cost_rel_err,
            stat.mean_cost_rel_err
        );
    }
}
