//! Ablations over the paper's design choices.
//!
//! * **E-FORMS** — §3.2 argues the qualitative variable must affect *both*
//!   the intercept and the slopes, because contention inflates the
//!   initialization cost and the per-tuple I/O/CPU costs alike: "the
//!   general qualitative regression model is more appropriate". This
//!   ablation fits all four forms of Table 2 on the same sample and scores
//!   them on the same test workload.
//! * **E-PROBE** — §3.3 proposes estimating the probing cost from system
//!   statistics (eq. (2)) instead of executing the probe, noting that
//!   "estimation errors may introduce certain inaccuracy". This ablation
//!   quantifies that inaccuracy: the same model, the same test workload,
//!   states selected once by the observed and once by the estimated
//!   probing cost.

use crate::experiments::{run_test_suite, test_points};
use crate::workloads::{seed_for, Site};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{collect_observations, derive_cost_model, DerivationConfig};
use mdbs_core::model::{fit_cost_model, ModelForm};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::probing::ProbeCostEstimator;
use mdbs_core::qualvar::StateSet;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::validate::{quality, Quality, TestPoint};
use mdbs_core::CoreError;
use mdbs_sim::agent::ExecutionSizes;

/// One row of the form ablation.
#[derive(Debug, Clone)]
pub struct FormRow {
    /// The regression form.
    pub form: ModelForm,
    /// Number of states the form actually distinguishes.
    pub states: usize,
    /// Raw parameters fitted.
    pub params: usize,
    /// R² on the shared sample.
    pub r_squared: f64,
    /// SEE on the shared sample.
    pub see: f64,
    /// Quality on the shared test workload.
    pub quality: Quality,
}

/// The E-FORMS result.
#[derive(Debug, Clone)]
pub struct FormsAblation {
    /// Workload label.
    pub label: String,
    /// One row per form (Coincident, Parallel, Concurrent, General).
    pub rows: Vec<FormRow>,
}

impl FormsAblation {
    /// The row of one form.
    pub fn row(&self, form: ModelForm) -> Option<&FormRow> {
        self.rows.iter().find(|r| r.form == form)
    }
}

impl std::fmt::Display for FormsAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Qualitative-form ablation (paper §3.2, Table 2) — {}",
            self.label
        )?;
        writeln!(
            f,
            "{:<12} {:>3} {:>7} {:>8} {:>11} {:>10} {:>7}",
            "form", "m", "params", "R^2", "SEE", "very good", "good"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>3} {:>7} {:>8.3} {:>11.3e} {:>9.0}% {:>6.0}%",
                format!("{:?}", r.form),
                r.states,
                r.params,
                r.r_squared,
                r.see,
                r.quality.very_good_pct,
                r.quality.good_pct
            )?;
        }
        Ok(())
    }
}

/// Runs the form ablation for one class at the Oracle site: one shared
/// sample, one shared state partition, one shared test workload.
pub fn forms_ablation(
    class: QueryClass,
    sample_size: usize,
    states_m: usize,
    test_queries: usize,
) -> Result<FormsAblation, CoreError> {
    let site = Site::Oracle;
    let family = class.family();
    let mut agent = site.dynamic_agent(seed_for(site, class, 40));
    let mut generator = SampleGenerator::new(seed_for(site, class, 41));
    let observations = collect_observations(&mut agent, class, sample_size, &mut generator, None)?;
    let (lo, hi) = observations
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), o| {
            (a.min(o.probe_cost), b.max(o.probe_cost))
        });
    let states = StateSet::uniform(lo, hi, states_m)?;
    let basic = family.basic_indexes();
    let names: Vec<String> = basic
        .iter()
        .map(|&i| family.all()[i].name.to_string())
        .collect();

    let mut models = Vec::new();
    for form in [
        ModelForm::Coincident,
        ModelForm::Parallel,
        ModelForm::Concurrent,
        ModelForm::General,
    ] {
        let st = if matches!(form, ModelForm::Coincident) {
            StateSet::single()
        } else {
            states.clone()
        };
        models.push(fit_cost_model(
            form,
            st,
            basic.clone(),
            names.clone(),
            &observations,
        )?);
    }

    let refs: Vec<&mdbs_core::model::CostModel> = models.iter().collect();
    let points = run_test_suite(
        &mut agent,
        class,
        &refs,
        test_queries,
        seed_for(site, class, 42),
    )?;

    let rows = models
        .iter()
        .enumerate()
        .map(|(k, m)| FormRow {
            form: m.form,
            states: m.num_states(),
            params: m.fit.k,
            r_squared: m.fit.r_squared,
            see: m.fit.see,
            quality: quality(&test_points(&points, k)),
        })
        .collect();
    Ok(FormsAblation {
        label: format!("{} on {}", class.label(), site.name()),
        rows,
    })
}

/// The E-PROBE result: the same model driven by observed vs estimated
/// probing costs.
#[derive(Debug, Clone)]
pub struct ProbeAblation {
    /// Workload label.
    pub label: String,
    /// eq. (2) fit quality.
    pub estimator_r_squared: f64,
    /// Names of the significant system-statistics parameters.
    pub estimator_parameters: Vec<String>,
    /// Quality with the observed probing cost.
    pub observed: Quality,
    /// Quality with the estimated probing cost.
    pub estimated: Quality,
    /// Fraction of test queries whose estimated probe landed in the same
    /// contention state as the observed one.
    pub state_agreement: f64,
}

impl std::fmt::Display for ProbeAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Probing-cost estimation ablation (paper §3.3, eq. (2)) — {}",
            self.label
        )?;
        writeln!(
            f,
            "eq.(2): R^2 = {:.3}, significant parameters: {}",
            self.estimator_r_squared,
            self.estimator_parameters.join(", ")
        )?;
        writeln!(
            f,
            "state agreement (estimated vs observed probe): {:.0}%",
            100.0 * self.state_agreement
        )?;
        writeln!(
            f,
            "{:<18} {:>10} {:>7}",
            "probe source", "very good", "good"
        )?;
        for (name, q) in [("observed", &self.observed), ("estimated", &self.estimated)] {
            writeln!(
                f,
                "{:<18} {:>9.0}% {:>6.0}%",
                name, q.very_good_pct, q.good_pct
            )?;
        }
        Ok(())
    }
}

/// Runs the probe-estimation ablation for one class at the Oracle site.
pub fn probe_ablation(
    class: QueryClass,
    sample_size: usize,
    test_queries: usize,
) -> Result<ProbeAblation, CoreError> {
    let site = Site::Oracle;
    let family = class.family();
    let mut agent = site.dynamic_agent(seed_for(site, class, 44));
    let cfg = DerivationConfig {
        sample_size: Some(sample_size),
        fit_probe_estimator: true,
        ..DerivationConfig::default()
    };
    let derived = derive_cost_model(
        &mut agent,
        class,
        StateAlgorithm::Iupma,
        &cfg,
        &mut PipelineCtx::seeded(seed_for(site, class, 45)),
    )?;
    let estimator: &ProbeCostEstimator = derived
        .probe_estimator
        .as_ref()
        .expect("estimator requested in config");

    // Test flow executed once; each query priced twice (observed probe vs
    // estimated probe from a statistics snapshot).
    let mut generator = SampleGenerator::new(seed_for(site, class, 46));
    let mut observed_pts = Vec::new();
    let mut estimated_pts = Vec::new();
    let mut agree = 0usize;
    let mut n = 0usize;
    while n < test_queries {
        let query = generator.generate(class, agent.catalog());
        let Some(x) = family.extract(agent.catalog(), &query) else {
            continue;
        };
        agent.tick();
        let stats = agent.stats();
        let probe_est = estimator.estimate(&stats);
        let probe_obs = agent.probe();
        let x_sel: Vec<f64> = derived.model.var_indexes.iter().map(|&i| x[i]).collect();
        let est_with_obs = derived.model.estimate(&x_sel, probe_obs);
        let est_with_est = derived.model.estimate(&x_sel, probe_est);
        if derived.model.states.state_of(probe_obs) == derived.model.states.state_of(probe_est) {
            agree += 1;
        }
        let exec = agent
            .run(&query)
            .map_err(|e| CoreError::Agent(e.to_string()))?;
        let result_card = match exec.sizes {
            ExecutionSizes::Unary(s) => s.result,
            ExecutionSizes::Join(s) => s.result,
        };
        observed_pts.push(TestPoint {
            observed: exec.cost_s,
            estimated: est_with_obs,
            result_card,
            probe_cost: probe_obs,
        });
        estimated_pts.push(TestPoint {
            observed: exec.cost_s,
            estimated: est_with_est,
            result_card,
            probe_cost: probe_est,
        });
        n += 1;
    }

    Ok(ProbeAblation {
        label: format!("{} on {}", class.label(), site.name()),
        estimator_r_squared: estimator.r_squared,
        estimator_parameters: estimator.names.clone(),
        observed: quality(&observed_pts),
        estimated: quality(&estimated_pts),
        state_agreement: agree as f64 / test_queries.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_form_wins_the_ablation() {
        let a = forms_ablation(QueryClass::UnaryNoIndex, 260, 4, 50).unwrap();
        assert_eq!(a.rows.len(), 4);
        let general = a.row(ModelForm::General).unwrap();
        let coincident = a.row(ModelForm::Coincident).unwrap();
        let parallel = a.row(ModelForm::Parallel).unwrap();
        // §3.2's claim: the general form fits best; any state-aware form
        // beats the coincident (static) one.
        assert!(general.r_squared >= parallel.r_squared - 1e-9);
        assert!(general.r_squared > coincident.r_squared + 0.05);
        assert!(general.quality.good_pct >= coincident.quality.good_pct);
        // Parameter counts ordered as per Table 2.
        let concurrent = a.row(ModelForm::Concurrent).unwrap();
        assert!(coincident.params < parallel.params);
        assert!(parallel.params < concurrent.params);
        assert!(concurrent.params < general.params);
    }

    #[test]
    fn estimated_probe_is_nearly_as_good_as_observed() {
        let a = probe_ablation(QueryClass::UnaryNoIndex, 220, 50).unwrap();
        assert!(a.estimator_r_squared > 0.7);
        assert!(!a.estimator_parameters.is_empty());
        assert!(a.state_agreement > 0.5, "agreement {}", a.state_agreement);
        // The paper: estimation errors introduce *some* inaccuracy, but the
        // approach stays usable.
        assert!(
            a.estimated.good_pct >= a.observed.good_pct - 25.0,
            "estimated probe collapses quality: {} vs {}",
            a.estimated.good_pct,
            a.observed.good_pct
        );
    }
}
