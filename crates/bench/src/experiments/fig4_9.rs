//! **E-FIG4..9** — paper Figures 4–9: observed vs estimated costs for test
//! queries, multi-states vs one-state, for G1/G2/G3 × DB2/Oracle.
//!
//! Each figure plots, against the number of result tuples, the observed
//! cost of every test query together with the estimates of the multi-states
//! model ("qualitative approach") and the one-state model ("static
//! approach"). We print the same three series as columns.

use crate::experiments::table5::{ComboResult, Table5};
use mdbs_core::validate::quality;

/// One figure's series: rows sorted by result cardinality.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Figure caption, e.g. `Costs for Test Queries in G1 on DB2 5.0`.
    pub caption: String,
    /// `(result tuples, observed, multi-states estimate, one-state
    /// estimate)` per test query.
    pub rows: Vec<(u64, f64, f64, f64)>,
}

impl FigureSeries {
    /// Mean absolute relative error of a series column
    /// (0 = multi-states, 1 = one-state).
    pub fn mean_rel_err(&self, column: usize) -> f64 {
        let errs: Vec<f64> = self
            .rows
            .iter()
            .filter(|(_, obs, _, _)| *obs > 0.0)
            .map(|(_, obs, multi, one)| {
                let est = if column == 0 { *multi } else { *one };
                (est - obs).abs() / obs
            })
            .collect();
        errs.iter().sum::<f64>() / errs.len().max(1) as f64
    }
}

/// The six figures.
#[derive(Debug, Clone)]
pub struct Fig4to9 {
    /// One series per (class, site), paper order.
    pub figures: Vec<FigureSeries>,
}

impl std::fmt::Display for Fig4to9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, fig) in self.figures.iter().enumerate() {
            writeln!(f, "\nFigure {}: {}", i + 4, fig.caption)?;
            writeln!(
                f,
                "{:>12} {:>12} {:>14} {:>14}",
                "result tuples", "observed", "multi-states", "one-state"
            )?;
            for (card, obs, multi, one) in &fig.rows {
                writeln!(f, "{card:>12} {obs:>12.2} {multi:>14.2} {one:>14.2}")?;
            }
            writeln!(
                f,
                "mean relative error: multi-states {:.2}, one-state {:.2}",
                fig.mean_rel_err(0),
                fig.mean_rel_err(1)
            )?;
        }
        Ok(())
    }
}

/// Builds the six figures from a completed Table-5 run (the figures use the
/// very same test workload the table scored).
pub fn fig4_9(table5: &Table5) -> Fig4to9 {
    let figures = table5.combos.iter().map(series_of).collect();
    Fig4to9 { figures }
}

fn series_of(combo: &ComboResult) -> FigureSeries {
    let mut rows: Vec<(u64, f64, f64, f64)> = combo
        .points
        .iter()
        .map(|p| (p.result_card, p.observed, p.estimates[0], p.estimates[1]))
        .collect();
    rows.sort_by_key(|r| r.0);
    FigureSeries {
        caption: format!("Costs for Test Queries in {}", combo.label),
        rows,
    }
}

/// Sanity aggregate used by tests: in how many figures does the
/// multi-states series track the observations more closely?
pub fn multi_wins(figs: &Fig4to9) -> usize {
    figs.figures
        .iter()
        .filter(|f| f.mean_rel_err(0) < f.mean_rel_err(1))
        .count()
}

/// Quality deltas between multi-states and one-state over all figures,
/// mirroring the paper's "+27.0 % very good, +20.2 % good on average".
pub fn average_improvement(table5: &Table5) -> (f64, f64) {
    let mut d_vg = 0.0;
    let mut d_g = 0.0;
    for combo in &table5.combos {
        let multi = quality(&crate::experiments::test_points(&combo.points, 0));
        let one = quality(&crate::experiments::test_points(&combo.points, 1));
        d_vg += multi.very_good_pct - one.very_good_pct;
        d_g += multi.good_pct - one.good_pct;
    }
    let n = table5.combos.len().max(1) as f64;
    (d_vg / n, d_g / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table5::{table5, Table5Config};

    #[test]
    fn figures_follow_the_table5_combos() {
        let mut cfg = Table5Config::quick();
        cfg.test_queries = 25;
        let t5 = table5(&cfg).unwrap();
        let figs = fig4_9(&t5);
        assert_eq!(figs.figures.len(), 6);
        for fig in &figs.figures {
            assert_eq!(fig.rows.len(), 25);
            // Sorted by result cardinality.
            assert!(fig.rows.windows(2).all(|w| w[0].0 <= w[1].0));
        }
        // The multi-states series should win in most figures.
        assert!(
            multi_wins(&figs) >= 4,
            "multi wins only {}",
            multi_wins(&figs)
        );
    }
}
