//! **E-SENS** — sensitivity analysis (extension beyond the paper).
//!
//! Two sweeps probe the robustness of the multi-states method:
//!
//! * **observation noise** — how does estimate quality degrade as the
//!   momentary cost fluctuation grows? (The paper fixes one testbed noise
//!   level; a reproduction should know how sharp that edge is.)
//! * **dynamic-range width** — how do the chosen state count and the gap
//!   between the multi-states and the one-state model grow with the spread
//!   of the contention level? (At zero width the two must coincide — the
//!   static method is the multi-states method's special case, paper §1.)

use crate::experiments::{run_test_suite, test_points};
use crate::workloads::UNIFORM_LO;
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::validate::{quality, Quality};
use mdbs_core::CoreError;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// The swept parameter's value.
    pub parameter: f64,
    /// Number of contention states the pipeline chose.
    pub states: usize,
    /// Multi-states R² on the sample.
    pub r_squared: f64,
    /// One-state R² on the same sample.
    pub one_state_r_squared: f64,
    /// Multi-states quality on held-out queries.
    pub multi: Quality,
    /// One-state quality on the same held-out queries.
    pub one_state: Quality,
}

/// A labelled sweep.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// What is being swept.
    pub parameter_name: String,
    /// Sweep rows, in parameter order.
    pub rows: Vec<SensitivityRow>,
}

impl std::fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Sensitivity sweep over {}", self.parameter_name)?;
        writeln!(
            f,
            "{:>10} {:>3} {:>9} {:>12} {:>14} {:>13}",
            self.parameter_name, "m", "R^2", "1-state R^2", "multi vg/good", "1-state vg/g"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10.3} {:>3} {:>9.3} {:>12.3} {:>6.0}%/{:>4.0}% {:>6.0}%/{:>4.0}%",
                r.parameter,
                r.states,
                r.r_squared,
                r.one_state_r_squared,
                r.multi.very_good_pct,
                r.multi.good_pct,
                r.one_state.very_good_pct,
                r.one_state.good_pct
            )?;
        }
        Ok(())
    }
}

fn sweep_point(
    vendor: VendorProfile,
    profile: ContentionProfile,
    parameter: f64,
    sample_size: usize,
    test_queries: usize,
) -> Result<SensitivityRow, CoreError> {
    let mut agent = MdbsAgent::new(vendor, standard_database(42), 901);
    agent.set_load_builder(LoadBuilder::new(profile));
    let cfg = DerivationConfig {
        sample_size: Some(sample_size),
        fit_probe_estimator: false,
        ..DerivationConfig::default()
    };
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &cfg,
        &mut PipelineCtx::seeded(902),
    )?;
    let points = run_test_suite(
        &mut agent,
        QueryClass::UnaryNoIndex,
        &[&derived.model, &derived.one_state],
        test_queries,
        903,
    )?;
    Ok(SensitivityRow {
        parameter,
        states: derived.model.num_states(),
        r_squared: derived.model.fit.r_squared,
        one_state_r_squared: derived.one_state.fit.r_squared,
        multi: quality(&test_points(&points, 0)),
        one_state: quality(&test_points(&points, 1)),
    })
}

/// Sweep A: observation noise levels (relative standard deviation of the
/// multiplicative cost noise).
pub fn noise_sensitivity(
    sample_size: usize,
    test_queries: usize,
) -> Result<Sensitivity, CoreError> {
    let mut rows = Vec::new();
    for noise in [0.02, 0.05, 0.10, 0.20] {
        let mut vendor = VendorProfile::oracle8();
        vendor.noise_rel = noise;
        rows.push(sweep_point(
            vendor,
            ContentionProfile::Uniform {
                lo: UNIFORM_LO,
                hi: 125.0,
            },
            noise,
            sample_size,
            test_queries,
        )?);
    }
    Ok(Sensitivity {
        parameter_name: "noise".into(),
        rows,
    })
}

/// Sweep B: the width of the dynamic contention range (background
/// processes uniform in `[20, 20 + width]`).
pub fn range_sensitivity(
    sample_size: usize,
    test_queries: usize,
) -> Result<Sensitivity, CoreError> {
    let mut rows = Vec::new();
    for width in [20.0, 60.0, 105.0, 140.0] {
        rows.push(sweep_point(
            VendorProfile::oracle8(),
            ContentionProfile::Uniform {
                lo: UNIFORM_LO,
                hi: UNIFORM_LO + width,
            },
            width,
            sample_size,
            test_queries,
        )?);
    }
    Ok(Sensitivity {
        parameter_name: "range".into(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_degrades_quality_monotonically_at_the_ends() {
        let s = noise_sensitivity(200, 40).unwrap();
        assert_eq!(s.rows.len(), 4);
        let first = &s.rows[0];
        let last = &s.rows[3];
        // 10x more noise must hurt both fit and estimate quality.
        assert!(first.r_squared > last.r_squared);
        assert!(
            first.multi.very_good_pct > last.multi.very_good_pct,
            "{} vs {}",
            first.multi.very_good_pct,
            last.multi.very_good_pct
        );
    }

    #[test]
    fn wider_dynamic_range_widens_the_one_state_gap() {
        let s = range_sensitivity(200, 40).unwrap();
        assert_eq!(s.rows.len(), 4);
        let narrow = &s.rows[0];
        let wide = &s.rows[3];
        // The one-state model collapses as the range grows...
        assert!(
            wide.one_state_r_squared < narrow.one_state_r_squared,
            "{} vs {}",
            wide.one_state_r_squared,
            narrow.one_state_r_squared
        );
        // ...while the multi-states model holds up.
        assert!(wide.r_squared > 0.85, "{}", wide.r_squared);
        let narrow_gap = narrow.r_squared - narrow.one_state_r_squared;
        let wide_gap = wide.r_squared - wide.one_state_r_squared;
        assert!(wide_gap > narrow_gap, "{narrow_gap} vs {wide_gap}");
    }
}
