//! **E-TAB4** — paper Table 4: "Multi-State Cost Models for DB2 and
//! Oracle".
//!
//! The derived qualitative regression cost models themselves: one per
//! representative query class per local DBS, printed as per-state cost
//! equations (the paper lists the coefficients; we render the equations).

use crate::workloads::{paper_classes, seed_for, Site};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig, DerivedModel};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::CoreError;

/// One derived model with its label.
#[derive(Debug, Clone)]
pub struct Table4Entry {
    /// Paper-style label, e.g. `G2 (Oracle 8.0)`.
    pub label: String,
    /// The site.
    pub site: Site,
    /// The class.
    pub class: QueryClass,
    /// The derivation result.
    pub derived: DerivedModel,
}

/// The full Table-4 result.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// One entry per (class, site) combination.
    pub entries: Vec<Table4Entry>,
}

impl std::fmt::Display for Table4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 4: multi-state cost models (per-state equations)")?;
        for e in &self.entries {
            writeln!(
                f,
                "\n{} — {} states, R^2 = {:.3}, F p-value = {:.2e}",
                e.label,
                e.derived.model.num_states(),
                e.derived.model.fit.r_squared,
                e.derived.model.fit.f_p_value,
            )?;
            write!(f, "{}", e.derived.model.render())?;
        }
        Ok(())
    }
}

/// Derives the Table-4 models. `sample_size = None` uses the paper's
/// planned sizes (eq. (4)).
pub fn table4(sample_size: Option<usize>) -> Result<Table4, CoreError> {
    let mut entries = Vec::new();
    for site in Site::all() {
        for (class, label) in paper_classes() {
            let mut agent = site.dynamic_agent(seed_for(site, class, 10));
            let cfg = DerivationConfig {
                sample_size,
                fit_probe_estimator: false,
                ..DerivationConfig::default()
            };
            let derived = derive_cost_model(
                &mut agent,
                class,
                StateAlgorithm::Iupma,
                &cfg,
                &mut PipelineCtx::seeded(seed_for(site, class, 11)),
            )?;
            entries.push(Table4Entry {
                label: format!("{label} ({})", site.name()),
                site,
                class,
                derived,
            });
        }
    }
    Ok(Table4 { entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table4_produces_six_multi_state_models() {
        let t = table4(Some(180)).unwrap();
        assert_eq!(t.entries.len(), 6);
        for e in &t.entries {
            assert!(
                e.derived.model.num_states() >= 2,
                "{} stayed single-state",
                e.label
            );
            // Every derived model passes the paper's F-test at α = 0.01.
            assert!(e.derived.model.fit.f_p_value < 0.01, "{}", e.label);
        }
        let text = t.to_string();
        assert!(text.contains("G1 (DB2 5.0)"));
        assert!(text.contains("G3 (Oracle 8.0)"));
    }
}
