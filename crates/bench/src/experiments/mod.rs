//! One runner per table/figure of the paper's evaluation.
//!
//! Every runner returns a plain data struct with a `Display` impl that
//! prints rows in the shape of the paper's artifact; the `repro` binary
//! just prints them, the integration tests assert on the fields, and the
//! in-tree wall-clock benches time them.

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig4_9;
pub mod parallel_derive;
pub mod plan_quality;
pub mod sensitivity;
pub mod states_sweep;
pub mod table4;
pub mod table5;
pub mod table6;

pub use ablations::{forms_ablation, probe_ablation, FormsAblation, ProbeAblation};
pub use fig1::{fig1, Fig1};
pub use fig10::{fig10, Fig10};
pub use fig4_9::{average_improvement, fig4_9, Fig4to9};
pub use parallel_derive::{parallel_derive, ParallelDerive, ParallelDeriveRow};
pub use plan_quality::{plan_quality, PlanQuality};
pub use sensitivity::{noise_sensitivity, range_sensitivity, Sensitivity};
pub use states_sweep::{states_sweep, StatesSweep};
pub use table4::{table4, Table4};
pub use table5::{table5, Table5, Table5Config, Table5Row};
pub use table6::{table6, Table6, Table6Row};

use mdbs_core::classes::QueryClass;
use mdbs_core::model::CostModel;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::validate::TestPoint;
use mdbs_core::CoreError;
use mdbs_sim::agent::ExecutionSizes;
use mdbs_sim::MdbsAgent;

/// One executed test query with estimates from several models at once —
/// all models price the *same* execution, which is both fairer and cheaper
/// than re-running the workload per model.
#[derive(Debug, Clone)]
pub struct MultiEstimatePoint {
    /// Observed elapsed cost.
    pub observed: f64,
    /// Result cardinality (the x-axis of Figures 4–9).
    pub result_card: u64,
    /// Probing cost gauged before execution.
    pub probe_cost: f64,
    /// One estimate per supplied model, in order.
    pub estimates: Vec<f64>,
}

impl MultiEstimatePoint {
    /// Converts the `k`-th estimate into a [`TestPoint`].
    pub fn test_point(&self, k: usize) -> TestPoint {
        TestPoint {
            observed: self.observed,
            estimated: self.estimates[k],
            result_card: self.result_card,
            probe_cost: self.probe_cost,
        }
    }
}

/// Runs `n` random test queries of `class`, estimating each with every
/// model in `models` before executing it.
pub fn run_test_suite(
    agent: &mut MdbsAgent,
    class: QueryClass,
    models: &[&CostModel],
    n: usize,
    seed: u64,
) -> Result<Vec<MultiEstimatePoint>, CoreError> {
    let family = class.family();
    let mut generator = SampleGenerator::new(seed);
    let mut points = Vec::with_capacity(n);
    while points.len() < n {
        let query = generator.generate(class, agent.catalog());
        let Some(x) = family.extract(agent.catalog(), &query) else {
            continue;
        };
        agent.tick();
        let probe_cost = agent.probe();
        let estimates = models
            .iter()
            .map(|m| {
                let x_sel: Vec<f64> = m.var_indexes.iter().map(|&i| x[i]).collect();
                m.estimate(&x_sel, probe_cost)
            })
            .collect();
        let exec = agent
            .run(&query)
            .map_err(|e| CoreError::Agent(e.to_string()))?;
        let result_card = match exec.sizes {
            ExecutionSizes::Unary(s) => s.result,
            ExecutionSizes::Join(s) => s.result,
        };
        points.push(MultiEstimatePoint {
            observed: exec.cost_s,
            result_card,
            probe_cost,
            estimates,
        });
    }
    Ok(points)
}

/// Extracts the per-model [`TestPoint`] series from a multi-estimate run.
pub fn test_points(points: &[MultiEstimatePoint], k: usize) -> Vec<TestPoint> {
    points.iter().map(|p| p.test_point(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Site;
    use mdbs_core::derive::{derive_cost_model, DerivationConfig};
    use mdbs_core::states::StateAlgorithm;

    #[test]
    fn multi_estimate_runner_prices_all_models_once() {
        let mut agent = Site::Oracle.dynamic_agent(900);
        let derived = derive_cost_model(
            &mut agent,
            QueryClass::UnaryNoIndex,
            StateAlgorithm::Iupma,
            &DerivationConfig::quick(),
            &mut mdbs_core::pipeline::PipelineCtx::seeded(901),
        )
        .unwrap();
        let points = run_test_suite(
            &mut agent,
            QueryClass::UnaryNoIndex,
            &[&derived.model, &derived.one_state],
            12,
            902,
        )
        .unwrap();
        assert_eq!(points.len(), 12);
        for p in &points {
            assert_eq!(p.estimates.len(), 2);
            assert!(p.observed > 0.0);
            let tp = p.test_point(0);
            assert_eq!(tp.observed, p.observed);
            assert_eq!(tp.estimated, p.estimates[0]);
        }
        let series = test_points(&points, 1);
        assert_eq!(series.len(), 12);
    }
}
