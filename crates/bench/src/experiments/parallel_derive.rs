//! Serial vs parallel batch derivation (`derive_all` on the worker pool).
//!
//! Derives the same `(site, class)` batch at several worker counts,
//! reporting wall-clock time, speedup over the serial run and — the
//! property the pool actually guarantees — whether the derived catalog is
//! byte-identical to the serial one. Wall-clock numbers are whatever the
//! host gives (a single-CPU container shows ~1x); the identity column must
//! read `yes` everywhere regardless.

use std::time::Duration;

use crate::workloads::Site;
use mdbs_core::catalog::GlobalCatalog;
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_all, BatchConfig, DerivationConfig, DeriveJob};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::{StateAlgorithm, StatesConfig};
use mdbs_core::CoreError;
use mdbs_sim::MdbsAgent;

/// One worker-count measurement.
#[derive(Debug, Clone)]
pub struct ParallelDeriveRow {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Serial wall-clock divided by this row's wall-clock.
    pub speedup: f64,
    /// Whether the exported catalog matches the serial run byte for byte.
    pub identical: bool,
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct ParallelDerive {
    /// Jobs in the batch (sites x classes).
    pub jobs: usize,
    /// One row per worker count, serial first.
    pub rows: Vec<ParallelDeriveRow>,
}

impl std::fmt::Display for ParallelDerive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "parallel batch derivation: {} jobs (2 sites x 2 classes)",
            self.jobs
        )?;
        writeln!(
            f,
            "{:>8} {:>12} {:>9} {:>10}",
            "workers", "wall (ms)", "speedup", "identical"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>12.1} {:>8.2}x {:>10}",
                r.workers,
                r.wall.as_secs_f64() * 1e3,
                r.speedup,
                if r.identical { "yes" } else { "NO" }
            )?;
        }
        write!(
            f,
            "identity is the guarantee (per-job RNG streams split from the root\n\
             seed by job key); speedup is whatever the host's cores allow"
        )
    }
}

/// The canonical batch: both sites, the two cheapest unary classes.
fn batch_jobs() -> Vec<DeriveJob> {
    let mut jobs = Vec::new();
    for site in [Site::Db2, Site::Oracle] {
        for class in [QueryClass::UnaryNoIndex, QueryClass::UnaryNonClusteredIndex] {
            jobs.push(DeriveJob::new(site_id(site), class, StateAlgorithm::Iupma));
        }
    }
    jobs
}

fn site_id(site: Site) -> &'static str {
    match site {
        Site::Oracle => "oracle",
        Site::Db2 => "db2",
    }
}

/// The dynamic agent for a batch job (sites resolved by catalog id).
pub fn job_agent(job: &DeriveJob, env_seed: u64) -> MdbsAgent {
    match job.site.0.as_str() {
        "oracle" => Site::Oracle.dynamic_agent(env_seed),
        "db2" => Site::Db2.dynamic_agent(env_seed),
        other => panic!("unknown batch site `{other}`"),
    }
}

/// Runs the batch once at `workers` workers and returns the exported
/// catalog plus the wall-clock time.
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
pub fn run_batch(
    sample_size: usize,
    workers: usize,
    seed: u64,
) -> Result<(String, Duration), CoreError> {
    let cfg = BatchConfig {
        derivation: DerivationConfig {
            states: StatesConfig {
                max_states: 3,
                ..StatesConfig::default()
            },
            sample_size: Some(sample_size),
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        },
        workers: Some(workers),
    };
    // lint:allow(no-wall-clock): this experiment's whole point is an honest wall-clock speedup table; correctness is asserted separately via byte-identity
    let start = std::time::Instant::now();
    let outcomes = derive_all(
        batch_jobs(),
        &cfg,
        job_agent,
        &mut PipelineCtx::seeded(seed),
    );
    let wall = start.elapsed();
    let mut catalog = GlobalCatalog::new();
    for outcome in outcomes {
        let derived = outcome.result?;
        catalog.insert_model(outcome.job.site, outcome.job.class, derived.model);
    }
    Ok((catalog.export(), wall))
}

/// Sweeps `worker_counts` (serial first) over the canonical batch.
pub fn parallel_derive(
    sample_size: usize,
    worker_counts: &[usize],
) -> Result<ParallelDerive, CoreError> {
    let jobs = batch_jobs().len();
    let (baseline, serial_wall) = run_batch(sample_size, 1, 7)?;
    let mut rows = vec![ParallelDeriveRow {
        workers: 1,
        wall: serial_wall,
        speedup: 1.0,
        identical: true,
    }];
    for &workers in worker_counts.iter().filter(|&&w| w != 1) {
        let (export, wall) = run_batch(sample_size, workers, 7)?;
        rows.push(ParallelDeriveRow {
            workers,
            wall,
            speedup: serial_wall.as_secs_f64() / wall.as_secs_f64().max(f64::MIN_POSITIVE),
            identical: export == baseline,
        });
    }
    Ok(ParallelDerive { jobs, rows })
}
