//! **E-FIG1** — paper Figure 1: "Effect of Dynamic Factor on Query Cost".
//!
//! The same select-project query on a ~50k-tuple table is executed while
//! the number of concurrent background processes sweeps from 50 to 130;
//! the paper observed the cost climbing from 3.80 s to 124.02 s. The shape
//! to reproduce: monotone growth with a sharp super-linear knee once the
//! host starts thrashing.

use crate::workloads::Site;
use mdbs_sim::contention::Load;
use mdbs_sim::query::{Query, UnaryQuery};
use mdbs_sim::MdbsAgent;

/// The sweep result.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// `(processes, mean observed cost)` per sweep point.
    pub points: Vec<(f64, f64)>,
    /// Human-readable description of the swept query.
    pub query: String,
}

impl Fig1 {
    /// Cost ratio between the heaviest and lightest sweep points.
    pub fn dynamic_ratio(&self) -> f64 {
        let first = self.points.first().map_or(1.0, |p| p.1);
        let last = self.points.last().map_or(1.0, |p| p.1);
        last / first.max(f64::MIN_POSITIVE)
    }
}

impl std::fmt::Display for Fig1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 1: effect of concurrent processes on query cost")?;
        writeln!(f, "Query: {}", self.query)?;
        writeln!(f, "{:>10} {:>16}", "processes", "cost (sec)")?;
        for (procs, cost) in &self.points {
            writeln!(f, "{procs:>10.0} {cost:>16.2}")?;
        }
        writeln!(
            f,
            "cost ratio {:.1}x across the sweep (paper: 124.02/3.80 = 32.6x)",
            self.dynamic_ratio()
        )
    }
}

/// The Figure-1 query: a moderate select-project on the ~50k-tuple table,
/// mirroring `select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000`.
pub fn fig1_query(agent: &MdbsAgent) -> Query {
    // Pick the table closest to the paper's 50,000 tuples.
    let t = agent
        .catalog()
        .tables()
        .iter()
        .min_by_key(|t| t.cardinality.abs_diff(50_000))
        .expect("standard database is non-empty");
    Query::Unary(UnaryQuery {
        table: t.id,
        projection: vec![0, 4, 6],
        predicates: vec![
            // Unindexed columns so the access path is a sequential scan.
            mdbs_sim::query::Predicate::gt(4, t.columns[4].domain_max / 30),
            mdbs_sim::query::Predicate::lt(5, t.columns[5].domain_max / 5),
        ],
        order_by: None,
    })
}

/// Runs the sweep on the Oracle site: `procs` from 50 to 130 in steps of 5,
/// `reps` executions averaged per point.
pub fn fig1(reps: usize) -> Fig1 {
    let mut agent = Site::Oracle.agent(101);
    let query = fig1_query(&agent);
    let mut points = Vec::new();
    for procs in (50..=130).step_by(5) {
        agent.set_load(Load::background(procs as f64));
        let mean = (0..reps.max(1))
            .map(|_| agent.run(&query).expect("query valid").cost_s)
            .sum::<f64>()
            / reps.max(1) as f64;
        points.push((procs as f64, mean));
    }
    Fig1 {
        points,
        query: query.describe(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_papers_range() {
        let r = fig1(2);
        assert_eq!(r.points.first().unwrap().0, 50.0);
        assert_eq!(r.points.last().unwrap().0, 130.0);
        assert_eq!(r.points.len(), 17);
    }

    #[test]
    fn cost_explodes_superlinearly() {
        let r = fig1(3);
        // Paper shape: >10x growth with a convex knee.
        assert!(r.dynamic_ratio() > 10.0, "ratio {:.1}", r.dynamic_ratio());
        let costs: Vec<f64> = r.points.iter().map(|p| p.1).collect();
        let early = costs[4] - costs[0]; // 70 vs 50 procs
        let late = costs[16] - costs[12]; // 130 vs 110 procs
        assert!(late > 2.0 * early, "no knee: early {early}, late {late}");
    }

    #[test]
    fn display_renders_all_rows() {
        let r = fig1(1);
        let text = r.to_string();
        assert!(text.contains("Figure 1"));
        assert_eq!(text.lines().count(), 3 + r.points.len() + 1);
    }
}
