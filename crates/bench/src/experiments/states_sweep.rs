//! **E-STATES** — paper §5 (text observation): "the coefficients of total
//! determination for the cost models for query class G2 on Oracle with 1 to
//! 6 contention states are 0.7788, 0.9636, 0.9674, 0.9899, 0.9922" — more
//! states help, with fast-diminishing returns after 3–6.

use crate::workloads::{seed_for, Site};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::collect_observations;
use mdbs_core::model::{fit_cost_model, ModelForm};
use mdbs_core::qualvar::StateSet;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::CoreError;

/// R²/SEE per state count.
#[derive(Debug, Clone)]
pub struct StatesSweep {
    /// Workload label.
    pub label: String,
    /// `(m, R², SEE)` per fitted state count (skipping thin fits).
    pub points: Vec<(usize, f64, f64)>,
}

impl StatesSweep {
    /// R² gain from 1 state to the largest fitted count.
    pub fn total_gain(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.1 - a.1,
            _ => 0.0,
        }
    }
}

impl std::fmt::Display for StatesSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "R^2 vs number of contention states — {}", self.label)?;
        writeln!(f, "{:>3} {:>9} {:>11}", "m", "R^2", "SEE")?;
        for (m, r2, see) in &self.points {
            writeln!(f, "{m:>3} {r2:>9.4} {see:>11.3e}")?;
        }
        writeln!(
            f,
            "(paper, G2 on Oracle: 0.7788 0.9636 0.9674 0.9899 0.9922 …)"
        )
    }
}

/// Sweeps the state count 1..=`max_states` on one sample of `class` at the
/// Oracle site, fitting the general model with the basic variables.
pub fn states_sweep(
    class: QueryClass,
    sample_size: usize,
    max_states: usize,
) -> Result<StatesSweep, CoreError> {
    let site = Site::Oracle;
    let mut agent = site.dynamic_agent(seed_for(site, class, 30));
    let mut generator = SampleGenerator::new(seed_for(site, class, 31));
    let observations = collect_observations(&mut agent, class, sample_size, &mut generator, None)?;
    let family = class.family();
    let basic = family.basic_indexes();
    let names: Vec<String> = basic
        .iter()
        .map(|&i| family.all()[i].name.to_string())
        .collect();
    let (c_min, c_max) = observations
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), o| {
            (lo.min(o.probe_cost), hi.max(o.probe_cost))
        });
    let mut points = Vec::new();
    for m in 1..=max_states {
        let states = if m == 1 {
            StateSet::single()
        } else {
            StateSet::uniform(c_min, c_max, m)?
        };
        let form = if m == 1 {
            ModelForm::Coincident
        } else {
            ModelForm::General
        };
        match fit_cost_model(form, states, basic.clone(), names.clone(), &observations) {
            Ok(model) => points.push((m, model.fit.r_squared, model.fit.see)),
            Err(CoreError::InsufficientSamples { .. }) => continue, // Thin slice.
            Err(e) => return Err(e),
        }
    }
    Ok(StatesSweep {
        label: format!("{} on {}", class.label(), site.name()),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2_improves_with_states_then_saturates() {
        let s = states_sweep(QueryClass::UnaryNonClusteredIndex, 400, 6).unwrap();
        assert!(s.points.len() >= 4, "{:?}", s.points);
        let first = s.points.first().unwrap();
        let last = s.points.last().unwrap();
        assert_eq!(first.0, 1);
        // Big jump from the static model to multi-states...
        assert!(s.total_gain() > 0.1, "gain {}", s.total_gain());
        assert!(last.1 > 0.9, "final R² {}", last.1);
        // ...and the later increments are smaller than the first one.
        if s.points.len() >= 3 {
            let d1 = s.points[1].1 - s.points[0].1;
            let d_last = last.1 - s.points[s.points.len() - 2].1;
            assert!(d_last < d1, "no diminishing returns: {d1} vs {d_last}");
        }
    }
}
