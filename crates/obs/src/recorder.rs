//! Serving-loop flight recorder and accuracy ledger.
//!
//! Two deterministic observability primitives used by the long-lived
//! estimation server:
//!
//! * [`FlightRecorder`] — a bounded ring of per-request lifecycle
//!   records plus an unbounded log of maintenance / heartbeat / anomaly
//!   events, dumpable as JSONL. Request records are evicted oldest-first
//!   once the ring is full; maintenance events are always retained
//!   because they are few and each one explains a model change.
//! * [`AccuracyLedger`] — per-(site, state) rolling statistics of the
//!   relative error between a served estimate and the cost later
//!   observed for the same site, the residual stream that
//!   feedback-driven model correction consumes.
//!
//! Every field in every record is derived from virtual trace time and
//! seeded computation — nothing here reads a clock, so dumps are
//! byte-identical across runs and worker counts and pass through
//! [`crate::strip_wall_clock`] unchanged.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::json::Json;
use crate::metrics::percentile_sorted;
use crate::Telemetry;

/// Record type tag carried by every flight-recorder JSONL line.
pub const FLIGHT_RECORD_TYPE: &str = "flight";

/// Bounded ring of request lifecycles plus an unbounded maintenance log.
///
/// A capacity of `0` disables the recorder: every `record_*` call is a
/// no-op and [`FlightRecorder::dump_jsonl`] returns an empty string.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    seq: u64,
    requests: VecDeque<Json>,
    events: Vec<Json>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` request lifecycles
    /// (`0` disables recording entirely).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            seq: 0,
            requests: VecDeque::new(),
            events: Vec::new(),
        }
    }

    /// A recorder that drops everything (capacity 0).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::new(0)
    }

    /// Whether this recorder retains anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Retained request-lifecycle records, oldest first.
    pub fn requests(&self) -> impl Iterator<Item = &Json> {
        self.requests.iter()
    }

    /// Retained maintenance / heartbeat / anomaly records, oldest first.
    pub fn events(&self) -> &[Json] {
        &self.events
    }

    /// Number of retained request records (≤ capacity).
    pub fn request_len(&self) -> usize {
        self.requests.len()
    }

    /// Number of retained event records.
    pub fn event_len(&self) -> usize {
        self.events.len()
    }

    /// Total retained records.
    pub fn len(&self) -> usize {
        self.requests.len() + self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn stamp(&mut self, kind: &str, fields: Vec<(String, Json)>) -> Json {
        let mut obj = Vec::with_capacity(fields.len() + 3);
        obj.push(("type".to_string(), Json::from(FLIGHT_RECORD_TYPE)));
        obj.push(("kind".to_string(), Json::from(kind)));
        obj.push(("seq".to_string(), Json::from(self.seq)));
        self.seq += 1;
        obj.extend(fields);
        Json::Obj(obj)
    }

    /// Records one request lifecycle (`kind = "request"`). The ring keeps
    /// only the most recent `capacity` of these, evicting oldest-first.
    // ctx: serial-only
    pub fn record_request(&mut self, fields: Vec<(String, Json)>) {
        if self.capacity == 0 {
            return;
        }
        let record = self.stamp("request", fields);
        self.requests.push_back(record);
        while self.requests.len() > self.capacity {
            self.requests.pop_front();
        }
    }

    /// Records a maintenance / heartbeat / anomaly event; these are never
    /// evicted (each one explains a model or serving-state change).
    // ctx: serial-only
    pub fn record_event(&mut self, kind: &str, fields: Vec<(String, Json)>) {
        if self.capacity == 0 {
            return;
        }
        let record = self.stamp(kind, fields);
        self.events.push(record);
    }

    /// All retained records as JSONL, merged back into record order
    /// (ascending `seq`, i.e. the order events happened in trace time).
    pub fn dump_jsonl(&self) -> String {
        let seq_of = |record: &Json| -> u64 {
            record
                .get("seq")
                .and_then(Json::as_i64)
                .map_or(0, |s| s as u64)
        };
        let mut out = String::new();
        let mut reqs = self.requests.iter().peekable();
        let mut evs = self.events.iter().peekable();
        loop {
            let record = match (reqs.peek(), evs.peek()) {
                (Some(r), Some(e)) => {
                    if seq_of(r) <= seq_of(e) {
                        reqs.next()
                    } else {
                        evs.next()
                    }
                }
                (Some(_), None) => reqs.next(),
                (None, Some(_)) => evs.next(),
                (None, None) => break,
            };
            if let Some(record) = record {
                out.push_str(&record.render());
                out.push('\n');
            }
        }
        out
    }
}

/// Tolerance below which a mean signed relative error counts as unbiased.
const BIAS_EPSILON: f64 = 1e-9;

#[derive(Debug, Clone, PartialEq, Default)]
struct LedgerEntry {
    count: u64,
    sum_signed_rel: f64,
    over: u64,
    under: u64,
    abs_rel: Vec<f64>,
    /// Monotone recency stamp for LRU eviction under a cell bound.
    touch: u64,
}

/// One (site, state) row of the accuracy ledger, with derived statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerSummary {
    /// Site the estimates were served for.
    pub site: String,
    /// Contention-state label the probing cost mapped to (paper labels,
    /// `S1` = highest contention).
    pub state: String,
    /// Number of (estimate, observed) pairs folded in.
    pub count: u64,
    /// Mean signed relative error `(estimate − observed) / observed`;
    /// positive means the model overestimates in this state.
    pub mean_rel: f64,
    /// Mean absolute relative error.
    pub mean_abs_rel: f64,
    /// Nearest-rank p50 of the absolute relative error.
    pub p50_abs_rel: f64,
    /// Nearest-rank p95 of the absolute relative error.
    pub p95_abs_rel: f64,
    /// Bias direction: `'+'` overestimating, `'-'` underestimating,
    /// `'='` within `BIAS_EPSILON` (1e-9) of unbiased.
    pub bias: char,
}

impl LedgerSummary {
    /// The row as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("site".to_string(), Json::from(self.site.as_str())),
            ("state".to_string(), Json::from(self.state.as_str())),
            ("n".to_string(), Json::from(self.count)),
            ("mean_rel_err".to_string(), Json::from(self.mean_rel)),
            (
                "mean_abs_rel_err".to_string(),
                Json::from(self.mean_abs_rel),
            ),
            ("p50_abs_rel_err".to_string(), Json::from(self.p50_abs_rel)),
            ("p95_abs_rel_err".to_string(), Json::from(self.p95_abs_rel)),
            (
                "bias".to_string(),
                Json::from(self.bias.to_string().as_str()),
            ),
        ])
    }
}

/// Per-(site, state) rolling accuracy of served estimates.
///
/// Folds each observed execution cost against the estimate the registry
/// served for the same site, keyed by the contention state the probing
/// cost mapped to. Iteration order is the `BTreeMap` key order, so every
/// rendering is deterministic. Construct with [`AccuracyLedger::bounded`]
/// to cap the number of live cells: a trace naming unbounded distinct
/// sites then evicts the least-recently-recorded cell instead of growing
/// without limit, and counts each eviction
/// ([`AccuracyLedger::evictions`], exported as `serve.ledger.evictions`).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyLedger {
    entries: BTreeMap<(String, String), LedgerEntry>,
    max_cells: usize,
    touch_counter: u64,
    evictions: u64,
}

impl Default for AccuracyLedger {
    fn default() -> AccuracyLedger {
        AccuracyLedger {
            entries: BTreeMap::new(),
            max_cells: usize::MAX,
            touch_counter: 0,
            evictions: 0,
        }
    }
}

impl AccuracyLedger {
    /// An empty, unbounded ledger.
    pub fn new() -> AccuracyLedger {
        AccuracyLedger::default()
    }

    /// An empty ledger holding at most `max_cells` (site, state) rows
    /// (clamped to ≥ 1); the least-recently-recorded row is evicted when
    /// a new key would exceed the bound.
    pub fn bounded(max_cells: usize) -> AccuracyLedger {
        AccuracyLedger {
            max_cells: max_cells.max(1),
            ..AccuracyLedger::default()
        }
    }

    /// Folds one (estimate, observed) pair into the `(site, state)` row.
    /// The relative error is `(estimate − observed) / observed` (the
    /// denominator is floored away from zero to stay finite).
    // ctx: serial-only
    pub fn record(&mut self, site: &str, state: &str, estimate: f64, observed: f64) {
        let denom = observed.abs().max(1e-12);
        let rel = (estimate - observed) / denom;
        let key = (site.to_string(), state.to_string());
        if !self.entries.contains_key(&key) && self.entries.len() >= self.max_cells {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touch)
                .map(|(k, _)| k.clone())
                .expect("non-empty at cap");
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
        self.touch_counter += 1;
        let touch = self.touch_counter;
        let entry = self.entries.entry(key).or_default();
        entry.count += 1;
        entry.sum_signed_rel += rel;
        if rel > 0.0 {
            entry.over += 1;
        } else if rel < 0.0 {
            entry.under += 1;
        }
        entry.abs_rel.push(rel.abs());
        entry.touch = touch;
    }

    /// Rows evicted by the cell bound so far (always 0 when unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Nearest-rank (p50, p95) of the absolute relative error pooled
    /// across every live row — the single-number quality summary the
    /// correction layer is judged on. `(0.0, 0.0)` when empty.
    pub fn pooled_abs_rel_percentiles(&self) -> (f64, f64) {
        let mut pooled: Vec<f64> = self
            .entries
            .values()
            .flat_map(|e| e.abs_rel.iter().copied())
            .collect();
        pooled.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
        (
            percentile_sorted(&pooled, 0.50),
            percentile_sorted(&pooled, 0.95),
        )
    }

    /// Whether no pair has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of (site, state) rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total pairs folded in across all rows.
    pub fn samples(&self) -> u64 {
        self.entries.values().map(|e| e.count).sum()
    }

    /// Derived per-row statistics, in key order.
    pub fn summaries(&self) -> Vec<LedgerSummary> {
        self.entries
            .iter()
            .map(|((site, state), entry)| {
                let mut sorted = entry.abs_rel.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
                let n = entry.count as f64;
                let mean_rel = entry.sum_signed_rel / n;
                let mean_abs_rel = sorted.iter().sum::<f64>() / n;
                let bias = if mean_rel > BIAS_EPSILON {
                    '+'
                } else if mean_rel < -BIAS_EPSILON {
                    '-'
                } else {
                    '='
                };
                LedgerSummary {
                    site: site.clone(),
                    state: state.clone(),
                    count: entry.count,
                    mean_rel,
                    mean_abs_rel,
                    p50_abs_rel: percentile_sorted(&sorted, 0.50),
                    p95_abs_rel: percentile_sorted(&sorted, 0.95),
                    bias,
                }
            })
            .collect()
    }

    /// Human-readable table, one row per (site, state), empty string when
    /// the ledger is empty.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::from("accuracy ledger (site x state):\n");
        for row in self.summaries() {
            out.push_str(&format!(
                "  {}/{}: n={} mean rel {:+.1}% |rel| p50 {:.1}% p95 {:.1}% bias {}\n",
                row.site,
                row.state,
                row.count,
                row.mean_rel * 100.0,
                row.p50_abs_rel * 100.0,
                row.p95_abs_rel * 100.0,
                row.bias,
            ));
        }
        out
    }

    /// The ledger as a JSON array of row objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.summaries()
                .iter()
                .map(LedgerSummary::to_json)
                .collect(),
        )
    }

    /// Folds the ledger into telemetry: per-row absolute-relative-error
    /// histograms (`serve.ledger.<site>.<state>.abs_rel_err`), signed
    /// mean-error gauges (`...mean_rel_err`) and the
    /// `serve.ledger.evictions` counter. All values are seed-pure.
    pub fn fold_metrics(&self, telemetry: &mut Telemetry) {
        for ((site, state), entry) in &self.entries {
            let base = format!("serve.ledger.{site}.{state}");
            for &abs in &entry.abs_rel {
                // lint:allow(unregistered-metric): per-(site,state) names fall under the registered serve.ledger.* histogram prefix
                telemetry.observe(&format!("{base}.abs_rel_err"), abs);
            }
            // lint:allow(unregistered-metric): per-(site,state) names fall under the registered serve.ledger.* gauge prefix
            telemetry.gauge(
                &format!("{base}.mean_rel_err"),
                entry.sum_signed_rel / entry.count as f64,
            );
        }
        telemetry.inc("serve.ledger.evictions", self.evictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> Vec<(String, Json)> {
        vec![(
            "trace_id".to_string(),
            Json::from(format!("r{id}").as_str()),
        )]
    }

    #[test]
    fn ring_keeps_exactly_the_last_n_in_order() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..7 {
            rec.record_request(req(i));
        }
        assert_eq!(rec.request_len(), 3);
        let ids: Vec<&str> = rec
            .requests()
            .map(|r| r.get("trace_id").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(ids, vec!["r4", "r5", "r6"]);
    }

    #[test]
    fn events_survive_request_eviction() {
        let mut rec = FlightRecorder::new(2);
        rec.record_request(req(0));
        rec.record_event("refit", vec![("site".to_string(), Json::from("oracle"))]);
        rec.record_request(req(1));
        rec.record_request(req(2));
        assert_eq!(rec.request_len(), 2);
        assert_eq!(rec.event_len(), 1);
        // Dump interleaves by seq: the refit (seq 1) sits between the two
        // surviving requests? No — request seq 0 was evicted, so the dump
        // starts at the refit.
        let dump = rec.dump_jsonl();
        let kinds: Vec<String> = dump
            .lines()
            .map(|l| {
                crate::json::parse(l)
                    .unwrap()
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(kinds, vec!["refit", "request", "request"]);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut rec = FlightRecorder::disabled();
        rec.record_request(req(0));
        rec.record_event("heartbeat", vec![]);
        assert!(rec.is_empty());
        assert!(!rec.is_enabled());
        assert_eq!(rec.dump_jsonl(), "");
    }

    #[test]
    fn dump_lines_parse_and_carry_type_and_seq() {
        let mut rec = FlightRecorder::new(8);
        rec.record_request(req(0));
        rec.record_event("heartbeat", vec![("at_s".to_string(), Json::from(10.0))]);
        let dump = rec.dump_jsonl();
        let mut seqs = Vec::new();
        for line in dump.lines() {
            let parsed = crate::json::parse(line).expect("flight record parses");
            assert_eq!(parsed.get("type").and_then(Json::as_str), Some("flight"));
            seqs.push(parsed.get("seq").and_then(Json::as_i64).unwrap());
        }
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn ledger_matches_hand_computed_residuals() {
        // Three served-then-observed pairs in one (site, state) cell:
        //   estimate 120 vs observed 100 -> rel +0.20
        //   estimate  90 vs observed 100 -> rel -0.10
        //   estimate 150 vs observed 100 -> rel +0.50
        let mut ledger = AccuracyLedger::new();
        ledger.record("oracle", "S1", 120.0, 100.0);
        ledger.record("oracle", "S1", 90.0, 100.0);
        ledger.record("oracle", "S1", 150.0, 100.0);
        let rows = ledger.summaries();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.count, 3);
        assert!((row.mean_rel - 0.2).abs() < 1e-12, "mean {}", row.mean_rel);
        assert!((row.mean_abs_rel - (0.2 + 0.1 + 0.5) / 3.0).abs() < 1e-12);
        // Sorted |rel| = [0.10, 0.20, 0.50]; nearest-rank p50 -> rank 2,
        // p95 -> rank 3.
        assert!((row.p50_abs_rel - 0.2).abs() < 1e-12);
        assert!((row.p95_abs_rel - 0.5).abs() < 1e-12);
        assert_eq!(row.bias, '+');
        assert_eq!(ledger.samples(), 3);
    }

    #[test]
    fn ledger_separates_sites_and_states_and_signs_bias() {
        let mut ledger = AccuracyLedger::new();
        ledger.record("oracle", "S1", 80.0, 100.0);
        ledger.record("oracle", "S2", 100.0, 100.0);
        ledger.record("db2", "S1", 130.0, 100.0);
        let rows = ledger.summaries();
        // BTreeMap key order: (db2, S1), (oracle, S1), (oracle, S2).
        let keys: Vec<(String, String)> = rows
            .iter()
            .map(|r| (r.site.clone(), r.state.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("db2".to_string(), "S1".to_string()),
                ("oracle".to_string(), "S1".to_string()),
                ("oracle".to_string(), "S2".to_string()),
            ]
        );
        assert_eq!(rows[0].bias, '+');
        assert_eq!(rows[1].bias, '-');
        assert_eq!(rows[2].bias, '=');
        let json = ledger.to_json().render();
        let parsed = crate::json::parse(&json).expect("ledger json parses");
        match parsed {
            Json::Arr(rows) => assert_eq!(rows.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn bounded_ledger_evicts_least_recently_recorded() {
        let mut ledger = AccuracyLedger::bounded(2);
        ledger.record("a", "S1", 110.0, 100.0);
        ledger.record("b", "S1", 110.0, 100.0);
        // Touch `a` so `b` becomes the LRU victim.
        ledger.record("a", "S1", 110.0, 100.0);
        ledger.record("c", "S1", 110.0, 100.0);
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.evictions(), 1);
        let keys: Vec<String> = ledger.summaries().iter().map(|r| r.site.clone()).collect();
        // BTreeMap order of the survivors.
        assert_eq!(keys, vec!["a".to_string(), "c".to_string()]);
        // Re-recording an existing key never evicts.
        ledger.record("c", "S1", 110.0, 100.0);
        assert_eq!(ledger.evictions(), 1);
        // The unbounded ledger never evicts.
        let mut unbounded = AccuracyLedger::new();
        for i in 0..64 {
            unbounded.record(&format!("site{i}"), "S1", 110.0, 100.0);
        }
        assert_eq!(unbounded.evictions(), 0);
        assert_eq!(unbounded.len(), 64);
    }

    #[test]
    fn pooled_percentiles_span_all_cells() {
        let mut ledger = AccuracyLedger::new();
        assert_eq!(ledger.pooled_abs_rel_percentiles(), (0.0, 0.0));
        // |rel| samples 0.1 and 0.5 in different cells: pooled sorted
        // [0.1, 0.5], nearest-rank p50 = 0.1, p95 = 0.5.
        ledger.record("a", "S1", 110.0, 100.0);
        ledger.record("b", "S2", 150.0, 100.0);
        let (p50, p95) = ledger.pooled_abs_rel_percentiles();
        assert!((p50 - 0.1).abs() < 1e-12, "p50 {p50}");
        assert!((p95 - 0.5).abs() < 1e-12, "p95 {p95}");
    }

    #[test]
    fn fold_metrics_emits_histogram_and_gauge() {
        let mut ledger = AccuracyLedger::new();
        ledger.record("oracle", "S1", 120.0, 100.0);
        let mut tel = Telemetry::enabled();
        ledger.fold_metrics(&mut tel);
        let jsonl = tel.render_jsonl();
        assert!(jsonl.contains("serve.ledger.oracle.S1.abs_rel_err"));
        assert!(jsonl.contains("serve.ledger.oracle.S1.mean_rel_err"));
    }
}
