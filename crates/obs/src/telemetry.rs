//! The [`Telemetry`] facade instrumented code talks to.
//!
//! A `Telemetry` bundles a span collection and a [`MetricsRegistry`].
//! Instrumented functions take `&mut Telemetry`; callers that do not care
//! pass [`Telemetry::disabled`], whose every operation is a cheap no-op, so
//! instrumentation costs nothing on un-observed paths.

use crate::json::{parse, Json};
use crate::metrics::MetricsRegistry;
use crate::sink::{Event, EventSink};
use crate::span::{SpanId, SpanRecord};
// lint:allow(no-wall-clock): this file IS the sanctioned wall_ms path; spans strip it for determinism comparisons
#[allow(clippy::disallowed_types)]
use std::time::Instant;

/// JSON field names that carry wall-clock (non-deterministic) values.
///
/// [`strip_wall_clock`] removes exactly these keys; determinism tests
/// compare what remains byte for byte.
pub const WALL_CLOCK_FIELDS: &[&str] = &["wall_ms"];

/// Metric-name prefixes whose events are scheduling-dependent and therefore
/// non-deterministic across worker counts (e.g. work-steal counts, queue
/// depths, configured worker counts of the derivation pool).
///
/// [`strip_wall_clock`] drops whole counter/gauge/histogram events whose
/// `name` starts with one of these prefixes, so telemetry from an N-worker
/// batch run can be compared byte for byte against a serial run. Everything
/// else in the stream must stay a pure function of the seeds.
pub const SCHEDULING_METRIC_PREFIXES: &[&str] = &["pool.sched."];

/// A telemetry collection: hierarchical spans plus a metrics registry.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    /// The metrics registry (counters, gauges, histograms).
    pub metrics: MetricsRegistry,
    spans: Vec<SpanRecord>,
    #[allow(clippy::disallowed_types)]
    starts: Vec<Option<Instant>>,
    open: Vec<usize>,
}

impl Default for Telemetry {
    /// The default collection is [`Telemetry::disabled`]: instrumentation
    /// that receives it costs nothing and records nothing.
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A recording collection.
    pub fn enabled() -> Self {
        Telemetry {
            enabled: true,
            metrics: MetricsRegistry::new(),
            spans: Vec::new(),
            starts: Vec::new(),
            open: Vec::new(),
        }
    }

    /// A no-op collection: every method returns immediately.
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            metrics: MetricsRegistry::new(),
            spans: Vec::new(),
            starts: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Whether this collection records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends another collection's spans and metrics to this one.
    ///
    /// Child spans keep their relative order and nesting; their `seq` and
    /// `parent` numbers are offset past this collection's existing spans.
    /// With `under = Some(span)`, the child's root spans are re-parented
    /// beneath that span (open or closed) and every depth is shifted
    /// accordingly; with `under = None` they stay roots. Metrics are folded
    /// in via [`MetricsRegistry::merge`]. The result depends only on the
    /// order of `merge_child` calls, so a batch runner that merges per-job
    /// collections in job-id order gets deterministic combined telemetry no
    /// matter which threads produced them.
    pub fn merge_child(&mut self, child: Telemetry, under: Option<SpanId>) {
        if !self.enabled {
            return;
        }
        let offset = self.spans.len() as u64;
        let (anchor_seq, depth_shift) = match under {
            Some(span) if span != SpanId::DISABLED => match self.spans.get(span.0) {
                Some(record) => (Some(record.seq), record.depth + 1),
                None => (None, 0),
            },
            _ => (None, 0),
        };
        for mut span in child.spans {
            span.seq += offset;
            span.parent = match span.parent {
                Some(parent) => Some(parent + offset),
                None => anchor_seq,
            };
            span.depth += depth_shift;
            self.spans.push(span);
            self.starts.push(None);
        }
        self.metrics.merge(&child.metrics);
    }

    /// Opens a span; it becomes the child of the innermost open span.
    #[allow(clippy::disallowed_methods, clippy::disallowed_types)]
    pub fn begin_span(&mut self, name: &str) -> SpanId {
        if !self.enabled {
            return SpanId::DISABLED;
        }
        let seq = self.spans.len() as u64;
        let parent = self.open.last().map(|&i| self.spans[i].seq);
        let depth = self.open.len();
        self.spans.push(SpanRecord {
            name: name.to_string(),
            seq,
            parent,
            depth,
            fields: Vec::new(),
            wall_ms: 0.0,
            closed: false,
        });
        self.starts.push(Some(Instant::now()));
        self.open.push(seq as usize);
        SpanId(seq as usize)
    }

    /// Attaches a deterministic field to a span (open or closed).
    pub fn field(&mut self, span: SpanId, key: &str, value: impl Into<Json>) {
        if !self.enabled || span == SpanId::DISABLED {
            return;
        }
        if let Some(record) = self.spans.get_mut(span.0) {
            record.fields.push((key.to_string(), value.into()));
        }
    }

    /// Closes a span, recording its wall-clock duration. Any still-open
    /// descendants are closed too (spans strictly nest).
    pub fn end_span(&mut self, span: SpanId) {
        if !self.enabled || span == SpanId::DISABLED {
            return;
        }
        while let Some(&top) = self.open.last() {
            let record = &mut self.spans[top];
            record.closed = true;
            if let Some(start) = self.starts[top].take() {
                record.wall_ms = start.elapsed().as_secs_f64() * 1e3;
            }
            self.open.pop();
            if top == span.0 {
                break;
            }
        }
    }

    /// Increments a counter.
    pub fn inc(&mut self, name: &str, delta: u64) {
        if self.enabled {
            self.metrics.inc(name, delta);
        }
    }

    /// Sets a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.set_gauge(name, value);
        }
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.observe(name, value);
        }
    }

    /// Folds an external registry (e.g. an agent's) into this collection.
    pub fn merge_metrics(&mut self, other: &MetricsRegistry) {
        if self.enabled {
            self.metrics.merge(other);
        }
    }

    /// The recorded spans, in begin order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// All recorded data as structured events: spans in begin order, then
    /// counters, gauges and histogram summaries in name order.
    pub fn events(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self.spans.iter().cloned().map(Event::Span).collect();
        for (name, value) in self.metrics.counters() {
            events.push(Event::Counter {
                name: name.to_string(),
                value,
            });
        }
        for (name, value) in self.metrics.gauges() {
            events.push(Event::Gauge {
                name: name.to_string(),
                value,
            });
        }
        for (name, hist) in self.metrics.histograms() {
            events.push(Event::Histogram {
                name: name.to_string(),
                summary: hist.summary(),
            });
        }
        events
    }

    /// Emits every event into a sink (memory, discarding or file-backed).
    pub fn emit_to(&self, sink: &mut dyn EventSink) {
        for event in self.events() {
            sink.emit(&event);
        }
    }

    /// Renders every event as JSONL (one JSON object per line).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&event.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Renders a human-readable summary: the span tree (with wall-clock
    /// durations, which are non-deterministic) followed by the metrics.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans (wall-clock is non-deterministic):\n");
            for span in &self.spans {
                out.push_str(&"  ".repeat(span.depth + 1));
                out.push_str(&span.name);
                for (key, value) in &span.fields {
                    out.push_str(&format!(" {key}={}", value.render()));
                }
                out.push_str(&format!(" [{:.2} ms]\n", span.wall_ms));
            }
        }
        out.push_str(&self.metrics.render_text());
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }
}

/// Removes every [`WALL_CLOCK_FIELDS`] key from each JSONL line and drops
/// whole metric events whose name falls under [`SCHEDULING_METRIC_PREFIXES`],
/// returning the deterministic remainder (lines that fail to parse pass
/// through verbatim). Two same-seed runs — at any worker count — must agree
/// byte for byte on the result.
pub fn strip_wall_clock(jsonl: &str) -> String {
    let mut out = String::new();
    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line) {
            Ok(mut value) => {
                if is_scheduling_metric(&value) {
                    continue;
                }
                strip(&mut value);
                out.push_str(&value.render());
            }
            Err(_) => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// Whether an event line is a scheduling-dependent metric (dropped whole by
/// [`strip_wall_clock`]). Spans are never dropped: pipeline code must not
/// name spans under a scheduling prefix.
fn is_scheduling_metric(value: &Json) -> bool {
    let is_metric = matches!(
        value.get("type").and_then(Json::as_str),
        Some("counter" | "gauge" | "histogram")
    );
    is_metric
        && value
            .get("name")
            .and_then(Json::as_str)
            .is_some_and(|name| {
                SCHEDULING_METRIC_PREFIXES
                    .iter()
                    .any(|prefix| name.starts_with(prefix))
            })
}

fn strip(value: &mut Json) {
    match value {
        Json::Obj(pairs) => {
            pairs.retain(|(key, _)| !WALL_CLOCK_FIELDS.contains(&key.as_str()));
            for (_, v) in pairs {
                strip(v);
            }
        }
        Json::Arr(items) => {
            for v in items {
                strip(v);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn sample() -> Telemetry {
        let mut tel = Telemetry::enabled();
        let root = tel.begin_span("derive");
        let child = tel.begin_span("derive.sampling");
        tel.field(child, "observations", 200u64);
        tel.field(child, "virtual_s", 12.5);
        tel.end_span(child);
        tel.field(root, "class", "G1");
        tel.end_span(root);
        tel.inc("engine.executions", 401);
        tel.gauge("engine.cost.cpu_s", 3.25);
        tel.observe("engine.contention_inflation", 4.0);
        tel
    }

    #[test]
    fn spans_nest_and_close() {
        let tel = sample();
        let spans = tel.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "derive");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "derive.sampling");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].parent, Some(0));
        assert!(spans.iter().all(|s| s.closed));
    }

    #[test]
    fn ending_a_parent_closes_open_children() {
        let mut tel = Telemetry::enabled();
        let root = tel.begin_span("outer");
        let _leaked = tel.begin_span("inner");
        tel.end_span(root);
        assert!(tel.spans().iter().all(|s| s.closed));
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut tel = Telemetry::disabled();
        let span = tel.begin_span("x");
        tel.field(span, "k", 1u64);
        tel.end_span(span);
        tel.inc("c", 1);
        tel.observe("h", 1.0);
        assert!(!tel.is_enabled());
        assert!(tel.spans().is_empty());
        assert!(tel.metrics.is_empty());
        assert_eq!(tel.render_jsonl(), "");
        assert!(tel.render_summary().contains("no telemetry"));
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let tel = sample();
        let jsonl = tel.render_jsonl();
        // 2 spans + 1 counter + 1 gauge + 1 histogram.
        assert_eq!(jsonl.lines().count(), 5);
        for line in jsonl.lines() {
            parse(line).expect("every line is valid JSON");
        }
    }

    #[test]
    fn emit_to_matches_events() {
        let tel = sample();
        let mut sink = MemorySink::new();
        tel.emit_to(&mut sink);
        assert_eq!(sink.events(), tel.events().as_slice());
    }

    #[test]
    fn strip_wall_clock_removes_only_wall_fields() {
        let tel = sample();
        let stripped = strip_wall_clock(&tel.render_jsonl());
        assert!(!stripped.contains("wall_ms"), "{stripped}");
        assert!(stripped.contains("derive.sampling"));
        assert!(stripped.contains("\"observations\":200"));
        assert!(stripped.contains("engine.executions"));
    }

    #[test]
    fn stripped_jsonl_is_deterministic_across_identical_recordings() {
        let a = strip_wall_clock(&sample().render_jsonl());
        let b = strip_wall_clock(&sample().render_jsonl());
        assert_eq!(a, b);
    }

    #[test]
    fn default_telemetry_is_disabled() {
        let tel = Telemetry::default();
        assert!(!tel.is_enabled());
        assert!(tel.spans().is_empty());
    }

    #[test]
    fn merge_child_reparents_and_offsets_child_spans() {
        let mut parent = Telemetry::enabled();
        let batch = parent.begin_span("derive_all");

        let mut child = Telemetry::enabled();
        let job = child.begin_span("derive");
        let stage = child.begin_span("derive.fit");
        child.end_span(stage);
        child.end_span(job);
        child.inc("engine.executions", 7);

        parent.merge_child(child, Some(batch));
        parent.end_span(batch);

        let spans = parent.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].name, "derive");
        assert_eq!(spans[1].seq, 1);
        assert_eq!(
            spans[1].parent,
            Some(0),
            "child root hangs off the batch span"
        );
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].name, "derive.fit");
        assert_eq!(spans[2].parent, Some(1), "internal nesting is preserved");
        assert_eq!(spans[2].depth, 2);
        assert!(spans.iter().all(|s| s.closed));
        assert_eq!(parent.metrics.counter("engine.executions"), 7);
    }

    #[test]
    fn merge_child_without_anchor_keeps_roots_as_roots() {
        let mut parent = Telemetry::enabled();
        let early = parent.begin_span("setup");
        parent.end_span(early);

        let mut child = Telemetry::enabled();
        let job = child.begin_span("derive");
        child.end_span(job);

        parent.merge_child(child, None);
        let spans = parent.spans();
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].seq, 1);
    }

    #[test]
    fn merge_child_order_determines_output_not_thread_timing() {
        let make = |tag: &str| {
            let mut tel = Telemetry::enabled();
            let s = tel.begin_span(tag);
            tel.end_span(s);
            tel
        };
        let mut a = Telemetry::enabled();
        a.merge_child(make("job0"), None);
        a.merge_child(make("job1"), None);
        let mut b = Telemetry::enabled();
        b.merge_child(make("job0"), None);
        b.merge_child(make("job1"), None);
        assert_eq!(
            strip_wall_clock(&a.render_jsonl()),
            strip_wall_clock(&b.render_jsonl())
        );
    }

    #[test]
    fn merge_child_into_disabled_parent_is_a_noop() {
        let mut parent = Telemetry::disabled();
        let mut child = Telemetry::enabled();
        let s = child.begin_span("derive");
        child.end_span(s);
        child.inc("engine.executions", 1);
        parent.merge_child(child, None);
        assert!(parent.spans().is_empty());
        assert!(parent.metrics.is_empty());
    }

    #[test]
    fn strip_drops_scheduling_metrics_but_keeps_like_named_spans() {
        let mut tel = Telemetry::enabled();
        let span = tel.begin_span("derive_all");
        tel.end_span(span);
        tel.inc("pool.jobs_completed", 4);
        tel.inc("pool.sched.steals", 3);
        tel.gauge("pool.sched.workers", 2.0);
        tel.observe("pool.sched.queue_depth", 5.0);
        let stripped = strip_wall_clock(&tel.render_jsonl());
        assert!(!stripped.contains("pool.sched."), "{stripped}");
        assert!(
            stripped.contains("pool.jobs_completed"),
            "deterministic pool counters must survive: {stripped}"
        );
        assert!(stripped.contains("derive_all"));
    }

    #[test]
    fn summary_mentions_spans_and_metrics() {
        let text = sample().render_summary();
        assert!(text.contains("derive.sampling"), "{text}");
        assert!(text.contains("observations=200"), "{text}");
        assert!(text.contains("engine.executions = 401"), "{text}");
        assert!(text.contains("engine.contention_inflation: n=1"), "{text}");
    }
}
