//! # mdbs-obs
//!
//! The workspace's observability substrate. The paper's whole premise is
//! that a dynamic environment must be *observed* to be modeled; this crate
//! makes our own pipeline observable in the same spirit, while honoring the
//! zero-external-dependency policy (`tests/hermetic.rs`): everything here is
//! `std`-only, including the JSON rendering and parsing.
//!
//! Three layers:
//!
//! * [`metrics`] — a [`MetricsRegistry`] of
//!   counters, gauges and log-bucketed histograms, snapshotable and
//!   renderable as text or JSONL,
//! * [`span`] + [`telemetry`] — hierarchical [`SpanRecord`]s
//!   with deterministic (virtual-time, field) payloads and an explicitly
//!   non-deterministic wall-clock duration, collected by the [`Telemetry`]
//!   facade that instrumented code receives as `&mut Telemetry`,
//! * [`sink`] — a structured [`EventSink`] trait with
//!   in-memory, discarding and file-backed JSONL implementations,
//! * [`recorder`] — the serving-loop [`FlightRecorder`] (bounded ring of
//!   request lifecycles plus maintenance/heartbeat events) and the
//!   per-(site, state) [`AccuracyLedger`] of served-vs-observed relative
//!   error.
//!
//! **Determinism policy.** Telemetry from a seeded run is itself a pure
//! function of the seeds *except* for wall-clock attribution. Wall-clock
//! values live only in fields named by [`telemetry::WALL_CLOCK_FIELDS`]
//! (currently `wall_ms`), and [`telemetry::strip_wall_clock`] removes them
//! from rendered JSONL so determinism comparisons can assert byte equality
//! on the remainder. Never put a non-deterministic value anywhere else.
//!
//! ```
//! use mdbs_obs::Telemetry;
//!
//! let mut tel = Telemetry::enabled();
//! let span = tel.begin_span("derive.sampling");
//! tel.field(span, "observations", 200u64);
//! tel.inc("engine.executions", 200);
//! tel.observe("engine.contention_inflation", 3.5);
//! tel.end_span(span);
//! let jsonl = tel.render_jsonl();
//! assert!(mdbs_obs::telemetry::strip_wall_clock(&jsonl).contains("derive.sampling"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod span;
pub mod telemetry;

pub use metrics::MetricsRegistry;
pub use recorder::{AccuracyLedger, FlightRecorder, LedgerSummary};
pub use sink::{Event, EventSink, JsonlFileSink, MemorySink, NullSink};
pub use span::{SpanId, SpanRecord};
pub use telemetry::{strip_wall_clock, Telemetry};
