//! The metrics registry: counters, gauges and log-bucketed histograms.
//!
//! All maps are `BTreeMap`s so iteration — and therefore every rendering —
//! is deterministic. Histogram bucketing uses the IEEE-754 exponent of the
//! value (bucket `e` covers `[2^e, 2^{e+1})`), which is exact integer
//! arithmetic: no `log2` rounding differences can ever move a value across
//! a bucket boundary.

use crate::json::Json;
use std::collections::BTreeMap;

/// Bucket index for non-positive or non-finite values.
const UNDERFLOW_BUCKET: i32 = i32::MIN;

/// Nearest-rank 1-based rank for quantile `q` over `len` samples,
/// clamped into `[1, len]` (callers guarantee `len > 0`).
fn nearest_rank(len: u64, q: f64) -> u64 {
    ((len as f64 * q).ceil() as u64).clamp(1, len)
}

/// Nearest-rank quantile of an ascending-sorted slice (`0.0` when empty).
///
/// This is the one percentile definition shared across the workspace —
/// the serve-loop report, the accuracy ledger and the histogram
/// summaries all use the same rank formula so their numbers agree.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[(nearest_rank(sorted.len() as u64, q) - 1) as usize]
}

/// A log-bucketed histogram of nonnegative measurements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i32, u64>,
}

/// A point-in-time, render-ready view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (0 when empty).
    pub min: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
    /// `(bucket exponent, count)` pairs, ascending; bucket `e` covers
    /// `[2^e, 2^{e+1})` and the underflow bucket (`i32::MIN`) collects
    /// `v <= 0`.
    pub buckets: Vec<(i32, u64)>,
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// A render-ready snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            buckets: self.buckets.iter().map(|(&e, &c)| (e, c)).collect(),
        }
    }
}

/// The IEEE-754 exponent of `v`: `floor(log2(v))` for normal positive `v`.
fn bucket_of(v: f64) -> i32 {
    if !v.is_finite() || v <= 0.0 {
        return UNDERFLOW_BUCKET;
    }
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormals all land in the lowest real bucket.
        -1023
    } else {
        biased - 1023
    }
}

impl HistogramSummary {
    /// Nearest-rank quantile reconstructed from the log buckets: walks
    /// buckets in ascending order until the cumulative count reaches the
    /// rank, then returns that bucket's upper edge clamped into
    /// `[min, max]` (the underflow bucket resolves to `min`). Bucket
    /// resolution bounds the error to one power of two; exact sample
    /// sets should use [`percentile_sorted`] instead.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = nearest_rank(self.count, q);
        let mut cumulative = 0u64;
        for &(exponent, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                if exponent == UNDERFLOW_BUCKET {
                    return self.min.min(0.0);
                }
                let upper = 2.0f64.powi(exponent.saturating_add(1).min(1023));
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Nearest-rank p50 from the buckets (see [`Self::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// Nearest-rank p95 from the buckets (see [`Self::percentile`]).
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// Nearest-rank p99 from the buckets (see [`Self::percentile`]).
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// The summary as a JSON object (used by the JSONL rendering).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from(self.count)),
            ("sum".into(), Json::from(self.sum)),
            ("min".into(), Json::from(self.min)),
            ("max".into(), Json::from(self.max)),
            ("p50".into(), Json::from(self.p50())),
            ("p95".into(), Json::from(self.p95())),
            ("p99".into(), Json::from(self.p99())),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(e, c)| Json::Arr(vec![Json::Int(e as i64), Json::from(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A registry of named counters, gauges and histograms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments a counter by `delta` (creating it at 0).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Adds to a gauge (creating it at 0) — for accumulated quantities like
    /// per-component cost seconds.
    pub fn add_gauge(&mut self, name: &str, delta: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Records a value into a histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// A counter's current value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's current value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, when it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters and gauges add,
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0.0) += value;
        }
        for (name, hist) in &other.histograms {
            let mine = self.histograms.entry(name.clone()).or_default();
            if mine.count == 0 {
                *mine = hist.clone();
                continue;
            }
            if hist.count > 0 {
                mine.min = mine.min.min(hist.min);
                mine.max = mine.max.max(hist.max);
            }
            mine.count += hist.count;
            mine.sum += hist.sum;
            for (&bucket, &count) in &hist.buckets {
                *mine.buckets.entry(bucket).or_insert(0) += count;
            }
        }
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders a compact human-readable report (empty string when empty).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name} = {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name} = {value:.4}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, hist) in &self.histograms {
                let s = hist.summary();
                out.push_str(&format!(
                    "  {name}: n={} mean={:.4} min={:.4} max={:.4} \
                     p50={:.4} p95={:.4} p99={:.4}\n",
                    s.count,
                    hist.mean(),
                    s.min,
                    s.max,
                    s.p50(),
                    s.p95(),
                    s.p99()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("a"), 0);
        reg.inc("a", 2);
        reg.inc("a", 3);
        assert_eq!(reg.counter("a"), 5);
    }

    #[test]
    fn gauges_set_and_add() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("g", 1.5);
        reg.set_gauge("g", 2.5);
        assert_eq!(reg.gauge("g"), Some(2.5));
        reg.add_gauge("acc", 1.0);
        reg.add_gauge("acc", 0.5);
        assert_eq!(reg.gauge("acc"), Some(1.5));
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        for v in [1.0, 1.5, 2.0, 3.9, 4.0, 0.0, -1.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 4.0);
        // [1,2): two values; [2,4): two; [4,8): one; underflow: two.
        let lookup = |e: i32| s.buckets.iter().find(|&&(b, _)| b == e).map(|&(_, c)| c);
        assert_eq!(lookup(0), Some(2));
        assert_eq!(lookup(1), Some(2));
        assert_eq!(lookup(2), Some(1));
        assert_eq!(lookup(UNDERFLOW_BUCKET), Some(2));
    }

    #[test]
    fn empty_histogram_summary_is_sane() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max), (0, 0.0, 0.0));
    }

    #[test]
    fn bucket_of_matches_log2_floor() {
        for (v, e) in [
            (1.0, 0),
            (1.99, 0),
            (2.0, 1),
            (0.5, -1),
            (0.26, -2),
            (1024.0, 10),
        ] {
            assert_eq!(bucket_of(v), e, "bucket_of({v})");
        }
        assert_eq!(bucket_of(f64::NAN), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(f64::INFINITY), UNDERFLOW_BUCKET);
    }

    #[test]
    fn merge_folds_everything() {
        let mut a = MetricsRegistry::new();
        a.inc("c", 1);
        a.add_gauge("g", 1.0);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.inc("c", 2);
        b.inc("only_b", 7);
        b.add_gauge("g", 0.5);
        b.observe("h", 4.0);
        b.observe("h2", 8.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.gauge("g"), Some(1.5));
        let h = a.histogram("h").unwrap().summary();
        assert_eq!((h.count, h.min, h.max), (2, 1.0, 4.0));
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
    }

    #[test]
    fn percentile_sorted_is_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&samples, 0.50), 50.0);
        assert_eq!(percentile_sorted(&samples, 0.95), 95.0);
        assert_eq!(percentile_sorted(&samples, 0.99), 99.0);
        assert_eq!(percentile_sorted(&samples, 0.0), 1.0);
        assert_eq!(percentile_sorted(&samples, 1.0), 100.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn summary_percentiles_walk_buckets() {
        let mut h = Histogram::default();
        // 90 values in [1,2), 10 in [64,128): p50 lands in the low bucket
        // (upper edge 2), p95/p99 in the high one (edge 128, clamped to max).
        for _ in 0..90 {
            h.record(1.5);
        }
        for _ in 0..10 {
            h.record(100.0);
        }
        let s = h.summary();
        assert_eq!(s.p50(), 2.0);
        assert_eq!(s.p95(), 100.0); // 128 clamped to max
        assert_eq!(s.p99(), 100.0);
        assert_eq!(Histogram::default().summary().p50(), 0.0);
    }

    #[test]
    fn summary_percentile_resolves_underflow_to_min() {
        let mut h = Histogram::default();
        h.record(-1.0);
        h.record(-1.0);
        h.record(3.0);
        let s = h.summary();
        assert_eq!(s.p50(), -1.0);
        assert_eq!(s.p99(), 3.0);
    }

    #[test]
    fn summary_json_carries_percentiles() {
        let mut h = Histogram::default();
        h.record(1.5);
        let json = h.summary().to_json().render();
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p95\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
    }

    #[test]
    fn render_text_lists_everything_in_name_order() {
        let mut reg = MetricsRegistry::new();
        reg.inc("z.count", 1);
        reg.inc("a.count", 2);
        reg.set_gauge("g", 0.5);
        reg.observe("h", 2.0);
        let text = reg.render_text();
        let a = text.find("a.count").unwrap();
        let z = text.find("z.count").unwrap();
        assert!(a < z, "counters must render in name order:\n{text}");
        assert!(text.contains("g = 0.5000"));
        assert!(text.contains("h: n=1"));
        assert_eq!(MetricsRegistry::new().render_text(), "");
    }
}
