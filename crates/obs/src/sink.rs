//! Structured event sinks.
//!
//! A [`Telemetry`](crate::Telemetry) collection can be drained into any
//! [`EventSink`]: keep events in memory ([`MemorySink`]), discard them
//! ([`NullSink`]) or stream them to a JSONL file ([`JsonlFileSink`]).

use crate::json::Json;
use crate::metrics::HistogramSummary;
use crate::span::SpanRecord;
use std::io::Write;

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A finished (or open) span.
    Span(SpanRecord),
    /// A counter's final value.
    Counter {
        /// Metric name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// A gauge's final value.
    Gauge {
        /// Metric name.
        name: String,
        /// Final value.
        value: f64,
    },
    /// A histogram's final summary.
    Histogram {
        /// Metric name.
        name: String,
        /// Count/sum/min/max and log buckets.
        summary: HistogramSummary,
    },
}

impl Event {
    /// The event as one JSON object (one JSONL line).
    pub fn to_json(&self) -> Json {
        match self {
            Event::Span(span) => span.to_json(),
            Event::Counter { name, value } => Json::Obj(vec![
                ("type".into(), Json::from("counter")),
                ("name".into(), Json::from(name.as_str())),
                ("value".into(), Json::from(*value)),
            ]),
            Event::Gauge { name, value } => Json::Obj(vec![
                ("type".into(), Json::from("gauge")),
                ("name".into(), Json::from(name.as_str())),
                ("value".into(), Json::from(*value)),
            ]),
            Event::Histogram { name, summary } => {
                let mut pairs = vec![
                    ("type".into(), Json::from("histogram")),
                    ("name".into(), Json::from(name.as_str())),
                ];
                if let Json::Obj(inner) = summary.to_json() {
                    pairs.extend(inner);
                }
                Json::Obj(pairs)
            }
        }
    }
}

/// A consumer of structured telemetry events.
pub trait EventSink {
    /// Accepts one event.
    fn emit(&mut self, event: &Event);
}

/// A sink that throws everything away (telemetry disabled, but call sites
/// unconditional).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

/// A sink that keeps every event in memory, in emission order.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<Event>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The events emitted so far, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// A sink that streams each event as one JSON line to a file.
///
/// Write errors are latched rather than panicking mid-pipeline; call
/// [`Self::finish`] to flush and surface them.
#[derive(Debug)]
pub struct JsonlFileSink {
    writer: std::io::BufWriter<std::fs::File>,
    error: Option<std::io::Error>,
}

impl JsonlFileSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlFileSink {
            writer: std::io::BufWriter::new(std::fs::File::create(path)?),
            error: None,
        })
    }

    /// Flushes and returns the first write error, if any occurred.
    pub fn finish(mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

impl EventSink for JsonlFileSink {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json().render();
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let mut hist = crate::metrics::Histogram::default();
        hist.record(2.0);
        hist.record(5.0);
        vec![
            Event::Counter {
                name: "engine.executions".into(),
                value: 3,
            },
            Event::Gauge {
                name: "engine.cost.cpu_s".into(),
                value: 1.5,
            },
            Event::Histogram {
                name: "inflation".into(),
                summary: hist.summary(),
            },
        ]
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut sink = MemorySink::new();
        for e in sample_events() {
            sink.emit(&e);
        }
        assert_eq!(sink.events().len(), 3);
        assert!(matches!(sink.events()[0], Event::Counter { .. }));
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        for e in sample_events() {
            sink.emit(&e);
        }
    }

    #[test]
    fn events_render_as_parseable_json() {
        for e in sample_events() {
            let line = e.to_json().render();
            let parsed = crate::json::parse(&line).expect("valid JSON");
            assert!(parsed.get("type").is_some(), "{line}");
            assert!(parsed.get("name").is_some(), "{line}");
        }
    }

    #[test]
    fn file_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("mdbs-obs-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("sink.jsonl");
        let mut sink = JsonlFileSink::create(&path).expect("create file");
        let events = sample_events();
        for e in &events {
            sink.emit(e);
        }
        sink.finish().expect("flush");
        let text = std::fs::read_to_string(&path).expect("readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in lines {
            crate::json::parse(line).expect("each line parses");
        }
    }
}
