//! Hierarchical spans.
//!
//! A span covers one stage of a pipeline (e.g. `derive.sampling`). Spans
//! nest: a span begun while another is open becomes its child. Every
//! deterministic payload lives in `fields` (virtual-time attribution goes
//! there, under keys like `virtual_s`); the *only* non-deterministic datum
//! is `wall_ms`, the wall-clock duration, which the rendering keeps in a
//! field named by [`crate::telemetry::WALL_CLOCK_FIELDS`] so determinism
//! comparisons can strip it.

use crate::json::Json;

/// Handle to an open span, returned by
/// [`Telemetry::begin_span`](crate::Telemetry::begin_span).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) usize);

impl SpanId {
    /// The id handed out by a disabled [`Telemetry`](crate::Telemetry):
    /// every operation on it is a no-op.
    pub(crate) const DISABLED: SpanId = SpanId(usize::MAX);
}

/// One finished (or still open) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Stage name, e.g. `derive.states`.
    pub name: String,
    /// Begin-order sequence number (0-based, also the record's index).
    pub seq: u64,
    /// `seq` of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Deterministic payload, in insertion order.
    pub fields: Vec<(String, Json)>,
    /// Wall-clock duration in milliseconds. **Non-deterministic** — never
    /// compare across runs; see the crate-level determinism policy.
    pub wall_ms: f64,
    /// Whether `end_span` has run (open spans render with `wall_ms = 0`).
    pub closed: bool,
}

impl SpanRecord {
    /// The span as a JSON object (one JSONL line).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::from("span")),
            ("seq".into(), Json::from(self.seq)),
            ("parent".into(), self.parent.map_or(Json::Null, Json::from)),
            ("depth".into(), Json::from(self.depth)),
            ("name".into(), Json::from(self.name.as_str())),
            ("wall_ms".into(), Json::from(self.wall_ms)),
            ("fields".into(), Json::Obj(self.fields.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_renders_every_component() {
        let span = SpanRecord {
            name: "derive.fit".into(),
            seq: 3,
            parent: Some(0),
            depth: 1,
            fields: vec![("r_squared".into(), Json::Float(0.98))],
            wall_ms: 1.25,
            closed: true,
        };
        let line = span.to_json().render();
        assert_eq!(
            line,
            "{\"type\":\"span\",\"seq\":3,\"parent\":0,\"depth\":1,\
             \"name\":\"derive.fit\",\"wall_ms\":1.25,\"fields\":{\"r_squared\":0.98}}"
        );
    }

    #[test]
    fn root_span_has_null_parent() {
        let span = SpanRecord {
            name: "derive".into(),
            seq: 0,
            parent: None,
            depth: 0,
            fields: vec![],
            wall_ms: 0.0,
            closed: false,
        };
        assert!(span.to_json().render().contains("\"parent\":null"));
    }
}
