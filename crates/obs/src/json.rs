//! A minimal hand-rolled JSON value: render and parse.
//!
//! The workspace's zero-external-dependency policy rules out `serde`; the
//! telemetry layer needs only a small, deterministic subset of JSON —
//! objects with ordered keys, arrays, strings, integers, floats, booleans
//! and null. Objects preserve insertion order so rendering is a pure
//! function of construction order (a `BTreeMap` would silently reorder
//! span fields).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the rendering of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (`Int` widens); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an integer; `None` otherwise.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a string slice; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        i64::try_from(v).map_or(Json::Float(v as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a low surrogate pair if the
    /// first unit is a high surrogate). `self.pos` sits on the first digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: must be followed by `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let value =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u hex digits"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number token");
        if !token.contains(['.', 'e', 'E']) {
            if let Ok(i) = token.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        token
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn renders_nested_structures_in_insertion_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Int(1)),
            ("a".into(), Json::Arr(vec![Json::Int(2), Json::Null])),
        ]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":[2,null]}");
    }

    #[test]
    fn parse_roundtrips_render() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("états \u{1F600}".into())),
            ("n".into(), Json::Int(7)),
            ("x".into(), Json::Float(0.25)),
            ("flag".into(), Json::Bool(false)),
            ("none".into(), Json::Null),
            ("arr".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        // Rendering is stable under a parse/render cycle.
        assert_eq!(parse(&text).unwrap().render(), text);
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        assert_eq!(
            parse("\"\\u00e9\\n\\t\\\\\\\"\\u0041\"").unwrap(),
            Json::Str("é\n\t\\\"A".into())
        );
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"abc", "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn integer_vs_float_distinction() {
        assert_eq!(parse("10").unwrap(), Json::Int(10));
        assert_eq!(parse("10.0").unwrap(), Json::Float(10.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        // Out-of-i64-range integers fall back to float.
        assert_eq!(
            parse("99999999999999999999").unwrap(),
            Json::Float(1e20_f64)
        );
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\":1,\"b\":\"s\",\"c\":2.5}").unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        assert!(v.get("missing").is_none());
        assert!(Json::Int(1).get("a").is_none());
    }
}
