//! Variance inflation factors.
//!
//! Multicollinearity — explanatory variables highly correlated among
//! themselves — makes estimated regression coefficients unstable. The paper
//! (§4.3, citing Neter et al.) detects it with the variance inflation
//! factor: regress each explanatory variable on all the others and compute
//! `VIF_j = 1 / (1 − R²_j)`. Variables with large VIF are dropped from the
//! cost model.

use crate::matrix::Matrix;
use crate::regression::OlsFit;
use crate::StatsError;

/// Conventional "large VIF" threshold (Neter et al. suggest 10).
pub const DEFAULT_VIF_THRESHOLD: f64 = 10.0;

/// Computes the variance inflation factor of every column of `columns`.
///
/// `columns` holds the candidate explanatory variables as equally long
/// slices (no intercept column — one is added internally to each auxiliary
/// regression). A column that is perfectly explained by the others gets
/// `f64::INFINITY`.
pub fn variance_inflation_factors(columns: &[Vec<f64>]) -> Result<Vec<f64>, StatsError> {
    let p = columns.len();
    if p == 0 {
        return Ok(Vec::new());
    }
    let n = columns[0].len();
    for (j, c) in columns.iter().enumerate() {
        if c.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: format!("vif: column {j} has {} rows, expected {n}", c.len()),
            });
        }
    }
    if p == 1 {
        // A single variable cannot be collinear with others.
        return Ok(vec![1.0]);
    }
    let mut vifs = Vec::with_capacity(p);
    for j in 0..p {
        // Auxiliary regression of column j on the remaining columns.
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::with_capacity(p);
            row.push(1.0);
            for (k, col) in columns.iter().enumerate() {
                if k != j {
                    row.push(col[i]);
                }
            }
            rows.push(row);
        }
        let x = Matrix::from_rows(&rows)?;
        if n < p + 1 {
            return Err(StatsError::InsufficientData {
                needed: p + 1,
                got: n,
            });
        }
        let r2 = match OlsFit::fit(&x, &columns[j], true) {
            Ok(fit) => fit.r_squared,
            // Exact linear dependence *among the other columns* makes plain
            // OLS fail, but column j may still be far from their span. A
            // tiny ridge penalty regularizes the redundancy without
            // materially changing the projection, so R² stays meaningful.
            Err(StatsError::Singular) => ridge_r_squared(&x, &columns[j])?,
            Err(e) => return Err(e),
        };
        vifs.push(if r2 >= 1.0 - 1e-12 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - r2)
        });
    }
    Ok(vifs)
}

/// R² of a ridge regression `min ‖Xβ − y‖² + λ‖β‖²` with a vanishingly
/// small λ, used only when the auxiliary design is exactly rank-deficient.
fn ridge_r_squared(x: &Matrix, y: &[f64]) -> Result<f64, StatsError> {
    let xt = x.transpose();
    let mut xtx = xt.matmul(x)?;
    let k = xtx.cols();
    let lambda = {
        let max_diag = (0..k).fold(0.0f64, |acc, i| acc.max(xtx[(i, i)].abs()));
        1e-10 * max_diag.max(1.0)
    };
    for i in 0..k {
        xtx[(i, i)] += lambda;
    }
    let xty = xt.matvec(y)?;
    let beta = xtx.solve(&xty)?;
    let fitted = x.matvec(&beta)?;
    let sse: f64 = y.iter().zip(&fitted).map(|(a, b)| (a - b) * (a - b)).sum();
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let sst: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    Ok(if sst > 0.0 {
        (1.0 - sse / sst).clamp(0.0, 1.0)
    } else {
        1.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthogonal_columns_have_vif_one() {
        // Two orthogonal (uncorrelated) columns.
        let c1: Vec<f64> = (0..20).map(|i| (i % 2) as f64).collect();
        let c2: Vec<f64> = (0..20).map(|i| ((i / 2) % 2) as f64).collect();
        let v = variance_inflation_factors(&[c1, c2]).unwrap();
        for vif in v {
            assert!((vif - 1.0).abs() < 1e-6, "{vif}");
        }
    }

    #[test]
    fn duplicated_column_has_infinite_vif() {
        let c1: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let c2 = c1.clone();
        let c3: Vec<f64> = (0..15).map(|i| ((i * 31) % 7) as f64).collect();
        let v = variance_inflation_factors(&[c1, c2, c3]).unwrap();
        assert!(v[0].is_infinite());
        assert!(v[1].is_infinite());
        assert!(v[2].is_finite());
    }

    #[test]
    fn near_collinear_columns_have_large_vif() {
        let c1: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let c2: Vec<f64> = c1
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let v = variance_inflation_factors(&[c1, c2]).unwrap();
        assert!(v[0] > DEFAULT_VIF_THRESHOLD);
        assert!(v[1] > DEFAULT_VIF_THRESHOLD);
    }

    #[test]
    fn single_column_is_trivially_one() {
        let v = variance_inflation_factors(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(v, vec![1.0]);
    }

    #[test]
    fn empty_input_ok() {
        assert!(variance_inflation_factors(&[]).unwrap().is_empty());
    }

    #[test]
    fn ragged_columns_rejected() {
        let r = variance_inflation_factors(&[vec![1.0, 2.0], vec![1.0]]);
        assert!(r.is_err());
    }
}
