//! Pearson simple correlation.
//!
//! The mixed backward/forward variable-selection procedure (paper §4.2)
//! ranks candidate explanatory variables by their *simple correlation
//! coefficient* with the response (or with the current model's residuals),
//! computed separately within each contention state and then averaged.

/// Pearson product-moment correlation between two equally long samples.
///
/// Returns `0.0` when either sample is constant (no linear relationship can
/// be measured) or when the samples are shorter than two points — this is
/// exactly the "contributes nothing" interpretation the selection procedure
/// wants for degenerate columns.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x[..n].iter().sum::<f64>() / nf;
    let my = y[..n].iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::pearson;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = x.iter().map(|v| -3.0 * v).collect();
        assert!((pearson(&x, &yn) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_yields_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn short_series_yields_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn symmetric() {
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        let y = [2.0, 1.0, 4.0, 3.0, 6.0];
        assert!((pearson(&x, &y) - pearson(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn known_value() {
        // Hand-computed example: r = 0.9 for this classic pair.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 5.0, 4.0, 5.0];
        let r = pearson(&x, &y);
        assert!((r - 0.7745966692).abs() < 1e-9, "{r}");
    }

    #[test]
    fn bounded_in_unit_interval() {
        let x = [1.0, -2.0, 3.5, 0.0, 9.0, -4.0];
        let y = [0.3, 8.0, -1.0, 2.0, 2.0, 0.0];
        let r = pearson(&x, &y);
        assert!((-1.0..=1.0).contains(&r));
    }
}
