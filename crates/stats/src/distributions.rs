//! Special functions and cumulative distribution functions.
//!
//! The regression diagnostics of the multi-states query sampling method need
//! the Normal, Student-t and Fisher F distributions (for coefficient t-tests
//! and the overall model F-test at the paper's α = 0.01 significance level).
//! All three reduce to the regularized incomplete beta function, implemented
//! here with the Lentz continued-fraction algorithm from *Numerical Recipes*.

use crate::StatsError;

/// Natural log of the Gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 for positive arguments, which is far tighter than any
/// statistical use here requires.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the Lanczos approximation.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula for small/negative arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Implemented via the continued-fraction expansion with the symmetry
/// transformation for `x > (a+1)/(a+b+2)`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> Result<f64, StatsError> {
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidArgument(format!(
            "incomplete_beta: x = {x} outside [0, 1]"
        )));
    }
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::InvalidArgument(format!(
            "incomplete_beta: a = {a}, b = {b} must be positive"
        )));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(a, b, x)? / a)
    } else {
        Ok(1.0
            - (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + b * (1.0 - x).ln() + a * x.ln()).exp()
                * beta_cf(b, a, 1.0 - x)?
                / b)
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64, StatsError> {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    // Converged enough for statistical purposes even if tolerance not met.
    Ok(h)
}

/// Error function, via Abramowitz & Stegun 7.1.26 refined with the
/// incomplete-gamma-free rational approximation (|ε| < 1.2e-7 everywhere,
/// more than enough for p-value reporting).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Student-t cumulative distribution function with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> Result<f64, StatsError> {
    if df <= 0.0 {
        return Err(StatsError::InvalidArgument(format!(
            "student_t_cdf: df = {df} must be positive"
        )));
    }
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x)?;
    Ok(if t > 0.0 { 1.0 - p } else { p })
}

/// Fisher F cumulative distribution function with `(d1, d2)` degrees of
/// freedom.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> Result<f64, StatsError> {
    if d1 <= 0.0 || d2 <= 0.0 {
        return Err(StatsError::InvalidArgument(format!(
            "f_cdf: d1 = {d1}, d2 = {d2} must be positive"
        )));
    }
    if f <= 0.0 {
        return Ok(0.0);
    }
    let x = d1 * f / (d1 * f + d2);
    incomplete_beta(d1 / 2.0, d2 / 2.0, x)
}

/// Upper-tail p-value for an F statistic: `P(F > f)`.
pub fn f_p_value(f: f64, d1: f64, d2: f64) -> Result<f64, StatsError> {
    Ok(1.0 - f_cdf(f, d1, d2)?)
}

/// Two-sided p-value for a t statistic.
pub fn t_p_value_two_sided(t: f64, df: f64) -> Result<f64, StatsError> {
    let cdf = student_t_cdf(t.abs(), df)?;
    Ok(2.0 * (1.0 - cdf))
}

/// Quantile (inverse CDF) of the Student-t distribution, by bisection on
/// the CDF. `p` must lie in (0, 1).
///
/// Bisection converges to ~1e-10 in ≤200 iterations over the bracketed
/// range; more than enough for interval construction.
pub fn student_t_quantile(p: f64, df: f64) -> Result<f64, StatsError> {
    if !(0.0 < p && p < 1.0) {
        return Err(StatsError::InvalidArgument(format!(
            "student_t_quantile: p = {p} outside (0, 1)"
        )));
    }
    if df <= 0.0 {
        return Err(StatsError::InvalidArgument(format!(
            "student_t_quantile: df = {df} must be positive"
        )));
    }
    // Bracket: the t distribution has heavy tails for small df, so expand
    // until the CDF straddles p.
    let mut lo = -1.0;
    let mut hi = 1.0;
    while student_t_cdf(lo, df)? > p {
        lo *= 2.0;
        if lo < -1e12 {
            break;
        }
    }
    while student_t_cdf(hi, df)? < p {
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df)? < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + hi.abs()) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12);
        close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetric_case() {
        // I_0.5(a, a) = 0.5 by symmetry.
        for a in [0.5, 1.0, 2.5, 7.0] {
            close(incomplete_beta(a, a, 0.5).unwrap(), 0.5, 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.37, 0.92] {
            close(incomplete_beta(1.0, 1.0, x).unwrap(), x, 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_rejects_bad_domain() {
        assert!(incomplete_beta(1.0, 1.0, -0.1).is_err());
        assert!(incomplete_beta(0.0, 1.0, 0.5).is_err());
    }

    #[test]
    fn normal_cdf_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-9);
        close(normal_cdf(1.96), 0.975, 1e-4);
        close(normal_cdf(-1.96), 0.025, 1e-4);
        close(normal_cdf(3.0), 0.99865, 1e-4);
    }

    #[test]
    fn student_t_reference_values() {
        // t(df=10): P(T < 2.228) ≈ 0.975 (classic 95% two-sided quantile).
        close(student_t_cdf(2.228, 10.0).unwrap(), 0.975, 1e-3);
        close(student_t_cdf(0.0, 5.0).unwrap(), 0.5, 1e-12);
        // Converges to the normal for large df.
        close(student_t_cdf(1.96, 1e6).unwrap(), 0.975, 1e-3);
    }

    #[test]
    fn f_reference_values() {
        // F(3, 20): 95th percentile ≈ 3.098.
        close(f_cdf(3.098, 3.0, 20.0).unwrap(), 0.95, 2e-3);
        // F(1, df) = t²(df): P(F < t²) = P(|T| < t).
        let t = 2.086; // 97.5th percentile of t(20)
        close(f_cdf(t * t, 1.0, 20.0).unwrap(), 0.95, 2e-3);
    }

    #[test]
    fn f_p_value_tail() {
        // Huge F statistic -> p-value ~ 0.
        assert!(f_p_value(1000.0, 5.0, 50.0).unwrap() < 1e-10);
        // F = 0 -> p-value 1.
        close(f_p_value(0.0, 5.0, 50.0).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn t_two_sided_pvalue() {
        let p = t_p_value_two_sided(2.228, 10.0).unwrap();
        close(p, 0.05, 2e-3);
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for df in [3.0, 10.0, 30.0] {
            for p in [0.05, 0.25, 0.5, 0.9, 0.975] {
                let q = student_t_quantile(p, df).unwrap();
                // Round-trip accuracy is limited by the incomplete-beta
                // precision near x = 1 (i.e. near the median).
                close(student_t_cdf(q, df).unwrap(), p, 1e-6);
            }
        }
        // Classic table value: t(10) 97.5th percentile ≈ 2.228.
        close(student_t_quantile(0.975, 10.0).unwrap(), 2.228, 2e-3);
        // Median is zero by symmetry.
        close(student_t_quantile(0.5, 7.0).unwrap(), 0.0, 1e-6);
    }

    #[test]
    fn t_quantile_rejects_bad_input() {
        assert!(student_t_quantile(0.0, 5.0).is_err());
        assert!(student_t_quantile(1.0, 5.0).is_err());
        assert!(student_t_quantile(0.5, -1.0).is_err());
    }

    #[test]
    fn cdfs_are_monotone() {
        let mut prev = 0.0;
        for i in 0..100 {
            let f = i as f64 * 0.2;
            let c = f_cdf(f, 4.0, 30.0).unwrap();
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }
}
