//! Descriptive statistics and histograms.
//!
//! Used to characterise workloads (average sample-query cost in paper
//! Table 5) and to reproduce Figure 10 (the frequency distribution of the
//! contention level in a clustered case).

/// Summary statistics of a one-dimensional sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of finite observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics, ignoring non-finite values.
    ///
    /// Returns `None` when no finite observations remain.
    pub fn of(values: &[f64]) -> Option<Summary> {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let median = if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            max: v[n - 1],
            median,
        })
    }
}

/// A fixed-width histogram over `[lo, hi)` with the last bin closed.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the data
    /// range (or `[lo, hi]` when given). Non-finite values are skipped.
    pub fn build(values: &[f64], bins: usize, range: Option<(f64, f64)>) -> Option<Histogram> {
        if bins == 0 {
            return None;
        }
        let finite: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        let (lo, hi) = match range {
            Some(r) => r,
            None => {
                let s = Summary::of(&finite)?;
                (s.min, s.max)
            }
        };
        if hi <= lo || !(hi - lo).is_finite() {
            // Degenerate range: everything lands in one bin.
            let mut counts = vec![0; bins];
            counts[0] = finite.len();
            return Some(Histogram { lo, hi, counts });
        }
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0usize; bins];
        for v in finite {
            if v < lo || v > hi {
                continue;
            }
            let idx = (((v - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Some(Histogram { lo, hi, counts })
    }

    /// The `(lower, upper)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Renders an ASCII bar chart, one line per bin — used by the
    /// reproduction harness to print Figure 10.
    pub fn ascii(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar_len = c * max_width / peak;
            out.push_str(&format!(
                "[{lo:8.2} – {hi:8.2}) {c:5} |{}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic example is ~2.138.
        assert!((s.std_dev - 2.13808993).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_skips_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::NEG_INFINITY]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn histogram_counts_everything_in_range() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&vals, 10, Some((0.0, 100.0))).unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), 100);
        for c in &h.counts {
            assert_eq!(*c, 10);
        }
    }

    #[test]
    fn histogram_upper_edge_closed() {
        let h = Histogram::build(&[10.0], 5, Some((0.0, 10.0))).unwrap();
        assert_eq!(h.counts[4], 1);
    }

    #[test]
    fn histogram_degenerate_range() {
        let h = Histogram::build(&[5.0, 5.0, 5.0], 4, None).unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn histogram_bin_edges_partition_range() {
        let h = Histogram::build(&[0.0, 1.0, 2.0], 4, Some((0.0, 2.0))).unwrap();
        let (lo0, _) = h.bin_edges(0);
        let (_, hi3) = h.bin_edges(3);
        assert_eq!(lo0, 0.0);
        assert!((hi3 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let h = Histogram::build(&[0.0, 0.5, 1.0, 1.5], 4, Some((0.0, 2.0))).unwrap();
        assert_eq!(h.ascii(20).lines().count(), 4);
    }
}
