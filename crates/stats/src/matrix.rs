//! Dense, row-major matrices with the factorizations needed for OLS.
//!
//! The regression problems in this workspace are small (tens of columns,
//! hundreds to thousands of rows), so a straightforward dense implementation
//! with Householder QR is both adequate and numerically robust — QR avoids
//! squaring the condition number the way normal equations would, which
//! matters because explanatory variables such as "result cardinality" and
//! "result table length" are often strongly correlated.

use crate::StatsError;

/// A dense, row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, StatsError> {
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "from_vec: {} elements for a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally sized rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, StatsError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(StatsError::DimensionMismatch {
                    context: format!("row {i} has {} elements, expected {ncols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` out into a vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != other.rows {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, StatsError> {
        if self.cols != v.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!("matvec: {}x{} * len-{}", self.rows, self.cols, v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum::<f64>())
            .collect())
    }

    /// Householder QR factorization.
    ///
    /// Requires `rows >= cols`. Returns `(q, r)` with `q` of shape
    /// `rows × cols` (thin Q, orthonormal columns) and `r` upper triangular
    /// `cols × cols` such that `self ≈ q · r`.
    pub fn qr(&self) -> Result<(Matrix, Matrix), StatsError> {
        let (m, n) = (self.rows, self.cols);
        if m < n {
            return Err(StatsError::DimensionMismatch {
                context: format!("qr: need rows >= cols, got {m}x{n}"),
            });
        }
        // Work on a copy; accumulate Householder reflectors.
        let mut r = self.clone();
        // Full Q accumulated implicitly by applying reflectors to identity.
        let mut q = Matrix::identity(m);
        let mut v = vec![0.0; m];
        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                continue; // Column already zero below (and at) the diagonal.
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut vnorm2 = 0.0;
            for i in k..m {
                v[i] = r[(i, k)];
                if i == k {
                    v[i] -= alpha;
                }
                vnorm2 += v[i] * v[i];
            }
            if vnorm2 == 0.0 {
                continue;
            }
            // Apply H = I - 2 v vᵀ / (vᵀv) to R (columns k..n).
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let scale = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[(i, j)] -= scale * v[i];
                }
            }
            // Apply H to Q from the right: Q ← Q·H (H symmetric).
            for i in 0..m {
                let mut dot = 0.0;
                for l in k..m {
                    dot += q[(i, l)] * v[l];
                }
                let scale = 2.0 * dot / vnorm2;
                for l in k..m {
                    q[(i, l)] -= scale * v[l];
                }
            }
        }
        // Thin factors.
        let mut q_thin = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                q_thin[(i, j)] = q[(i, j)];
            }
        }
        let mut r_thin = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r_thin[(i, j)] = r[(i, j)];
            }
        }
        Ok((q_thin, r_thin))
    }

    /// Solves the least-squares problem `min ‖self·x − y‖₂` via QR.
    ///
    /// Returns [`StatsError::Singular`] when a diagonal entry of `R` is
    /// (numerically) zero, i.e. the design matrix is rank-deficient.
    pub fn least_squares(&self, y: &[f64]) -> Result<Vec<f64>, StatsError> {
        if y.len() != self.rows {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "least_squares: {} observations, {} rows",
                    y.len(),
                    self.rows
                ),
            });
        }
        if self.rows < self.cols {
            return Err(StatsError::InsufficientData {
                needed: self.cols,
                got: self.rows,
            });
        }
        let (q, r) = self.qr()?;
        // x = R⁻¹ Qᵀ y  (back substitution).
        let qty = q.transpose().matvec(y)?;
        back_substitute(&r, &qty)
    }

    /// Solves the square linear system `self · x = b` via QR.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: format!("solve: matrix is {}x{}, not square", self.rows, self.cols),
            });
        }
        self.least_squares(b)
    }

    /// Inverts the upper-triangular matrix in-place semantics free manner;
    /// used for coefficient covariance `(XᵀX)⁻¹ = R⁻¹ R⁻ᵀ`.
    pub fn invert_upper_triangular(&self) -> Result<Matrix, StatsError> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "invert_upper_triangular: not square".into(),
            });
        }
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            // Solve R x = e_j.
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let x = back_substitute(self, &e)?;
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
        }
        Ok(inv)
    }

    /// Maximum absolute element; useful for tolerance checks in tests.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Solves `r · x = b` for upper-triangular `r` by back substitution.
fn back_substitute(r: &Matrix, b: &[f64]) -> Result<Vec<f64>, StatsError> {
    let n = r.cols();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in (i + 1)..n {
            sum -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        // Relative singularity threshold against the largest diagonal entry.
        let scale = (0..n).fold(0.0f64, |acc, k| acc.max(r[(k, k)].abs()));
        if d.abs() <= 1e-12 * scale.max(1.0) {
            return Err(StatsError::Singular);
        }
        x[i] = sum / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_rows(&rows).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 1, vec![1.0, 0.0, -1.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.col(0), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 0.0, 3.0]).unwrap();
        assert_eq!(a.matvec(&[1.0, 2.0]).unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn qr_reconstructs_matrix() {
        let a = Matrix::from_vec(
            4,
            3,
            vec![
                1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, //
                7.0, 8.0, 10.0, //
                2.0, -1.0, 0.5,
            ],
        )
        .unwrap();
        let (q, r) = a.qr().unwrap();
        let back = q.matmul(&r).unwrap();
        for i in 0..4 {
            for j in 0..3 {
                assert!(approx(back[(i, j)], a[(i, j)], 1e-10), "({i},{j})");
            }
        }
        // Q has orthonormal columns.
        let qtq = q.transpose().matmul(&q).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(qtq[(i, j)], expect, 1e-10));
            }
        }
        // R upper triangular.
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_exact_system() {
        // y = 2 + 3x fitted exactly.
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ])
        .unwrap();
        let y = [2.0, 5.0, 8.0, 11.0];
        let beta = x.least_squares(&y).unwrap();
        assert!(approx(beta[0], 2.0, 1e-10));
        assert!(approx(beta[1], 3.0, 1e-10));
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // Residuals of OLS must be orthogonal to design columns.
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
            vec![1.0, 4.0],
        ])
        .unwrap();
        let y = [1.1, 1.9, 3.2, 3.8, 5.1];
        let beta = x.least_squares(&y).unwrap();
        let fitted = x.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        for c in 0..2 {
            let dot: f64 = x.col(c).iter().zip(&resid).map(|(a, b)| a * b).sum();
            assert!(dot.abs() < 1e-9, "column {c} dot {dot}");
        }
    }

    #[test]
    fn least_squares_detects_rank_deficiency() {
        // Second column is an exact duplicate of the first.
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        assert_eq!(x.least_squares(&[1.0, 2.0, 3.0]), Err(StatsError::Singular));
    }

    #[test]
    fn solve_square_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!(approx(x[0], 1.0, 1e-10));
        assert!(approx(x[1], 3.0, 1e-10));
    }

    #[test]
    fn invert_upper_triangular_roundtrip() {
        let r = Matrix::from_vec(3, 3, vec![2.0, 1.0, -1.0, 0.0, 3.0, 0.5, 0.0, 0.0, 1.5]).unwrap();
        let inv = r.invert_upper_triangular().unwrap();
        let prod = r.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(prod[(i, j)], expect, 1e-10));
            }
        }
    }

    #[test]
    fn least_squares_rejects_underdetermined() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(
            x.least_squares(&[1.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }
}
