//! Ordinary least squares with the diagnostic suite used by the paper.
//!
//! Given a design matrix `X` (the caller decides which columns it contains —
//! intercept, quantitative variables, indicator-gated interaction terms, …)
//! and a response vector `y`, [`OlsFit::fit`] produces coefficient estimates
//! together with the statistics the multi-states query sampling method keys
//! on:
//!
//! * the **coefficient of total (multiple) determination** R² and its
//!   adjusted variant — "the higher, the better" (paper §3.3, footnote 5),
//! * the **standard error of estimation** SEE = √(SSE / (n − k)) — "the
//!   smaller, the better" (footnote 6, and eq. (3) in §4.2),
//! * the overall **F statistic** and its p-value, used for model validation
//!   at significance level α = 0.01 (§5),
//! * per-coefficient standard errors and t statistics, used to pick the
//!   significant system-contention parameters for probing-cost estimation
//!   (§3.3, eq. (2)).

use crate::distributions::{f_p_value, student_t_quantile, t_p_value_two_sided};
use crate::matrix::Matrix;
use crate::StatsError;

/// Convenient alias: regression routines share the crate error type.
pub type RegressionError = StatsError;

/// The total sum of squares SST, computed from the response moments
/// `Σy²`, `Σy` and `n`.
///
/// This is the **single** place that decides centered vs uncentered SST
/// for every solver in the crate (the observation-space QR of
/// [`OlsFit::fit`] and the sufficient-statistics solver of
/// [`crate::suffstats::GramAccumulator::solve`]):
///
/// * with an intercept (or a full set of per-state indicator columns,
///   which spans the constant) SST is taken **about the mean** of `y`:
///   `Σy² − (Σy)²/n`, clamped at zero against floating-point
///   cancellation;
/// * without an intercept, **about zero**: `Σy²`.
pub fn total_sum_of_squares(yty: f64, sum_y: f64, n: usize, has_intercept: bool) -> f64 {
    if has_intercept {
        (yty - sum_y * sum_y / n as f64).max(0.0)
    } else {
        yty
    }
}

/// Whole-model goodness-of-fit diagnostics shared by the QR and Gram
/// solvers (see [`fit_summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FitSummary {
    /// Coefficient of total determination R².
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Standard error of estimation √(SSE/(n−k)).
    pub see: f64,
    /// Overall F statistic.
    pub f_statistic: f64,
    /// Upper-tail p-value of the F statistic.
    pub f_p_value: f64,
}

/// Computes R², adjusted R², SEE and the overall F test from the two sums
/// of squares — the shared back half of every OLS solve in this crate.
///
/// Degenerate inputs follow the conventions the pipeline relies on:
/// `sst ≤ 0` gives R² = 1, and a perfect fit (`sse ≤ 0`) or a model with
/// no slope parameters reports `F = ∞` with p-value 0.
pub fn fit_summary(
    sse: f64,
    sst: f64,
    n: usize,
    k: usize,
    has_intercept: bool,
) -> Result<FitSummary, StatsError> {
    let df_resid = (n.saturating_sub(k)) as f64;
    // Number of slope parameters for the F test (intercept excluded).
    let df_model = if has_intercept {
        k.saturating_sub(1) as f64
    } else {
        k as f64
    };
    let r_squared = if sst > 0.0 { 1.0 - sse / sst } else { 1.0 };
    let adj_r_squared = if sst > 0.0 && df_resid > 0.0 {
        1.0 - (sse / df_resid) / (sst / (n as f64 - if has_intercept { 1.0 } else { 0.0 }))
    } else {
        r_squared
    };
    let see = if df_resid > 0.0 {
        (sse / df_resid).sqrt()
    } else {
        0.0
    };
    let (f_statistic, f_pv) = if df_model > 0.0 && df_resid > 0.0 && sse > 0.0 {
        let msr = (sst - sse).max(0.0) / df_model;
        let mse = sse / df_resid;
        let f = msr / mse;
        (f, f_p_value(f, df_model, df_resid)?)
    } else {
        (f64::INFINITY, 0.0)
    };
    Ok(FitSummary {
        r_squared,
        adj_r_squared,
        see,
        f_statistic,
        f_p_value: f_pv,
    })
}

/// Per-coefficient inference results, index-aligned with the coefficient
/// vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CoefficientInference {
    /// Standard error of each coefficient.
    pub std_errors: Vec<f64>,
    /// t statistic of each coefficient.
    pub t_statistics: Vec<f64>,
    /// Two-sided p-value of each coefficient's t statistic.
    pub t_p_values: Vec<f64>,
}

/// Per-coefficient inference shared by the QR and Gram solvers: standard
/// errors `√(σ²·diag((XᵀX)⁻¹))`, t statistics and their two-sided
/// p-values.
pub fn coefficient_inference(
    coefficients: &[f64],
    xtx_inverse: &Matrix,
    sse: f64,
    n: usize,
    k: usize,
) -> Result<CoefficientInference, StatsError> {
    let df_resid = (n.saturating_sub(k)) as f64;
    let sigma2 = if df_resid > 0.0 { sse / df_resid } else { 0.0 };
    let mut coef_std_errors = Vec::with_capacity(k);
    for i in 0..k {
        coef_std_errors.push((sigma2 * xtx_inverse[(i, i)]).max(0.0).sqrt());
    }
    let mut t_statistics = Vec::with_capacity(k);
    let mut t_p_values = Vec::with_capacity(k);
    for i in 0..k {
        let t = if coef_std_errors[i] > 0.0 {
            coefficients[i] / coef_std_errors[i]
        } else {
            f64::INFINITY
        };
        t_statistics.push(t);
        t_p_values.push(if t.is_finite() && df_resid > 0.0 {
            t_p_value_two_sided(t, df_resid)?
        } else {
            0.0
        });
    }
    Ok(CoefficientInference {
        std_errors: coef_std_errors,
        t_statistics,
        t_p_values,
    })
}

/// The result of an ordinary-least-squares fit.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Estimated coefficients, one per design-matrix column.
    pub coefficients: Vec<f64>,
    /// Fitted values `X·β`.
    pub fitted: Vec<f64>,
    /// Residuals `y − X·β`.
    pub residuals: Vec<f64>,
    /// Residual sum of squares.
    pub sse: f64,
    /// Total sum of squares (about the mean of `y`).
    pub sst: f64,
    /// Coefficient of total determination R².
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Standard error of estimation √(SSE/(n−k)).
    pub see: f64,
    /// Overall F statistic (regression mean square / residual mean square).
    pub f_statistic: f64,
    /// Upper-tail p-value of the F statistic.
    pub f_p_value: f64,
    /// Standard error of each coefficient.
    pub coef_std_errors: Vec<f64>,
    /// t statistic of each coefficient.
    pub t_statistics: Vec<f64>,
    /// Two-sided p-value of each coefficient's t statistic.
    pub t_p_values: Vec<f64>,
    /// Number of observations.
    pub n: usize,
    /// Number of fitted parameters (design-matrix columns).
    pub k: usize,
    /// `(XᵀX)⁻¹`, kept for interval construction.
    xtx_inverse: Matrix,
}

impl OlsFit {
    /// Fits `y ≈ X·β` by least squares and computes all diagnostics.
    ///
    /// `x` must have at least one more row than columns (one residual degree
    /// of freedom); rank deficiency surfaces as [`StatsError::Singular`].
    ///
    /// `has_intercept` controls how R² is computed: with an intercept (or
    /// a full set of per-state indicator columns, which spans the constant)
    /// SST is taken about the mean of `y`; without, about zero.
    pub fn fit(x: &Matrix, y: &[f64], has_intercept: bool) -> Result<OlsFit, StatsError> {
        let n = x.rows();
        let k = x.cols();
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: format!("fit: {} rows vs {} responses", n, y.len()),
            });
        }
        if n < k + 1 {
            return Err(StatsError::InsufficientData {
                needed: k + 1,
                got: n,
            });
        }
        let (q, r) = x.qr()?;
        let qty = q.transpose().matvec(y)?;
        let coefficients = back_solve(&r, &qty)?;
        let fitted = x.matvec(&coefficients)?;
        let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        let sse: f64 = residuals.iter().map(|e| e * e).sum();
        let yty: f64 = y.iter().map(|v| v * v).sum();
        let sum_y: f64 = y.iter().sum();
        let sst = total_sum_of_squares(yty, sum_y, n, has_intercept);
        let summary = fit_summary(sse, sst, n, k, has_intercept)?;

        // Coefficient covariance: σ² (XᵀX)⁻¹ = σ² R⁻¹ R⁻ᵀ.
        let r_inv = r.invert_upper_triangular()?;
        let xtx_inverse = r_inv.matmul(&r_inv.transpose())?;
        let inference = coefficient_inference(&coefficients, &xtx_inverse, sse, n, k)?;

        Ok(OlsFit {
            coefficients,
            fitted,
            residuals,
            sse,
            sst,
            r_squared: summary.r_squared,
            adj_r_squared: summary.adj_r_squared,
            see: summary.see,
            f_statistic: summary.f_statistic,
            f_p_value: summary.f_p_value,
            coef_std_errors: inference.std_errors,
            t_statistics: inference.t_statistics,
            t_p_values: inference.t_p_values,
            n,
            k,
            xtx_inverse,
        })
    }

    /// Predicts the response for one design-matrix row.
    pub fn predict(&self, row: &[f64]) -> Result<f64, StatsError> {
        if row.len() != self.coefficients.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "predict: row has {} values, model has {} coefficients",
                    row.len(),
                    self.coefficients.len()
                ),
            });
        }
        Ok(row.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum())
    }

    /// Whether the overall F-test rejects "all slopes are zero" at level
    /// `alpha` — the paper validates every derived cost model this way at
    /// α = 0.01.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.f_p_value < alpha
    }

    /// Leverage of a design row: `xᵀ (XᵀX)⁻¹ x`.
    fn leverage(&self, row: &[f64]) -> Result<f64, StatsError> {
        if row.len() != self.k {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "leverage: row has {} values, model has {} columns",
                    row.len(),
                    self.k
                ),
            });
        }
        let v = self.xtx_inverse.matvec(row)?;
        Ok(row.iter().zip(&v).map(|(a, b)| a * b).sum())
    }

    /// `(1 − alpha)` confidence interval for the *mean response* at a
    /// design row.
    pub fn confidence_interval(&self, row: &[f64], alpha: f64) -> Result<(f64, f64), StatsError> {
        self.interval(row, alpha, 0.0)
    }

    /// `(1 − alpha)` prediction interval for a *new observation* at a
    /// design row — wider than the confidence interval by the residual
    /// variance.
    pub fn prediction_interval(&self, row: &[f64], alpha: f64) -> Result<(f64, f64), StatsError> {
        self.interval(row, alpha, 1.0)
    }

    fn interval(&self, row: &[f64], alpha: f64, extra: f64) -> Result<(f64, f64), StatsError> {
        if !(0.0 < alpha && alpha < 1.0) {
            return Err(StatsError::InvalidArgument(format!(
                "interval: alpha = {alpha} outside (0, 1)"
            )));
        }
        let df = (self.n - self.k) as f64;
        if df <= 0.0 {
            return Err(StatsError::InsufficientData {
                needed: self.k + 1,
                got: self.n,
            });
        }
        let yhat = self.predict(row)?;
        let h = self.leverage(row)?.max(0.0);
        let se = self.see * (extra + h).sqrt();
        let t = student_t_quantile(1.0 - alpha / 2.0, df)?;
        Ok((yhat - t * se, yhat + t * se))
    }
}

/// Back substitution for the upper-triangular factor (shared with `Matrix`,
/// duplicated privately to keep the matrix module self-contained).
fn back_solve(r: &Matrix, b: &[f64]) -> Result<Vec<f64>, StatsError> {
    let n = r.cols();
    let scale = (0..n).fold(0.0f64, |acc, k| acc.max(r[(k, k)].abs()));
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in (i + 1)..n {
            sum -= r[(i, j)] * x[j];
        }
        if r[(i, i)].abs() <= 1e-12 * scale.max(1.0) {
            return Err(StatsError::Singular);
        }
        x[i] = sum / r[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(xs: &[f64]) -> Matrix {
        Matrix::from_rows(&xs.iter().map(|&x| vec![1.0, x]).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn perfect_linear_fit_has_r2_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = OlsFit::fit(&design(&xs), &y, true).unwrap();
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-10);
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
        assert!(fit.see < 1e-8);
    }

    #[test]
    fn r_squared_in_unit_interval() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 3.0, 6.0, 2.0, 7.0, 4.0]; // Nearly-noise response.
        let fit = OlsFit::fit(&design(&xs), &y, true).unwrap();
        assert!((0.0..=1.0).contains(&fit.r_squared), "{}", fit.r_squared);
        assert!(fit.adj_r_squared <= fit.r_squared);
    }

    #[test]
    fn known_regression_example() {
        // Classic NIST-style check: y = 1 + 2x with small symmetric noise.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [3.1, 4.9, 7.1, 8.9, 11.1, 12.9];
        let fit = OlsFit::fit(&design(&xs), &y, true).unwrap();
        assert!((fit.coefficients[0] - 1.0).abs() < 0.2);
        assert!((fit.coefficients[1] - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.999);
        assert!(fit.is_significant(0.01));
    }

    #[test]
    fn f_test_does_not_reject_pure_noise() {
        // x carries no information about y; F-test should not be significant.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [2.0, 2.1, 1.9, 2.0, 2.05, 1.95, 2.02, 1.98];
        let fit = OlsFit::fit(&design(&xs), &y, true).unwrap();
        assert!(!fit.is_significant(0.01), "p = {}", fit.f_p_value);
    }

    #[test]
    fn residuals_sum_to_zero_with_intercept() {
        let xs = [0.0, 1.0, 2.0, 3.0, 7.0];
        let y = [1.0, 4.0, 2.0, 8.0, 9.0];
        let fit = OlsFit::fit(&design(&xs), &y, true).unwrap();
        let s: f64 = fit.residuals.iter().sum();
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn multi_predictor_fit() {
        // y = 1 + 2 x1 - 3 x2, exact.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let x1 = (i % 4) as f64;
                let x2 = (i / 4) as f64;
                vec![1.0, x1, x2]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[1] - 3.0 * r[2]).collect();
        let fit = OlsFit::fit(&x, &y, true).unwrap();
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[2] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn coefficient_t_stats_flag_irrelevant_column() {
        // x2 is irrelevant noise-free constant-ish column.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let x1 = i as f64;
                let x2 = ((i * 7919) % 13) as f64 / 13.0; // Pseudo-random, uncorrelated.
                vec![1.0, x1, x2]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 5.0 + 4.0 * r[1] + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = OlsFit::fit(&x, &y, true).unwrap();
        // x1 highly significant, x2 not.
        assert!(fit.t_p_values[1] < 1e-6);
        assert!(fit.t_p_values[2] > 0.05);
    }

    #[test]
    fn predict_matches_fitted() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let x = design(&xs);
        let fit = OlsFit::fit(&x, &y, true).unwrap();
        for (i, &xi) in xs.iter().enumerate() {
            let p = fit.predict(&[1.0, xi]).unwrap();
            assert!((p - fit.fitted[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn prediction_interval_wider_than_confidence_interval() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 + 3.0 * x + if i % 2 == 0 { 0.4 } else { -0.4 })
            .collect();
        let fit = OlsFit::fit(&design(&xs), &y, true).unwrap();
        let row = [1.0, 15.0];
        let (c_lo, c_hi) = fit.confidence_interval(&row, 0.05).unwrap();
        let (p_lo, p_hi) = fit.prediction_interval(&row, 0.05).unwrap();
        let yhat = fit.predict(&row).unwrap();
        assert!(c_lo < yhat && yhat < c_hi);
        assert!(p_lo < c_lo && c_hi < p_hi, "prediction not wider");
    }

    #[test]
    fn prediction_interval_covers_most_observations() {
        // 95% interval should cover ~all of these low-noise points.
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + ((i * 31 % 7) as f64 - 3.0) * 0.1)
            .collect();
        let fit = OlsFit::fit(&design(&xs), &y, true).unwrap();
        let covered = xs
            .iter()
            .zip(&y)
            .filter(|(&x, &yv)| {
                let (lo, hi) = fit.prediction_interval(&[1.0, x], 0.05).unwrap();
                lo <= yv && yv <= hi
            })
            .count();
        assert!(covered >= 47, "covered only {covered}/50");
    }

    #[test]
    fn intervals_widen_away_from_the_data_center() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = OlsFit::fit(&design(&xs), &y, true).unwrap();
        let width = |x: f64| {
            let (lo, hi) = fit.confidence_interval(&[1.0, x], 0.05).unwrap();
            hi - lo
        };
        assert!(width(50.0) > width(9.5), "no extrapolation penalty");
    }

    #[test]
    fn interval_validates_inputs() {
        let fit = OlsFit::fit(&design(&[0.0, 1.0, 2.0, 3.0]), &[0.0, 1.0, 2.0, 3.0], true).unwrap();
        assert!(fit.prediction_interval(&[1.0], 0.05).is_err());
        assert!(fit.prediction_interval(&[1.0, 2.0], 0.0).is_err());
        assert!(fit.prediction_interval(&[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn fit_requires_spare_degree_of_freedom() {
        let x = design(&[0.0, 1.0]);
        assert!(matches!(
            OlsFit::fit(&x, &[1.0, 2.0], true),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let fit = OlsFit::fit(&design(&[0.0, 1.0, 2.0]), &[0.0, 1.0, 2.0], true).unwrap();
        assert!(fit.predict(&[1.0]).is_err());
    }
}
