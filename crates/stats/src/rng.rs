//! Deterministic pseudo-random number generation.
//!
//! The whole workspace draws its randomness from this module so that every
//! simulated cost, sampled workload, state partition and fitted coefficient
//! is a pure function of the seeds an experiment was launched with — the
//! repeatability the paper's controlled dynamic environment depends on.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through
//! **SplitMix64** so that small consecutive seeds (0, 1, 2, …) still yield
//! well-separated streams. Both algorithms are public-domain and implemented
//! here from their reference descriptions; no third-party RNG crate is used
//! anywhere in the workspace.
//!
//! ```
//! use mdbs_stats::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! ```

/// The SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion only; the long-lived stream is xoshiro256++.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a root seed and a stable stream key.
///
/// The batch-derivation machinery gives every job its own well-separated
/// RNG stream: `split_stream(root, key)` mixes the key into the SplitMix64
/// state before one mixing step, so nearby keys (and nearby roots) yield
/// statistically independent child seeds. The mapping is pure, so a batch
/// run is reproducible from `(root, key)` alone regardless of how many
/// worker threads execute it or in which order.
pub fn split_stream(root: u64, key: u64) -> u64 {
    let mut state = root ^ key.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// A seedable deterministic pseudo-random number generator (xoshiro256++).
///
/// Cloning an `Rng` clones its position in the stream, so a clone replays
/// exactly the draws the original would have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range` — accepts half-open (`lo..hi`) and
    /// inclusive (`lo..=hi`) ranges over `u64`, `u32`, `usize` and `f64`.
    ///
    /// Panics on an empty range, mirroring the standard-library convention
    /// for slicing: asking for a draw from nothing is a caller bug.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded(slice.len() as u64) as usize])
        }
    }

    /// A standard-normal-derived draw `mean + std_dev · Z` via the
    /// Box–Muller transform (moved here from `mdbs-sim::util` so every
    /// crate shares one Gaussian source).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // u1 in (0, 1] guards against ln(0); u2 in [0, 1).
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// A uniform integer in `[0, span)` via widening multiply.
    ///
    /// The multiply-shift map has a selection bias below `2⁻⁴⁰` for every
    /// span this workspace uses (all ≪ 2²⁴), which is far beneath the
    /// statistical tolerances of the tests — and, unlike rejection
    /// sampling, consumes exactly one `next_u64` per draw, keeping stream
    /// positions easy to reason about.
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Ranges [`Rng::gen_range`] can draw from.
pub trait SampleRange {
    /// The element type produced by the draw.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1; // Cannot overflow for the
                                                 // widths used here (< u64::MAX).
                lo + rng.bounded(span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u64, u32, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_stream_is_pure_and_separating() {
        assert_eq!(split_stream(7, 3), split_stream(7, 3));
        // Nearby keys and nearby roots must not collide.
        let mut seen = std::collections::BTreeSet::new();
        for root in 0..8u64 {
            for key in 0..64u64 {
                assert!(seen.insert(split_stream(root, key)));
            }
        }
        // Child streams differ from the root's own stream.
        let mut direct = Rng::seed_from_u64(7);
        let mut child = Rng::seed_from_u64(split_stream(7, 0));
        assert_ne!(direct.next_u64(), child.next_u64());
    }

    /// Known-answer test: the first outputs for seed 0 must never change —
    /// they pin the SplitMix64 seeding and the xoshiro256++ step together.
    /// (Values cross-checked against an independent reimplementation of
    /// the reference algorithms.)
    #[test]
    fn seed_zero_known_answers() {
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
    }

    #[test]
    fn seed_one_known_answer_differs() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(rng.next_u64(), 14971601782005023387);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_replays_the_stream() {
        let mut a = Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.gen_f64(), b.gen_f64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(10u64..15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
    }

    #[test]
    fn inclusive_int_range_reaches_both_ends() {
        let mut rng = Rng::seed_from_u64(5);
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..500 {
            let v = rng.gen_range(0usize..=3);
            assert!(v <= 3);
            lo_hit |= v == 0;
            hi_hit |= v == 3;
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = Rng::seed_from_u64(6);
        assert_eq!(rng.gen_range(7u64..=7), 7);
        assert_eq!(rng.gen_range(0.5f64..=0.5), 0.5);
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v), "{v}");
            let w = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn float_range_spans_its_interval() {
        let mut rng = Rng::seed_from_u64(8);
        let draws: Vec<f64> = (0..2_000).map(|_| rng.gen_range(0.0f64..100.0)).collect();
        let lo = draws.iter().cloned().fold(f64::MAX, f64::min);
        let hi = draws.iter().cloned().fold(f64::MIN, f64::max);
        assert!(lo < 2.0 && hi > 98.0, "range unexercised: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Rng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        let mut rng = Rng::seed_from_u64(10);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn normal_has_correct_moments() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        // Roughly symmetric tails.
        let above = draws.iter().filter(|&&x| x > 3.0).count() as f64 / n as f64;
        assert!((above - 0.5).abs() < 0.02, "P(X > mean) = {above}");
    }

    #[test]
    fn normal_is_finite_even_at_extreme_u1() {
        let mut rng = Rng::seed_from_u64(12);
        for _ in 0..100_000 {
            assert!(rng.normal(0.0, 1.0).is_finite());
        }
    }

    #[test]
    fn shuffle_permutes_without_losing_elements() {
        let mut rng = Rng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "shuffle was identity");
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = Rng::seed_from_u64(14);
        let mut empty: [u32; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [7u32];
        rng.shuffle(&mut one);
        assert_eq!(one, [7]);
    }

    #[test]
    fn choose_is_uniformish_and_total() {
        let mut rng = Rng::seed_from_u64(15);
        let pool = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[*rng.choose(&pool).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "counts {counts:?}");
        }
        let empty: [usize; 0] = [];
        assert_eq!(rng.choose(&empty), None);
    }

    #[test]
    fn distinct_seeds_produce_distinct_streams() {
        let first: Vec<u64> = (0..64)
            .map(|seed| Rng::seed_from_u64(seed).next_u64())
            .collect();
        let unique: std::collections::BTreeSet<&u64> = first.iter().collect();
        assert_eq!(unique.len(), first.len());
    }
}
