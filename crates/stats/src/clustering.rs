//! Agglomerative hierarchical clustering (centroid linkage).
//!
//! The ICMA contention-state algorithm (paper §3.3, "Determining states via
//! data clustering") groups sampled probing-query costs with "an
//! agglomerative hierarchical algorithm … place each data object in its own
//! cluster initially and then gradually merge clusters", always merging the
//! pair of clusters Cᵢ and Cⱼ whose "distance between the centroids" is
//! smallest.
//!
//! Probing costs are one-dimensional, and in one dimension centroid-linkage
//! agglomeration only ever merges *adjacent* clusters in sorted order. The
//! implementation exploits that: sort once, then repeatedly merge the
//! adjacent pair with minimal centroid distance — O(n log n + k·n) instead
//! of the naive O(n³).

/// A cluster of one-dimensional points.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster1D {
    /// Smallest member.
    pub min: f64,
    /// Largest member.
    pub max: f64,
    /// Number of members.
    pub count: usize,
    /// Mean of the members (the centroid).
    pub centroid: f64,
}

impl Cluster1D {
    fn singleton(v: f64) -> Self {
        Cluster1D {
            min: v,
            max: v,
            count: 1,
            centroid: v,
        }
    }

    fn merge(&self, other: &Cluster1D) -> Cluster1D {
        let count = self.count + other.count;
        Cluster1D {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            count,
            centroid: (self.centroid * self.count as f64 + other.centroid * other.count as f64)
                / count as f64,
        }
    }
}

/// Clusters `values` into exactly `k` clusters (or fewer when there are not
/// enough distinct points) by centroid-linkage agglomeration.
///
/// The result is sorted ascending by centroid and the clusters' `[min, max]`
/// extents are pairwise disjoint. An empty input yields an empty vector.
pub fn cluster_1d(values: &[f64], k: usize) -> Vec<Cluster1D> {
    if values.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let mut clusters: Vec<Cluster1D> = sorted.into_iter().map(Cluster1D::singleton).collect();
    while clusters.len() > k {
        // Find the adjacent pair with minimal centroid distance.
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for i in 0..clusters.len() - 1 {
            let d = clusters[i + 1].centroid - clusters[i].centroid;
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        let merged = clusters[best].merge(&clusters[best + 1]);
        clusters[best] = merged;
        clusters.remove(best + 1);
    }
    clusters
}

/// The full agglomeration path: clusterings for every level `1..=k_max`.
///
/// Index `i` of the result holds the clustering with `i + 1` clusters
/// (when that many are attainable). ICMA walks this path from coarse to
/// fine while checking model-fit improvements.
pub fn cluster_path_1d(values: &[f64], k_max: usize) -> Vec<Vec<Cluster1D>> {
    (1..=k_max).map(|k| cluster_1d(values, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(cluster_1d(&[], 3).is_empty());
        assert!(cluster_1d(&[1.0, 2.0], 0).is_empty());
        let single = cluster_1d(&[5.0], 3);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].centroid, 5.0);
    }

    #[test]
    fn two_well_separated_groups() {
        let mut vals = vec![1.0, 1.1, 0.9, 1.05];
        vals.extend([10.0, 10.2, 9.8]);
        let cl = cluster_1d(&vals, 2);
        assert_eq!(cl.len(), 2);
        assert_eq!(cl[0].count, 4);
        assert_eq!(cl[1].count, 3);
        assert!(cl[0].max < cl[1].min);
        assert!((cl[0].centroid - 1.0125).abs() < 1e-9);
        assert!((cl[1].centroid - 10.0).abs() < 1e-9);
    }

    #[test]
    fn three_groups_recovered() {
        let vals = [0.0, 0.1, 5.0, 5.1, 5.2, 20.0, 20.3];
        let cl = cluster_1d(&vals, 3);
        assert_eq!(cl.len(), 3);
        assert_eq!(
            cl.iter().map(|c| c.count).collect::<Vec<_>>(),
            vec![2, 3, 2]
        );
    }

    #[test]
    fn extents_are_disjoint_and_sorted() {
        let vals: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
        for k in 1..8 {
            let cl = cluster_1d(&vals, k);
            assert_eq!(cl.len(), k.min(vals.len()));
            for w in cl.windows(2) {
                assert!(w[0].max < w[1].min, "clusters overlap: {w:?}");
                assert!(w[0].centroid <= w[1].centroid);
            }
        }
    }

    #[test]
    fn counts_sum_to_input_size() {
        let vals: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let cl = cluster_1d(&vals, 5);
        assert_eq!(cl.iter().map(|c| c.count).sum::<usize>(), 57);
    }

    #[test]
    fn k_larger_than_n_gives_singletons() {
        let cl = cluster_1d(&[3.0, 1.0, 2.0], 10);
        assert_eq!(cl.len(), 3);
        assert_eq!(cl[0].centroid, 1.0);
        assert_eq!(cl[2].centroid, 3.0);
    }

    #[test]
    fn path_has_one_clustering_per_level() {
        let vals = [1.0, 2.0, 8.0, 9.0, 20.0];
        let path = cluster_path_1d(&vals, 4);
        assert_eq!(path.len(), 4);
        for (i, c) in path.iter().enumerate() {
            assert_eq!(c.len(), (i + 1).min(5));
        }
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let cl = cluster_1d(&[1.0, f64::NAN, 2.0, f64::INFINITY], 2);
        assert_eq!(cl.iter().map(|c| c.count).sum::<usize>(), 2);
    }
}
