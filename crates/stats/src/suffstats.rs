//! Sufficient-statistics regression: incremental Gram-matrix OLS.
//!
//! Every fit the multi-states pipeline performs — a partition proposal in
//! IUPMA/ICMA, a merge in phase 2, a candidate add/drop in variable
//! selection, an incremental maintenance refit — is ordinary least squares
//! over some subset (rows) and sub-selection (columns) of one fixed data
//! set. All of those fits are determined by the **sufficient statistics**
//!
//! ```text
//! XᵀX (k×k),  Xᵀy (k),  Σy²,  Σy,  n
//! ```
//!
//! which a [`GramAccumulator`] maintains under rank-1 row updates
//! ([`GramAccumulator::add_row`] / [`GramAccumulator::remove_row`]), block
//! merges (`+`, [`GramAccumulator::merge`]) and column-subset extraction
//! ([`GramAccumulator::subset`]). Once accumulated, a candidate fit is an
//! O(k³) solve ([`GramAccumulator::solve`]) **independent of n** — the
//! observations are never rescanned.
//!
//! [`GramPrefix`] layers prefix sums on top: accumulate rows once in
//! probing-cost order and any *contiguous* observation range — which is
//! exactly what a contention-state partition induces — comes back as a
//! prefix difference in O(k²) ([`GramPrefix::range`]).
//!
//! ## Numerical policy
//!
//! The normal-equations matrix XᵀX has the squared condition number of X,
//! so the solver is defensive: it attempts a Cholesky factorization first
//! (fast, and trustworthy while the pivots stay above a relative threshold
//! of the largest diagonal entry) and falls back to Householder QR on the
//! k×k Gram matrix when any pivot degenerates. Exact rank deficiency
//! surfaces as [`StatsError::Singular`] from either route, matching the
//! observation-space QR solver in [`crate::regression::OlsFit`] so callers'
//! skip/propagate logic is engine-agnostic.

use crate::matrix::Matrix;
use crate::regression::{coefficient_inference, fit_summary, total_sum_of_squares};
use crate::StatsError;

/// Relative pivot tolerance of the Cholesky factorization: a pivot below
/// `CHOLESKY_RELATIVE_TOLERANCE × max diagonal entry` is treated as rank
/// deficiency and triggers the QR fallback. The value mirrors the
/// `1e-12` relative threshold of the QR back substitution but is two
/// orders looser because forming XᵀX squares the condition number.
pub const CHOLESKY_RELATIVE_TOLERANCE: f64 = 1e-10;

/// Sufficient statistics of a least-squares problem: `XᵀX`, `Xᵀy`, `Σy²`,
/// `Σy` and the row count `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct GramAccumulator {
    k: usize,
    n: usize,
    /// Row-major `k × k`, kept fully (symmetry is maintained, not exploited,
    /// so subsetting and merging stay simple index arithmetic).
    xtx: Vec<f64>,
    xty: Vec<f64>,
    yty: f64,
    sum_y: f64,
}

impl GramAccumulator {
    /// An empty accumulator for design rows of width `k`.
    pub fn new(k: usize) -> GramAccumulator {
        GramAccumulator {
            k,
            n: 0,
            xtx: vec![0.0; k * k],
            xty: vec![0.0; k],
            yty: 0.0,
            sum_y: 0.0,
        }
    }

    /// Rebuilds an accumulator from previously exported parts (the catalog
    /// persistence path). Dimensions must agree: `xtx` is `k²` long, `xty`
    /// is `k` long.
    pub fn from_parts(
        k: usize,
        n: usize,
        xtx: Vec<f64>,
        xty: Vec<f64>,
        yty: f64,
        sum_y: f64,
    ) -> Result<GramAccumulator, StatsError> {
        if xtx.len() != k * k || xty.len() != k {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "from_parts: k = {k} but xtx has {} and xty has {} entries",
                    xtx.len(),
                    xty.len()
                ),
            });
        }
        Ok(GramAccumulator {
            k,
            n,
            xtx,
            xty,
            yty,
            sum_y,
        })
    }

    /// Design-row width `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of accumulated rows `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `XᵀX` entries, row-major `k × k`.
    pub fn xtx(&self) -> &[f64] {
        &self.xtx
    }

    /// The `Xᵀy` entries.
    pub fn xty(&self) -> &[f64] {
        &self.xty
    }

    /// `Σy²` over the accumulated rows.
    pub fn yty(&self) -> f64 {
        self.yty
    }

    /// `Σy` over the accumulated rows.
    pub fn sum_y(&self) -> f64 {
        self.sum_y
    }

    /// True when `XᵀX` is bit-exactly symmetric (`xtx[i][j]` and
    /// `xtx[j][i]` share the same bit pattern for every pair). Row updates
    /// keep this invariant by construction; only [`Self::from_parts`] can
    /// introduce an asymmetric matrix.
    pub fn xtx_is_symmetric(&self) -> bool {
        let k = self.k;
        for i in 0..k {
            for j in (i + 1)..k {
                if self.xtx[i * k + j].to_bits() != self.xtx[j * k + i].to_bits() {
                    return false;
                }
            }
        }
        true
    }

    /// Serializes the sufficient statistics to a compact byte string:
    /// little-endian `u32 k`, `u64 n`, a flags byte, the `XᵀX` entries,
    /// the `Xᵀy` entries, `Σy²` and `Σy`, every float in the
    /// variable-length encoding of [`push_f64_compact`] (bit-exact round
    /// trip; integer-valued sums over cardinality variables dominate Gram
    /// matrices and shrink to a few bytes each).
    ///
    /// When `XᵀX` is bit-exactly symmetric — which row updates guarantee —
    /// only the lower triangle is written (`k(k+1)/2` floats instead of
    /// `k²`); a flags bit records which layout was used so
    /// [`Self::from_bytes`] can mirror it back.
    pub fn to_bytes(&self) -> Vec<u8> {
        let k = self.k;
        let symmetric = self.xtx_is_symmetric();
        let xtx_len = if symmetric { k * (k + 1) / 2 } else { k * k };
        let mut out = Vec::with_capacity(4 + 8 + 1 + 9 * (xtx_len + k + 2));
        out.extend_from_slice(&(k as u32).to_le_bytes());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.push(u8::from(symmetric));
        if symmetric {
            for i in 0..k {
                for j in 0..=i {
                    push_f64_compact(&mut out, self.xtx[i * k + j]);
                }
            }
        } else {
            for v in &self.xtx {
                push_f64_compact(&mut out, *v);
            }
        }
        for v in &self.xty {
            push_f64_compact(&mut out, *v);
        }
        push_f64_compact(&mut out, self.yty);
        push_f64_compact(&mut out, self.sum_y);
        out
    }

    /// Rebuilds an accumulator from [`Self::to_bytes`] output. The slice
    /// must contain exactly one encoded accumulator; trailing bytes are an
    /// error (the container formats are length-prefixed, so a correct
    /// reader always hands over an exact slice).
    pub fn from_bytes(bytes: &[u8]) -> Result<GramAccumulator, StatsError> {
        let mut cur = ByteCursor::new(bytes);
        let k = cur.u32()? as usize;
        let n = cur.u64()? as usize;
        let flags = cur.u8()?;
        if flags > 1 {
            return Err(StatsError::InvalidArgument(
                "gram bytes: unknown flags".into(),
            ));
        }
        let symmetric = flags == 1;
        let mut xtx = vec![0.0; k * k];
        if symmetric {
            for i in 0..k {
                for j in 0..=i {
                    let v = cur.f64()?;
                    xtx[i * k + j] = v;
                    xtx[j * k + i] = v;
                }
            }
        } else {
            for slot in xtx.iter_mut() {
                *slot = cur.f64()?;
            }
        }
        let mut xty = vec![0.0; k];
        for slot in xty.iter_mut() {
            *slot = cur.f64()?;
        }
        let yty = cur.f64()?;
        let sum_y = cur.f64()?;
        cur.finish()?;
        GramAccumulator::from_parts(k, n, xtx, xty, yty, sum_y)
    }

    fn check_row(&self, row: &[f64]) -> Result<(), StatsError> {
        if row.len() != self.k {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "gram row has {} values, accumulator holds {}",
                    row.len(),
                    self.k
                ),
            });
        }
        Ok(())
    }

    /// Folds one observation `(row, y)` in: a rank-1 update of `XᵀX` plus
    /// the response moments.
    pub fn add_row(&mut self, row: &[f64], y: f64) -> Result<(), StatsError> {
        self.check_row(row)?;
        for (i, &ri) in row.iter().enumerate() {
            let base = i * self.k;
            for (j, &rj) in row.iter().enumerate() {
                self.xtx[base + j] += ri * rj;
            }
            self.xty[i] += ri * y;
        }
        self.yty += y * y;
        self.sum_y += y;
        self.n += 1;
        Ok(())
    }

    /// Removes one previously added observation (a rank-1 downdate). The
    /// caller asserts the row was in fact accumulated; removing from an
    /// empty accumulator is an error.
    pub fn remove_row(&mut self, row: &[f64], y: f64) -> Result<(), StatsError> {
        self.check_row(row)?;
        if self.n == 0 {
            return Err(StatsError::InvalidArgument(
                "remove_row on an empty accumulator".into(),
            ));
        }
        for (i, &ri) in row.iter().enumerate() {
            let base = i * self.k;
            for (j, &rj) in row.iter().enumerate() {
                self.xtx[base + j] -= ri * rj;
            }
            self.xty[i] -= ri * y;
        }
        self.yty -= y * y;
        self.sum_y -= y;
        self.n -= 1;
        Ok(())
    }

    /// Merges another accumulator of the same width into this one
    /// (statistics are additive over disjoint row sets).
    pub fn merge(&mut self, other: &GramAccumulator) -> Result<(), StatsError> {
        if other.k != self.k {
            return Err(StatsError::DimensionMismatch {
                context: format!("merge: width {} vs {}", other.k, self.k),
            });
        }
        for (a, b) in self.xtx.iter_mut().zip(&other.xtx) {
            *a += b;
        }
        for (a, b) in self.xty.iter_mut().zip(&other.xty) {
            *a += b;
        }
        self.yty += other.yty;
        self.sum_y += other.sum_y;
        self.n += other.n;
        Ok(())
    }

    /// Merges another accumulator whose local column `j` occupies global
    /// column `placement[j]` of this (wider) accumulator — the assembly
    /// step that pools per-state blocks into one qualitative-model Gram
    /// matrix. `placement` must be as wide as `other` and stay inside
    /// `self`'s bounds.
    pub fn merge_placed(
        &mut self,
        other: &GramAccumulator,
        placement: &[usize],
    ) -> Result<(), StatsError> {
        if placement.len() != other.k {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "merge_placed: {} placements for width {}",
                    placement.len(),
                    other.k
                ),
            });
        }
        if placement.iter().any(|&c| c >= self.k) {
            return Err(StatsError::InvalidArgument(format!(
                "merge_placed: placement exceeds width {}",
                self.k
            )));
        }
        for (i, &gi) in placement.iter().enumerate() {
            for (j, &gj) in placement.iter().enumerate() {
                self.xtx[gi * self.k + gj] += other.xtx[i * other.k + j];
            }
            self.xty[gi] += other.xty[i];
        }
        self.yty += other.yty;
        self.sum_y += other.sum_y;
        self.n += other.n;
        Ok(())
    }

    /// Extracts the sufficient statistics of the column subset `cols` — the
    /// statistics of the same rows with the other columns dropped, which is
    /// exactly what a variable-selection candidate fit needs.
    pub fn subset(&self, cols: &[usize]) -> Result<GramAccumulator, StatsError> {
        if cols.iter().any(|&c| c >= self.k) {
            return Err(StatsError::InvalidArgument(format!(
                "subset: column out of range 0..{}",
                self.k
            )));
        }
        let k = cols.len();
        let mut xtx = vec![0.0; k * k];
        let mut xty = vec![0.0; k];
        for (i, &ci) in cols.iter().enumerate() {
            for (j, &cj) in cols.iter().enumerate() {
                xtx[i * k + j] = self.xtx[ci * self.k + cj];
            }
            xty[i] = self.xty[ci];
        }
        Ok(GramAccumulator {
            k,
            n: self.n,
            xtx,
            xty,
            yty: self.yty,
            sum_y: self.sum_y,
        })
    }

    /// Subtracts another accumulator (for prefix differences); `other` must
    /// describe a subset of this one's rows.
    fn difference(&self, other: &GramAccumulator) -> Result<GramAccumulator, StatsError> {
        if other.k != self.k {
            return Err(StatsError::DimensionMismatch {
                context: format!("difference: width {} vs {}", other.k, self.k),
            });
        }
        if other.n > self.n {
            return Err(StatsError::InvalidArgument(
                "difference: subtrahend has more rows".into(),
            ));
        }
        Ok(GramAccumulator {
            k: self.k,
            n: self.n - other.n,
            xtx: self
                .xtx
                .iter()
                .zip(&other.xtx)
                .map(|(a, b)| a - b)
                .collect(),
            xty: self
                .xty
                .iter()
                .zip(&other.xty)
                .map(|(a, b)| a - b)
                .collect(),
            yty: self.yty - other.yty,
            sum_y: self.sum_y - other.sum_y,
        })
    }

    /// Solves the accumulated least-squares problem and computes the full
    /// [`crate::regression::OlsFit`]-style diagnostic suite from the
    /// sufficient statistics alone.
    ///
    /// Requires one spare degree of freedom (`n ≥ k + 1`), like the
    /// observation-space solver. Rank deficiency surfaces as
    /// [`StatsError::Singular`] whether Cholesky or the QR fallback
    /// detected it.
    pub fn solve(&self, has_intercept: bool) -> Result<GramFit, StatsError> {
        let (k, n) = (self.k, self.n);
        if n < k + 1 {
            return Err(StatsError::InsufficientData {
                needed: k + 1,
                got: n,
            });
        }
        let (coefficients, xtx_inverse, cholesky) = match cholesky_factor(k, &self.xtx) {
            Ok(l) => {
                let beta = cholesky_solve(k, &l, &self.xty);
                let inv = cholesky_inverse(k, &l);
                (beta, inv, true)
            }
            Err(StatsError::Singular) => {
                // QR on the k×k Gram matrix: β = R⁻¹Qᵀ(Xᵀy) and
                // (XᵀX)⁻¹ = R⁻¹Qᵀ. Still-singular systems error here.
                let a = Matrix::from_vec(k, k, self.xtx.clone())?;
                let (q, r) = a.qr()?;
                let inv = r.invert_upper_triangular()?.matmul(&q.transpose())?;
                let beta = inv.matvec(&self.xty)?;
                (beta, inv, false)
            }
            Err(e) => return Err(e),
        };

        // SSE = yᵀy − 2βᵀ(Xᵀy) + βᵀ(XᵀX)β, clamped: the quadratic form is
        // exact algebra but loses absolute precision ~ε·yᵀy, which can dip
        // below zero for near-perfect fits.
        let bxy: f64 = coefficients.iter().zip(&self.xty).map(|(b, v)| b * v).sum();
        let mut bxxb = 0.0;
        for i in 0..k {
            let row = &self.xtx[i * k..(i + 1) * k];
            let xi: f64 = row.iter().zip(&coefficients).map(|(a, b)| a * b).sum();
            bxxb += coefficients[i] * xi;
        }
        let sse = (self.yty - 2.0 * bxy + bxxb).max(0.0);
        let sst = total_sum_of_squares(self.yty, self.sum_y, n, has_intercept);
        let summary = fit_summary(sse, sst, n, k, has_intercept)?;
        let inference = coefficient_inference(&coefficients, &xtx_inverse, sse, n, k)?;

        Ok(GramFit {
            coefficients,
            sse,
            sst,
            r_squared: summary.r_squared,
            adj_r_squared: summary.adj_r_squared,
            see: summary.see,
            f_statistic: summary.f_statistic,
            f_p_value: summary.f_p_value,
            coef_std_errors: inference.std_errors,
            t_statistics: inference.t_statistics,
            t_p_values: inference.t_p_values,
            n,
            k,
            solved_by_cholesky: cholesky,
        })
    }
}

impl std::ops::AddAssign<&GramAccumulator> for GramAccumulator {
    /// Block merge; panics on width mismatch (use [`GramAccumulator::merge`]
    /// for a fallible version).
    fn add_assign(&mut self, other: &GramAccumulator) {
        self.merge(other).expect("accumulator widths must match");
    }
}

impl std::ops::Add<&GramAccumulator> for GramAccumulator {
    type Output = GramAccumulator;

    /// Block merge; panics on width mismatch (use [`GramAccumulator::merge`]
    /// for a fallible version).
    fn add(mut self, other: &GramAccumulator) -> GramAccumulator {
        self += other;
        self
    }
}

/// The result of a sufficient-statistics OLS solve: the same diagnostic
/// suite as [`crate::regression::OlsFit`], minus the per-observation fitted
/// values and residuals (which cannot be reconstructed from the statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct GramFit {
    /// Estimated coefficients, one per design column.
    pub coefficients: Vec<f64>,
    /// Residual sum of squares.
    pub sse: f64,
    /// Total sum of squares (see [`total_sum_of_squares`]).
    pub sst: f64,
    /// Coefficient of total determination R².
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Standard error of estimation √(SSE/(n−k)).
    pub see: f64,
    /// Overall F statistic.
    pub f_statistic: f64,
    /// Upper-tail p-value of the F statistic.
    pub f_p_value: f64,
    /// Standard error of each coefficient.
    pub coef_std_errors: Vec<f64>,
    /// t statistic of each coefficient.
    pub t_statistics: Vec<f64>,
    /// Two-sided p-value of each coefficient's t statistic.
    pub t_p_values: Vec<f64>,
    /// Number of observations.
    pub n: usize,
    /// Number of fitted parameters.
    pub k: usize,
    /// Whether the Cholesky route succeeded (`false` → QR fallback ran).
    pub solved_by_cholesky: bool,
}

impl GramFit {
    /// Predicts the response for one design row.
    pub fn predict(&self, row: &[f64]) -> Result<f64, StatsError> {
        if row.len() != self.coefficients.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "predict: row has {} values, model has {} coefficients",
                    row.len(),
                    self.coefficients.len()
                ),
            });
        }
        Ok(row.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum())
    }
}

/// Prefix sums of [`GramAccumulator`]s over an ordered row sequence.
///
/// Accumulate rows once (in probing-cost order, for the contention-state
/// use case) and the statistics of any contiguous range `[a, b)` come back
/// as a prefix difference in O(k²) — no rescan of the observations.
#[derive(Debug, Clone)]
pub struct GramPrefix {
    /// `prefix[i]` holds rows `0..i`; `prefix.len() == rows pushed + 1`.
    prefix: Vec<GramAccumulator>,
}

impl GramPrefix {
    /// An empty prefix structure for rows of width `k`.
    pub fn new(k: usize) -> GramPrefix {
        GramPrefix {
            prefix: vec![GramAccumulator::new(k)],
        }
    }

    /// Design-row width `k`.
    pub fn k(&self) -> usize {
        self.prefix[0].k
    }

    /// Number of rows accumulated.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the next row in sequence.
    pub fn push(&mut self, row: &[f64], y: f64) -> Result<(), StatsError> {
        let mut next = self.prefix.last().expect("prefix is never empty").clone();
        next.add_row(row, y)?;
        self.prefix.push(next);
        Ok(())
    }

    /// Sufficient statistics of the contiguous row range `[a, b)`.
    pub fn range(&self, a: usize, b: usize) -> Result<GramAccumulator, StatsError> {
        if a > b || b > self.len() {
            return Err(StatsError::InvalidArgument(format!(
                "range [{a}, {b}) outside 0..{}",
                self.len()
            )));
        }
        self.prefix[b].difference(&self.prefix[a])
    }

    /// Statistics of the full row sequence (`range(0, len)` without the
    /// subtraction).
    pub fn total(&self) -> &GramAccumulator {
        self.prefix.last().expect("prefix is never empty")
    }
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix given row-major; returns the lower factor or
/// [`StatsError::Singular`] when a pivot falls below the relative
/// tolerance (see [`CHOLESKY_RELATIVE_TOLERANCE`]).
fn cholesky_factor(k: usize, a: &[f64]) -> Result<Vec<f64>, StatsError> {
    let max_diag = (0..k).fold(0.0f64, |m, i| m.max(a[i * k + i].abs()));
    let tol = CHOLESKY_RELATIVE_TOLERANCE * max_diag.max(1.0);
    let mut l = vec![0.0; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = a[i * k + j];
            for t in 0..j {
                sum -= l[i * k + t] * l[j * k + t];
            }
            if i == j {
                if sum <= tol {
                    return Err(StatsError::Singular);
                }
                l[i * k + i] = sum.sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }
    Ok(l)
}

/// Solves `L·Lᵀ·x = b` by forward then backward substitution.
fn cholesky_solve(k: usize, l: &[f64], b: &[f64]) -> Vec<f64> {
    let mut z = vec![0.0; k];
    for i in 0..k {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[i * k + j] * z[j];
        }
        z[i] = sum / l[i * k + i];
    }
    let mut x = vec![0.0; k];
    for i in (0..k).rev() {
        let mut sum = z[i];
        for j in (i + 1)..k {
            sum -= l[j * k + i] * x[j];
        }
        x[i] = sum / l[i * k + i];
    }
    x
}

/// `(L·Lᵀ)⁻¹` column by column (unit right-hand sides).
fn cholesky_inverse(k: usize, l: &[f64]) -> Matrix {
    let mut inv = Matrix::zeros(k, k);
    for j in 0..k {
        let mut e = vec![0.0; k];
        e[j] = 1.0;
        let col = cholesky_solve(k, l, &e);
        for i in 0..k {
            inv[(i, j)] = col[i];
        }
    }
    inv
}

/// Appends `v` in the compact variable-length float encoding: one length
/// byte `L` (0..=8), then the `L` significant high-order bytes of the
/// value's little-endian IEEE-754 representation — low-order zero bytes
/// are dropped. Counts and integer-valued sums (ubiquitous in Gram
/// matrices over cardinality variables) shrink to a few bytes, zero to a
/// single byte; a full-precision fraction costs one extra byte. The bit
/// pattern round-trips exactly, and the encoding is canonical: for every
/// value there is exactly one byte string, so encoders are byte-stable.
pub fn push_f64_compact(out: &mut Vec<u8>, v: f64) {
    let b = v.to_le_bytes();
    let z = b.iter().take_while(|&&x| x == 0).count();
    out.push((8 - z) as u8);
    out.extend_from_slice(&b[z..]);
}

/// Reads one [`push_f64_compact`] value from the front of `bytes`,
/// returning the value and the number of bytes consumed. `None` on
/// truncation, a length byte above 8, or a non-canonical encoding (a
/// dropped-zero length whose first payload byte is still zero).
pub fn read_f64_compact(bytes: &[u8]) -> Option<(f64, usize)> {
    let (&len, rest) = bytes.split_first()?;
    let len = len as usize;
    if len > 8 || rest.len() < len || (len > 0 && rest[0] == 0) {
        return None;
    }
    let mut b = [0u8; 8];
    b[8 - len..].copy_from_slice(&rest[..len]);
    Some((f64::from_le_bytes(b), 1 + len))
}

/// Bounds-checked little-endian reader over an exact byte slice; feeds
/// [`GramAccumulator::from_bytes`].
struct ByteCursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> ByteCursor<'a> {
    fn new(bytes: &'a [u8]) -> ByteCursor<'a> {
        ByteCursor { bytes, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StatsError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StatsError::InvalidArgument("gram bytes: truncated".into()))?;
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StatsError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StatsError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StatsError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, StatsError> {
        let (v, used) = read_f64_compact(&self.bytes[self.off..])
            .ok_or_else(|| StatsError::InvalidArgument("gram bytes: bad compact float".into()))?;
        self.off += used;
        Ok(v)
    }

    fn finish(&self) -> Result<(), StatsError> {
        if self.off != self.bytes.len() {
            return Err(StatsError::InvalidArgument(
                "gram bytes: trailing bytes".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::OlsFit;

    /// Mixed absolute/relative closeness at the parity tolerance.
    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    /// Noisy multi-column design (noise keeps SSE well away from the
    /// catastrophic-cancellation regime of perfect fits).
    fn noisy_design(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x1 = (i % 17) as f64 * 1.5;
                let x2 = ((i * 7) % 23) as f64 - 11.0;
                vec![1.0, x1, x2]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 2.0 + 3.0 * r[1] - 0.8 * r[2] + ((i * 31 % 13) as f64 - 6.0) * 0.3)
            .collect();
        (rows, y)
    }

    fn accumulate(rows: &[Vec<f64>], y: &[f64]) -> GramAccumulator {
        let mut acc = GramAccumulator::new(rows[0].len());
        for (r, &v) in rows.iter().zip(y) {
            acc.add_row(r, v).unwrap();
        }
        acc
    }

    #[test]
    fn gram_solve_matches_ols_fit() {
        let (rows, y) = noisy_design(120);
        let acc = accumulate(&rows, &y);
        let gram = acc.solve(true).unwrap();
        let ols = OlsFit::fit(&Matrix::from_rows(&rows).unwrap(), &y, true).unwrap();
        assert!(gram.solved_by_cholesky);
        for (a, b) in gram.coefficients.iter().zip(&ols.coefficients) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
        assert!(close(gram.sse, ols.sse), "{} vs {}", gram.sse, ols.sse);
        assert!(close(gram.sst, ols.sst));
        assert!(close(gram.r_squared, ols.r_squared));
        assert!(close(gram.adj_r_squared, ols.adj_r_squared));
        assert!(close(gram.see, ols.see));
        assert!(close(gram.f_statistic, ols.f_statistic));
        assert!(close(gram.f_p_value, ols.f_p_value));
        for (a, b) in gram.coef_std_errors.iter().zip(&ols.coef_std_errors) {
            assert!(close(*a, *b), "std err {a} vs {b}");
        }
        for (a, b) in gram.t_statistics.iter().zip(&ols.t_statistics) {
            assert!(close(*a, *b), "t {a} vs {b}");
        }
        assert_eq!((gram.n, gram.k), (ols.n, ols.k));
    }

    #[test]
    fn no_intercept_solve_matches_ols_fit() {
        let (rows, y) = noisy_design(60);
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|r| r[1..].to_vec()).collect();
        let acc = accumulate(&rows, &y);
        let gram = acc.solve(false).unwrap();
        let ols = OlsFit::fit(&Matrix::from_rows(&rows).unwrap(), &y, false).unwrap();
        assert!(close(gram.sst, ols.sst));
        assert!(close(gram.r_squared, ols.r_squared));
        assert!(close(gram.adj_r_squared, ols.adj_r_squared));
    }

    #[test]
    fn remove_row_is_the_inverse_of_add_row() {
        let (rows, y) = noisy_design(50);
        let mut acc = accumulate(&rows, &y);
        let reference = accumulate(&rows[..49], &y[..49]);
        acc.remove_row(&rows[49], y[49]).unwrap();
        assert_eq!(acc.n(), 49);
        let a = acc.solve(true).unwrap();
        let b = reference.solve(true).unwrap();
        for (x, y) in a.coefficients.iter().zip(&b.coefficients) {
            assert!(close(*x, *y));
        }
        assert!(close(a.see, b.see));
    }

    #[test]
    fn merge_equals_joint_accumulation() {
        let (rows, y) = noisy_design(80);
        let left = accumulate(&rows[..30], &y[..30]);
        let right = accumulate(&rows[30..], &y[30..]);
        let merged = left.clone() + &right;
        let joint = accumulate(&rows, &y);
        assert_eq!(merged.n(), joint.n());
        let a = merged.solve(true).unwrap();
        let b = joint.solve(true).unwrap();
        for (x, y) in a.coefficients.iter().zip(&b.coefficients) {
            assert!(close(*x, *y));
        }
        assert!(close(a.r_squared, b.r_squared));
    }

    #[test]
    fn subset_matches_reduced_design() {
        let (rows, y) = noisy_design(70);
        let acc = accumulate(&rows, &y);
        let reduced_rows: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0], r[2]]).collect();
        let direct = accumulate(&reduced_rows, &y);
        let sub = acc.subset(&[0, 2]).unwrap();
        let a = sub.solve(true).unwrap();
        let b = direct.solve(true).unwrap();
        for (x, y) in a.coefficients.iter().zip(&b.coefficients) {
            assert!(close(*x, *y));
        }
        assert!(close(a.see, b.see));
        assert!(acc.subset(&[0, 9]).is_err());
    }

    #[test]
    fn prefix_range_matches_direct_accumulation() {
        let (rows, y) = noisy_design(90);
        let mut prefix = GramPrefix::new(3);
        for (r, &v) in rows.iter().zip(&y) {
            prefix.push(r, v).unwrap();
        }
        assert_eq!(prefix.len(), 90);
        let mid = prefix.range(20, 75).unwrap();
        let direct = accumulate(&rows[20..75], &y[20..75]);
        assert_eq!(mid.n(), direct.n());
        let a = mid.solve(true).unwrap();
        let b = direct.solve(true).unwrap();
        for (x, y) in a.coefficients.iter().zip(&b.coefficients) {
            assert!(close(*x, *y));
        }
        assert!(prefix.range(10, 5).is_err());
        assert!(prefix.range(0, 91).is_err());
        assert_eq!(prefix.total().n(), 90);
    }

    #[test]
    fn merge_placed_assembles_block_diagonal() {
        // Two per-state blocks of width 2 placed into a 4-wide general
        // design: state 0 → columns {0,1}, state 1 → columns {2,3}.
        let (rows, y) = noisy_design(60);
        let z: Vec<Vec<f64>> = rows.iter().map(|r| vec![1.0, r[1]]).collect();
        let b0 = accumulate(&z[..30], &y[..30]);
        let b1 = accumulate(&z[30..], &y[30..]);
        let mut pooled = GramAccumulator::new(4);
        pooled.merge_placed(&b0, &[0, 1]).unwrap();
        pooled.merge_placed(&b1, &[2, 3]).unwrap();
        // Reference: rows built the design-matrix way.
        let mut direct = GramAccumulator::new(4);
        for (i, (zr, &v)) in z.iter().zip(&y).enumerate() {
            let row = if i < 30 {
                vec![zr[0], zr[1], 0.0, 0.0]
            } else {
                vec![0.0, 0.0, zr[0], zr[1]]
            };
            direct.add_row(&row, v).unwrap();
        }
        // xtx/xty accumulate per-block in the same order either way and
        // match bitwise; yty/sum_y sum in a different grouping, so compare
        // those at tolerance.
        assert_eq!(pooled.n(), direct.n());
        assert_eq!(pooled.xtx(), direct.xtx());
        assert_eq!(pooled.xty(), direct.xty());
        assert!(close(pooled.yty(), direct.yty()));
        assert!(close(pooled.sum_y(), direct.sum_y()));
        assert!(pooled.merge_placed(&b0, &[0]).is_err());
        assert!(pooled.merge_placed(&b0, &[0, 7]).is_err());
    }

    #[test]
    fn exactly_singular_gram_errors() {
        // Second column is 2× the first: rank 1.
        let mut acc = GramAccumulator::new(2);
        for i in 0..10 {
            let x = i as f64;
            acc.add_row(&[x, 2.0 * x], x * 3.0).unwrap();
        }
        assert_eq!(acc.solve(true).unwrap_err(), StatsError::Singular);
    }

    #[test]
    fn qr_fallback_handles_ill_conditioned_systems() {
        // A Gram matrix whose Schur-complement pivot (1e-5 relative 1e-11
        // of the max diagonal) sits below the Cholesky tolerance (1e-10
        // relative) but above the QR back-substitution threshold (1e-12
        // relative), so the solve must succeed via the fallback.
        let acc = GramAccumulator::from_parts(
            2,
            10,
            vec![1.0e6, 1.0e3, 1.0e3, 1.0 + 1.0e-5],
            vec![2.0e6, 2.01e3],
            4.1e6,
            4.0e3,
        )
        .unwrap();
        let fit = acc.solve(true).unwrap();
        assert!(!fit.solved_by_cholesky, "expected the QR fallback");
        assert!(fit.coefficients.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn insufficient_rows_error_matches_ols() {
        let mut acc = GramAccumulator::new(3);
        acc.add_row(&[1.0, 2.0, 3.0], 1.0).unwrap();
        assert_eq!(
            acc.solve(true).unwrap_err(),
            StatsError::InsufficientData { needed: 4, got: 1 }
        );
    }

    #[test]
    fn dimension_errors_are_reported() {
        let mut acc = GramAccumulator::new(2);
        assert!(acc.add_row(&[1.0], 1.0).is_err());
        assert!(acc.remove_row(&[1.0, 2.0], 1.0).is_err()); // empty
        let other = GramAccumulator::new(3);
        assert!(acc.merge(&other).is_err());
        assert!(GramAccumulator::from_parts(2, 1, vec![0.0; 3], vec![0.0; 2], 0.0, 0.0).is_err());
    }

    #[test]
    fn from_parts_roundtrip() {
        let (rows, y) = noisy_design(25);
        let acc = accumulate(&rows, &y);
        let back = GramAccumulator::from_parts(
            acc.k(),
            acc.n(),
            acc.xtx().to_vec(),
            acc.xty().to_vec(),
            acc.yty(),
            acc.sum_y(),
        )
        .unwrap();
        assert_eq!(back, acc);
    }

    #[test]
    fn predict_checks_width() {
        let (rows, y) = noisy_design(30);
        let fit = accumulate(&rows, &y).solve(true).unwrap();
        assert!(fit.predict(&[1.0, 2.0, 3.0]).is_ok());
        assert!(fit.predict(&[1.0]).is_err());
    }

    #[test]
    fn byte_codec_roundtrip_bit_exact() {
        let (rows, y) = noisy_design(40);
        let acc = accumulate(&rows, &y);
        assert!(acc.xtx_is_symmetric());
        let bytes = acc.to_bytes();
        // Symmetric: only the lower triangle is stored, each float at
        // most 9 bytes in the compact encoding — and encoding twice is
        // byte-stable.
        let k = acc.k();
        assert!(bytes.len() <= 4 + 8 + 1 + 9 * (k * (k + 1) / 2 + k + 2));
        assert_eq!(bytes, acc.to_bytes());
        let back = GramAccumulator::from_bytes(&bytes).unwrap();
        assert_eq!(back, acc);
        for (a, b) in back.xtx().iter().zip(acc.xtx()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn byte_codec_asymmetric_fallback() {
        // from_parts can carry an asymmetric XᵀX; the codec must keep it.
        let mut xtx = vec![1.0, 2.0, 3.0, 4.0];
        xtx[1] = 2.5; // xtx[0][1] != xtx[1][0]
        let acc = GramAccumulator::from_parts(2, 3, xtx, vec![5.0, 6.0], 7.0, 8.0).unwrap();
        assert!(!acc.xtx_is_symmetric());
        let bytes = acc.to_bytes();
        // Full k² floats, small integer-ish values: 2-3 bytes each.
        assert!(bytes.len() <= 4 + 8 + 1 + 9 * (4 + 2 + 2));
        assert_eq!(GramAccumulator::from_bytes(&bytes).unwrap(), acc);
    }

    #[test]
    fn byte_codec_rejects_malformed() {
        let (rows, y) = noisy_design(10);
        let bytes = accumulate(&rows, &y).to_bytes();
        // Truncation at every boundary fails cleanly.
        for cut in [0, 3, 4, 12, 13, bytes.len() - 1] {
            assert!(GramAccumulator::from_bytes(&bytes[..cut]).is_err(), "{cut}");
        }
        // Trailing garbage is rejected, not ignored.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(GramAccumulator::from_bytes(&padded).is_err());
        // An unknown flags byte is rejected.
        let mut bad = bytes;
        bad[12] = 9;
        assert!(GramAccumulator::from_bytes(&bad).is_err());
    }

    #[test]
    fn compact_float_encoding_is_canonical_and_minimal() {
        let mut buf = Vec::new();
        push_f64_compact(&mut buf, 0.0);
        assert_eq!(buf, [0]);
        buf.clear();
        // An integer-valued double drops its low-order zero bytes.
        push_f64_compact(&mut buf, 167.0);
        assert_eq!(buf.len(), 4, "{buf:?}");
        assert_eq!(read_f64_compact(&buf), Some((167.0, 4)));
        // Non-canonical: a leading payload zero that should be dropped.
        assert_eq!(read_f64_compact(&[2, 0, 64]), None);
        // Length byte above 8, truncated payload, empty input.
        assert_eq!(read_f64_compact(&[9, 1, 2, 3, 4, 5, 6, 7, 8, 9]), None);
        assert_eq!(read_f64_compact(&[3, 1]), None);
        assert_eq!(read_f64_compact(&[]), None);
    }

    #[test]
    fn byte_codec_preserves_special_floats() {
        let acc = GramAccumulator::from_parts(
            1,
            2,
            vec![f64::INFINITY],
            vec![-0.0],
            f64::MIN_POSITIVE,
            -f64::NAN,
        )
        .unwrap();
        let back = GramAccumulator::from_bytes(&acc.to_bytes()).unwrap();
        assert_eq!(back.xtx()[0], f64::INFINITY);
        assert_eq!(back.xty()[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.yty(), f64::MIN_POSITIVE);
        assert_eq!(back.sum_y().to_bits(), (-f64::NAN).to_bits());
    }
}
