//! # mdbs-stats
//!
//! Numerical and statistical substrate for the `mdbs-qcost` workspace.
//!
//! The multi-states query sampling method of Zhu, Sun & Motheramgari
//! (ICDE 2000) is built on classical multiple linear regression with
//! qualitative (indicator) variables, model-diagnostic statistics
//! (R², standard error of estimation, F-tests, variance inflation factors,
//! simple correlation coefficients) and agglomerative hierarchical
//! clustering. This crate provides all of those from first principles:
//!
//! * [`matrix`] — a small dense matrix type with Householder QR
//!   factorization and least-squares / linear-system solvers,
//! * [`regression`] — ordinary least squares with the full diagnostic suite,
//! * [`suffstats`] — incremental sufficient-statistics (Gram-matrix)
//!   regression: rank-1 updates, block merges, column subsets, prefix sums
//!   and an O(k³) solver that reproduces the full diagnostic suite,
//! * [`distributions`] — Γ/β special functions and Normal, Student-t and
//!   F cumulative distribution functions,
//! * [`correlation`] — Pearson simple correlation,
//! * [`vif`] — variance inflation factors for multicollinearity screening,
//! * [`clustering`] — agglomerative hierarchical clustering with centroid
//!   linkage (used by the ICMA contention-state algorithm),
//! * [`describe`] — descriptive statistics and histograms,
//! * [`rng`] — the workspace's single deterministic pseudo-random number
//!   generator (xoshiro256++ seeded via SplitMix64).
//!
//! The crate is dependency-free (std only) and fully deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clustering;
pub mod correlation;
pub mod describe;
pub mod distributions;
pub mod matrix;
pub mod regression;
pub mod rng;
pub mod suffstats;
pub mod vif;

pub use clustering::{cluster_1d, Cluster1D};
pub use correlation::pearson;
pub use describe::Summary;
pub use matrix::Matrix;
pub use regression::{OlsFit, RegressionError};
pub use rng::Rng;
pub use suffstats::{GramAccumulator, GramFit, GramPrefix};

/// Error type shared by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Matrix dimensions do not conform for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the conflict.
        context: String,
    },
    /// The system is singular or numerically rank-deficient.
    Singular,
    /// Not enough observations/degrees of freedom for the computation.
    InsufficientData {
        /// Observations required.
        needed: usize,
        /// Observations available.
        got: usize,
    },
    /// An input argument is outside its valid domain.
    InvalidArgument(String),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            StatsError::Singular => write!(f, "matrix is singular or rank-deficient"),
            StatsError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
            StatsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}
