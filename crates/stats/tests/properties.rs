//! Property-based tests for the statistical substrate.

use mdbs_stats::clustering::cluster_1d;
use mdbs_stats::correlation::pearson;
use mdbs_stats::describe::{Histogram, Summary};
use mdbs_stats::distributions::{f_cdf, normal_cdf, student_t_cdf};
use mdbs_stats::matrix::Matrix;
use mdbs_stats::regression::OlsFit;
use proptest::prelude::*;

/// A well-conditioned random design matrix: intercept plus `k-1` bounded
/// random columns over `n` rows.
fn design_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (4usize..20, 2usize..4).prop_flat_map(|(n, k)| {
        let rows = proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, k - 1), n);
        let y = proptest::collection::vec(-100.0..100.0f64, n);
        (rows, y).prop_map(|(rows, y)| {
            let full: Vec<Vec<f64>> = rows
                .into_iter()
                .map(|mut r| {
                    let mut row = vec![1.0];
                    row.append(&mut r);
                    row
                })
                .collect();
            (full, y)
        })
    })
}

proptest! {
    #[test]
    fn qr_reconstructs_and_q_is_orthonormal((rows, _y) in design_strategy()) {
        let a = Matrix::from_rows(&rows).unwrap();
        let (q, r) = a.qr().unwrap();
        let back = q.matmul(&r).unwrap();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let diff = (back[(i, j)] - a[(i, j)]).abs();
                prop_assert!(diff <= 1e-8 * (1.0 + a[(i, j)].abs()), "({i},{j}): {diff}");
            }
        }
        let qtq = q.transpose().matmul(&q).unwrap();
        for i in 0..a.cols() {
            for j in 0..a.cols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((qtq[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn ols_residuals_orthogonal_and_r2_bounded((rows, y) in design_strategy()) {
        let x = Matrix::from_rows(&rows).unwrap();
        // Skip degenerate (rank-deficient) random draws.
        let Ok(fit) = OlsFit::fit(&x, &y, true) else { return Ok(()); };
        prop_assert!(fit.r_squared <= 1.0 + 1e-9, "R² = {}", fit.r_squared);
        // With an intercept, residuals sum to ~0 and are orthogonal to
        // every design column.
        let resid_sum: f64 = fit.residuals.iter().sum();
        let scale: f64 = y.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!(resid_sum.abs() <= 1e-6 * scale);
        for c in 0..x.cols() {
            let dot: f64 = x.col(c).iter().zip(&fit.residuals).map(|(a, b)| a * b).sum();
            prop_assert!(dot.abs() <= 1e-5 * scale * 100.0, "col {c}: {dot}");
        }
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        x in proptest::collection::vec(-1e6..1e6f64, 2..40),
        y in proptest::collection::vec(-1e6..1e6f64, 2..40),
    ) {
        let r = pearson(&x, &y);
        prop_assert!((-1.0..=1.0).contains(&r));
        let n = x.len().min(y.len());
        let r2 = pearson(&y[..n], &x[..n]);
        prop_assert!((r - r2).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_scale_invariant(
        x in proptest::collection::vec(-100.0..100.0f64, 3..30),
        a in 0.1..10.0f64,
        b in -50.0..50.0f64,
    ) {
        let y: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        let r = pearson(&x, &y);
        // Perfectly linear with positive slope -> r = 1 (unless x constant).
        if x.iter().any(|v| (v - x[0]).abs() > 1e-9) {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    }

    #[test]
    fn clusters_partition_data(
        values in proptest::collection::vec(0.0..1000.0f64, 1..120),
        k in 1usize..8,
    ) {
        let clusters = cluster_1d(&values, k);
        prop_assert_eq!(clusters.len(), k.min(values.len()).max(1).min(clusters.len().max(1)));
        // Total membership preserved.
        let total: usize = clusters.iter().map(|c| c.count).sum();
        prop_assert_eq!(total, values.len());
        // Extents ordered and disjoint; centroid inside its extent.
        for c in &clusters {
            prop_assert!(c.min <= c.centroid && c.centroid <= c.max);
        }
        for w in clusters.windows(2) {
            prop_assert!(w[0].max <= w[1].min);
        }
    }

    #[test]
    fn histogram_counts_in_range_values(
        values in proptest::collection::vec(0.0..100.0f64, 1..200),
        bins in 1usize..30,
    ) {
        let h = Histogram::build(&values, bins, Some((0.0, 100.0))).unwrap();
        prop_assert_eq!(h.counts.len(), bins);
        prop_assert_eq!(h.counts.iter().sum::<usize>(), values.len());
    }

    #[test]
    fn summary_bounds_hold(values in proptest::collection::vec(-1e4..1e4f64, 1..100)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn cdfs_are_monotone_and_bounded(
        a in 0.5..30.0f64,
        b in 0.5..30.0f64,
        x1 in 0.0..10.0f64,
        x2 in 0.0..10.0f64,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = f_cdf(lo, a, b).unwrap();
        let f_hi = f_cdf(hi, a, b).unwrap();
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!(f_hi + 1e-12 >= f_lo);
        let t = student_t_cdf(lo, a).unwrap();
        prop_assert!((0.0..=1.0).contains(&t));
        let n = normal_cdf(lo);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    #[test]
    fn t_cdf_symmetry(t in 0.0..8.0f64, df in 1.0..40.0f64) {
        let upper = student_t_cdf(t, df).unwrap();
        let lower = student_t_cdf(-t, df).unwrap();
        prop_assert!((upper + lower - 1.0).abs() < 1e-9);
    }
}
