//! Property-style tests for the statistical substrate, run as seeded
//! deterministic case sweeps: each test draws a few hundred random cases
//! from the in-tree [`Rng`] with a fixed seed, so the exact inputs are
//! reproduced on every run while still exercising the input space broadly.

use mdbs_stats::clustering::cluster_1d;
use mdbs_stats::correlation::pearson;
use mdbs_stats::describe::{Histogram, Summary};
use mdbs_stats::distributions::{f_cdf, normal_cdf, student_t_cdf};
use mdbs_stats::matrix::Matrix;
use mdbs_stats::regression::OlsFit;
use mdbs_stats::rng::Rng;

/// A well-conditioned random design matrix: intercept plus `k-1` bounded
/// random columns over `n` rows, with a matching response vector.
fn random_design(rng: &mut Rng) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = rng.gen_range(4usize..20);
    let k = rng.gen_range(2usize..4);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let mut row = vec![1.0];
            row.extend((1..k).map(|_| rng.gen_range(-100.0f64..100.0)));
            row
        })
        .collect();
    let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0f64..100.0)).collect();
    (rows, y)
}

fn random_vec(rng: &mut Rng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn qr_reconstructs_and_q_is_orthonormal() {
    let mut rng = Rng::seed_from_u64(0x51AB);
    for _ in 0..200 {
        let (rows, _y) = random_design(&mut rng);
        let a = Matrix::from_rows(&rows).unwrap();
        let (q, r) = a.qr().unwrap();
        let back = q.matmul(&r).unwrap();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let diff = (back[(i, j)] - a[(i, j)]).abs();
                assert!(diff <= 1e-8 * (1.0 + a[(i, j)].abs()), "({i},{j}): {diff}");
            }
        }
        let qtq = q.transpose().matmul(&q).unwrap();
        for i in 0..a.cols() {
            for j in 0..a.cols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }
}

#[test]
fn ols_residuals_orthogonal_and_r2_bounded() {
    let mut rng = Rng::seed_from_u64(0x0152);
    for _ in 0..200 {
        let (rows, y) = random_design(&mut rng);
        let x = Matrix::from_rows(&rows).unwrap();
        // Skip degenerate (rank-deficient) random draws.
        let Ok(fit) = OlsFit::fit(&x, &y, true) else {
            continue;
        };
        assert!(fit.r_squared <= 1.0 + 1e-9, "R² = {}", fit.r_squared);
        // With an intercept, residuals sum to ~0 and are orthogonal to
        // every design column.
        let resid_sum: f64 = fit.residuals.iter().sum();
        let scale: f64 = y.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        assert!(resid_sum.abs() <= 1e-6 * scale);
        for c in 0..x.cols() {
            let dot: f64 = x
                .col(c)
                .iter()
                .zip(&fit.residuals)
                .map(|(a, b)| a * b)
                .sum();
            assert!(dot.abs() <= 1e-5 * scale * 100.0, "col {c}: {dot}");
        }
    }
}

#[test]
fn pearson_is_bounded_and_symmetric() {
    let mut rng = Rng::seed_from_u64(0x9EA5);
    for _ in 0..300 {
        let (nx, ny) = (rng.gen_range(2usize..40), rng.gen_range(2usize..40));
        let x = random_vec(&mut rng, nx, -1e6, 1e6);
        let y = random_vec(&mut rng, ny, -1e6, 1e6);
        let r = pearson(&x, &y);
        assert!((-1.0..=1.0).contains(&r));
        let n = x.len().min(y.len());
        let r2 = pearson(&y[..n], &x[..n]);
        assert!((r - r2).abs() < 1e-12);
    }
}

#[test]
fn pearson_is_scale_invariant() {
    let mut rng = Rng::seed_from_u64(0x5CA1);
    for _ in 0..300 {
        let n = rng.gen_range(3usize..30);
        let x = random_vec(&mut rng, n, -100.0, 100.0);
        let a = rng.gen_range(0.1f64..10.0);
        let b = rng.gen_range(-50.0f64..50.0);
        let y: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        let r = pearson(&x, &y);
        // Perfectly linear with positive slope -> r = 1 (unless x constant).
        if x.iter().any(|v| (v - x[0]).abs() > 1e-9) {
            assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    }
}

#[test]
fn clusters_partition_data() {
    let mut rng = Rng::seed_from_u64(0xC105);
    for _ in 0..150 {
        let n = rng.gen_range(1usize..120);
        let values = random_vec(&mut rng, n, 0.0, 1000.0);
        let k = rng.gen_range(1usize..8);
        let clusters = cluster_1d(&values, k);
        assert_eq!(
            clusters.len(),
            k.min(values.len()).max(1).min(clusters.len().max(1))
        );
        // Total membership preserved.
        let total: usize = clusters.iter().map(|c| c.count).sum();
        assert_eq!(total, values.len());
        // Extents ordered and disjoint; centroid inside its extent.
        for c in &clusters {
            assert!(c.min <= c.centroid && c.centroid <= c.max);
        }
        for w in clusters.windows(2) {
            assert!(w[0].max <= w[1].min);
        }
    }
}

#[test]
fn histogram_counts_in_range_values() {
    let mut rng = Rng::seed_from_u64(0x4157);
    for _ in 0..200 {
        let n = rng.gen_range(1usize..200);
        let values = random_vec(&mut rng, n, 0.0, 100.0);
        let bins = rng.gen_range(1usize..30);
        let h = Histogram::build(&values, bins, Some((0.0, 100.0))).unwrap();
        assert_eq!(h.counts.len(), bins);
        assert_eq!(h.counts.iter().sum::<usize>(), values.len());
    }
}

#[test]
fn summary_bounds_hold() {
    let mut rng = Rng::seed_from_u64(0x50B5);
    for _ in 0..300 {
        let n = rng.gen_range(1usize..100);
        let values = random_vec(&mut rng, n, -1e4, 1e4);
        let s = Summary::of(&values).unwrap();
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.std_dev >= 0.0);
    }
}

#[test]
fn cdfs_are_monotone_and_bounded() {
    let mut rng = Rng::seed_from_u64(0xCDF5);
    for _ in 0..500 {
        let a = rng.gen_range(0.5f64..30.0);
        let b = rng.gen_range(0.5f64..30.0);
        let x1 = rng.gen_range(0.0f64..10.0);
        let x2 = rng.gen_range(0.0f64..10.0);
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = f_cdf(lo, a, b).unwrap();
        let f_hi = f_cdf(hi, a, b).unwrap();
        assert!((0.0..=1.0).contains(&f_lo));
        assert!(f_hi + 1e-12 >= f_lo);
        let t = student_t_cdf(lo, a).unwrap();
        assert!((0.0..=1.0).contains(&t));
        let n = normal_cdf(lo);
        assert!((0.0..=1.0).contains(&n));
    }
}

#[test]
fn t_cdf_symmetry() {
    let mut rng = Rng::seed_from_u64(0x7CDF);
    for _ in 0..500 {
        let t = rng.gen_range(0.0f64..8.0);
        let df = rng.gen_range(1.0f64..40.0);
        let upper = student_t_cdf(t, df).unwrap();
        let lower = student_t_cdf(-t, df).unwrap();
        assert!((upper + lower - 1.0).abs() < 1e-9);
    }
}
