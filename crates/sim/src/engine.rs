//! Ground-truth query costing for the simulated local DBS.
//!
//! For every physical plan the engine computes an idle-machine resource
//! demand `(init, io seconds, cpu seconds)` from textbook cost formulas,
//! then lets the [`Machine`](crate::machine::Machine) stretch it under the
//! current contention. The derived regression models in `mdbs-core` never
//! see these formulas — they must *recover* the behaviour from observed
//! (query, cost) samples, which is the whole point of the paper.

use crate::access::{choose_join, choose_unary, JoinAccess, UnaryAccess};
use crate::catalog::TableDef;
use crate::query::{JoinQuery, UnaryQuery};
use crate::selectivity::{join_sizes, unary_sizes, JoinSizes, UnarySizes};
use crate::util::pages;
use crate::vendor::VendorProfile;

/// An idle-machine resource demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceDemand {
    /// Startup cost in seconds.
    pub init_s: f64,
    /// I/O service time in seconds.
    pub io_s: f64,
    /// CPU service time in seconds.
    pub cpu_s: f64,
}

impl ResourceDemand {
    /// Total idle-machine seconds.
    pub fn total(&self) -> f64 {
        self.init_s + self.io_s + self.cpu_s
    }
}

/// Costs a unary query; also returns the chosen access method and the
/// derived cardinalities.
pub fn cost_unary(
    table: &TableDef,
    q: &UnaryQuery,
    vendor: &VendorProfile,
) -> (ResourceDemand, UnaryAccess, UnarySizes) {
    let sizes = unary_sizes(table, q);
    let access = choose_unary(table, q, vendor);
    let n_preds = q.predicates.len().max(1) as f64;
    let table_pages = pages(sizes.operand, table.tuple_len(), vendor.page_size);
    let mut demand = match access {
        UnaryAccess::SeqScan => ResourceDemand {
            init_s: vendor.init_s,
            io_s: table_pages as f64 * vendor.seq_page_io_s,
            cpu_s: sizes.operand as f64 * vendor.pred_cpu_s * n_preds
                + sizes.result as f64 * vendor.out_cpu_s,
        },
        UnaryAccess::ClusteredIndexScan => {
            // Fetch only the index-qualified fraction, sequentially laid out.
            let fetched_pages = pages(sizes.intermediate, table.tuple_len(), vendor.page_size);
            ResourceDemand {
                init_s: vendor.init_s,
                io_s: (vendor.index_height as f64 * vendor.rand_page_io_s)
                    + fetched_pages as f64 * vendor.seq_page_io_s,
                cpu_s: sizes.intermediate as f64 * vendor.pred_cpu_s * n_preds
                    + sizes.result as f64 * vendor.out_cpu_s,
            }
        }
        UnaryAccess::NonClusteredIndexScan => {
            // Unclustered: roughly one random page per qualifying tuple,
            // capped by the table size.
            let fetched_pages = sizes.intermediate.min(table_pages.max(1) * 4);
            ResourceDemand {
                init_s: vendor.init_s,
                io_s: (vendor.index_height as f64 + fetched_pages as f64) * vendor.rand_page_io_s,
                cpu_s: sizes.intermediate as f64 * vendor.pred_cpu_s * n_preds
                    + sizes.result as f64 * vendor.out_cpu_s,
            }
        }
    };
    // ORDER BY: an N·log N in-memory sort of the result, spilling to an
    // external merge sort when the result exceeds half the buffer pool —
    // unless the requested order falls out of a clustered-index scan on
    // the same column, in which case it is free.
    if let Some(order_col) = q.order_by {
        let ordered_for_free = access == UnaryAccess::ClusteredIndexScan
            && table.clustered_column() == Some(order_col);
        if !ordered_for_free && sizes.result > 1 {
            let n = sizes.result as f64;
            demand.cpu_s += n * n.log2() * vendor.sort_cpu_s;
            let result_pages = pages(sizes.result, table.tuple_len(), vendor.page_size);
            let sort_buffer_pages = vendor.buffer_pages / 2;
            if result_pages > sort_buffer_pages {
                // Spill: write runs once, read them back for the merge.
                demand.io_s += 2.0 * result_pages as f64 * vendor.seq_page_io_s;
            }
        }
    }
    (demand, access, sizes)
}

/// Costs a two-way join; also returns the chosen method and cardinalities.
pub fn cost_join(
    left: &TableDef,
    right: &TableDef,
    q: &JoinQuery,
    vendor: &VendorProfile,
) -> (ResourceDemand, JoinAccess, JoinSizes) {
    let sizes = join_sizes(left, right, q);
    let access = choose_join(left, right, q, vendor);
    let lp = pages(sizes.left_operand, left.tuple_len(), vendor.page_size);
    let rp = pages(sizes.right_operand, right.tuple_len(), vendor.page_size);
    let scan_cpu = (sizes.left_operand + sizes.right_operand) as f64 * vendor.pred_cpu_s;
    let out_cpu = sizes.result as f64 * vendor.out_cpu_s;
    let demand = match access {
        JoinAccess::NestedLoop => {
            // Block nested loops: outer once, inner once per outer block.
            let blocks = (lp as f64 / (vendor.buffer_pages as f64 - 2.0).max(1.0)).ceil();
            ResourceDemand {
                init_s: vendor.init_s * 1.4,
                io_s: (lp as f64 + blocks * rp as f64) * vendor.seq_page_io_s,
                cpu_s: scan_cpu + sizes.cartesian() as f64 * vendor.join_cpu_s + out_cpu,
            }
        }
        JoinAccess::SortMerge => {
            let sort_levels = |n: u64| (n.max(2) as f64).log2();
            ResourceDemand {
                init_s: vendor.init_s * 1.4,
                // Read both, write+read runs once.
                io_s: (3.0 * (lp + rp) as f64) * vendor.seq_page_io_s,
                cpu_s: scan_cpu
                    + sizes.left_intermediate as f64
                        * sort_levels(sizes.left_intermediate)
                        * vendor.sort_cpu_s
                    + sizes.right_intermediate as f64
                        * sort_levels(sizes.right_intermediate)
                        * vendor.sort_cpu_s
                    + (sizes.left_intermediate + sizes.right_intermediate) as f64
                        * vendor.join_cpu_s
                    + out_cpu,
            }
        }
        JoinAccess::IndexNestedLoop => {
            // Drive the smaller (filtered) side, probe the other's index.
            let (outer_tuples, outer_pages) = if sizes.left_intermediate <= sizes.right_intermediate
            {
                (sizes.left_intermediate, lp)
            } else {
                (sizes.right_intermediate, rp)
            };
            ResourceDemand {
                init_s: vendor.init_s * 1.4,
                io_s: outer_pages as f64 * vendor.seq_page_io_s
                    + outer_tuples as f64
                        * (vendor.index_height as f64 * 0.4 + 1.0)
                        * vendor.rand_page_io_s,
                cpu_s: scan_cpu + outer_tuples as f64 * vendor.join_cpu_s * 4.0 + out_cpu,
            }
        }
    };
    (demand, access, sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, IndexKind, TableId};
    use crate::query::Predicate;

    fn table(id: u32, card: u64, clustered: bool) -> TableDef {
        TableDef {
            id: TableId(id),
            cardinality: card,
            columns: (0..9)
                .map(|i| ColumnDef {
                    name: format!("a{}", i + 1),
                    width: 4,
                    domain_max: 9_999,
                    index: match i {
                        0 if clustered => IndexKind::Clustered,
                        2 => IndexKind::NonClustered,
                        _ => IndexKind::None,
                    },
                })
                .collect(),
            tuple_overhead: 8,
        }
    }

    #[test]
    fn seqscan_cost_scales_with_table_size() {
        let v = VendorProfile::oracle8();
        let q = |t: &TableDef| UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(4, 5_000)],
            order_by: None,
        };
        let small = table(1, 10_000, false);
        let big = table(2, 100_000, false);
        let (ds, a1, _) = cost_unary(&small, &q(&small), &v);
        let (db, a2, _) = cost_unary(&big, &q(&big), &v);
        assert_eq!(a1, UnaryAccess::SeqScan);
        assert_eq!(a2, UnaryAccess::SeqScan);
        // 10x the data should cost several times more even with the fixed
        // startup overhead amortized in.
        assert!(db.total() > 3.5 * ds.total());
    }

    #[test]
    fn clustered_scan_cheaper_than_seqscan_for_selective_query() {
        let v = VendorProfile::oracle8();
        let with_idx = table(1, 100_000, true);
        let without = table(2, 100_000, false);
        let selective = |t: &TableDef| UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(0, 500)], // 5%,
            order_by: None,
        };
        let (ci, ai, _) = cost_unary(&with_idx, &selective(&with_idx), &v);
        let (cs, asq, _) = cost_unary(&without, &selective(&without), &v);
        assert_eq!(ai, UnaryAccess::ClusteredIndexScan);
        assert_eq!(asq, UnaryAccess::SeqScan);
        assert!(ci.total() < cs.total());
    }

    #[test]
    fn nonclustered_random_io_dominates() {
        let v = VendorProfile::oracle8();
        let t = table(1, 100_000, false);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(2, 500)], // 5% via non-clustered.,
            order_by: None,
        };
        let (d, a, s) = cost_unary(&t, &q, &v);
        assert_eq!(a, UnaryAccess::NonClusteredIndexScan);
        // ~5000 random reads at ~10 ms.
        assert!(d.io_s > 10.0, "io {}", d.io_s);
        assert_eq!(s.intermediate, 5_000);
    }

    #[test]
    fn join_cost_grows_with_cartesian() {
        let v = VendorProfile::db2v5();
        let l = table(1, 20_000, false);
        let r = table(2, 20_000, false);
        let q = |sel: u64| JoinQuery {
            left: l.id,
            right: r.id,
            left_col: 4,
            right_col: 4,
            left_predicates: vec![Predicate::lt(5, sel)],
            right_predicates: vec![Predicate::lt(5, sel)],
            projection: vec![],
        };
        let (cheap, _, _) = cost_join(&l, &r, &q(1_000), &v);
        let (dear, _, _) = cost_join(&l, &r, &q(9_000), &v);
        assert!(dear.total() > cheap.total());
    }

    #[test]
    fn demand_components_nonnegative() {
        let v = VendorProfile::oracle8();
        let t = table(1, 3_000, true);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![],
            predicates: vec![],
            order_by: None,
        };
        let (d, _, _) = cost_unary(&t, &q, &v);
        assert!(d.init_s > 0.0 && d.io_s >= 0.0 && d.cpu_s >= 0.0);
        assert!(d.total().is_finite());
    }

    #[test]
    fn order_by_adds_sort_cost() {
        let v = VendorProfile::oracle8();
        let t = table(1, 200_000, false);
        let base = UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(4, 5_000)],
            order_by: None,
        };
        let sorted = UnaryQuery {
            order_by: Some(5),
            ..base.clone()
        };
        let (d0, _, s0) = cost_unary(&t, &base, &v);
        let (d1, _, _) = cost_unary(&t, &sorted, &v);
        assert!(d1.total() > d0.total(), "{} vs {}", d1.total(), d0.total());
        // The N log N CPU term is present.
        let n = s0.result as f64;
        assert!(d1.cpu_s - d0.cpu_s >= 0.9 * n * n.log2() * v.sort_cpu_s);
    }

    #[test]
    fn clustered_order_is_free() {
        let v = VendorProfile::oracle8();
        let t = table(1, 100_000, true); // Clustered on column 0.
        let q = |order: Option<usize>| UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(0, 2_000)], // 2% via clustered idx.
            order_by: order,
        };
        let (plain, a, _) = cost_unary(&t, &q(None), &v);
        assert_eq!(a, UnaryAccess::ClusteredIndexScan);
        let (on_cluster, _, _) = cost_unary(&t, &q(Some(0)), &v);
        let (on_other, _, _) = cost_unary(&t, &q(Some(5)), &v);
        assert_eq!(on_cluster.total(), plain.total());
        assert!(on_other.total() > plain.total());
    }

    #[test]
    fn big_sorts_spill_to_disk() {
        let v = VendorProfile::oracle8();
        let t = table(1, 250_000, false);
        let q = |order: Option<usize>| UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![], // Full table: result far exceeds the buffer.
            order_by: order,
        };
        let (plain, _, _) = cost_unary(&t, &q(None), &v);
        let (sorted, _, _) = cost_unary(&t, &q(Some(3)), &v);
        assert!(sorted.io_s > plain.io_s, "external sort did not spill");
    }

    #[test]
    fn vendors_produce_different_costs() {
        let t = table(1, 50_000, false);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![0, 4, 6],
            predicates: vec![Predicate::gt(2, 9_000), Predicate::lt(7, 2_000)],
            order_by: None,
        };
        let (o, _, _) = cost_unary(&t, &q, &VendorProfile::oracle8());
        let (d, _, _) = cost_unary(&t, &q, &VendorProfile::db2v5());
        assert!((o.total() - d.total()).abs() > 1e-6);
    }
}
