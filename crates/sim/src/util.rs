//! Small numeric helpers shared across the simulator.
//!
//! Gaussian draws come from [`Rng::normal`] in `mdbs-stats` — the
//! simulator's Box–Muller helper moved down there so every crate shares
//! one deterministic Gaussian source.

use mdbs_stats::rng::Rng;

/// Lower clamp applied by [`noise_factor`].
///
/// Why 0.2: a Gaussian multiplicative factor `1 + N(0, rel)` has unbounded
/// tails, so without a floor a rare draw could make a simulated cost zero or
/// negative — physically meaningless for an elapsed time. The floor must
/// also stay *far below* the 3σ band of every configured noise level
/// (vendor profiles use `rel = 0.05`, and the sensitivity experiments sweep
/// up to `rel = 0.20`), otherwise the clamp would bind often enough to bias
/// the mean of the factor above 1 and tilt the regressions. `0.2` keeps
/// costs strictly positive while binding only beyond 4σ even at the most
/// generous sweep setting, so the factor stays mean-1 in practice.
pub const NOISE_FLOOR: f64 = 0.2;

/// Multiplicative noise factor `max(NOISE_FLOOR, 1 + N(0, rel))`.
///
/// The lower clamp keeps simulated costs strictly positive even for
/// generous noise levels; see [`NOISE_FLOOR`] for how its value was chosen.
pub fn noise_factor(rng: &mut Rng, rel: f64) -> f64 {
    rng.normal(1.0, rel).max(NOISE_FLOOR)
}

/// Number of pages needed for `tuples` tuples of `tuple_len` bytes with the
/// given page size (ceiling division, at least one page for any data).
pub fn pages(tuples: u64, tuple_len: u32, page_size: u32) -> u64 {
    if tuples == 0 {
        return 1;
    }
    let bytes = tuples * tuple_len as u64;
    bytes.div_ceil(page_size as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_factor_respects_the_floor() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = noise_factor(&mut rng, 0.5);
            assert!(f >= NOISE_FLOOR);
        }
    }

    #[test]
    fn noise_factor_is_mean_one_at_configured_levels() {
        // At the vendor noise level the clamp must essentially never bind,
        // so the factor averages to ~1 (otherwise costs would be biased).
        let mut rng = Rng::seed_from_u64(2);
        let n = 20_000;
        let mean = (0..n).map(|_| noise_factor(&mut rng, 0.05)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pages_rounds_up() {
        assert_eq!(pages(1, 100, 8192), 1);
        assert_eq!(pages(82, 100, 8192), 2); // 8200 bytes -> 2 pages
        assert_eq!(pages(0, 100, 8192), 1);
        assert_eq!(pages(81, 100, 8192), 1); // 8100 bytes -> 1 page
    }
}
