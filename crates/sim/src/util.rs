//! Small numeric helpers shared across the simulator.

use rand::Rng;

/// Draws a standard-normal variate via the Box–Muller transform.
///
/// `rand_distr` is outside the allowed dependency set for this workspace,
/// so the handful of Gaussian draws the simulator needs are generated here.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    // Two uniforms in (0, 1]; guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Multiplicative noise factor `max(floor, 1 + N(0, rel))`.
///
/// The lower clamp keeps simulated costs strictly positive even for
/// generous noise levels.
pub fn noise_factor<R: Rng + ?Sized>(rng: &mut R, rel: f64) -> f64 {
    normal(rng, 1.0, rel).max(0.2)
}

/// Number of pages needed for `tuples` tuples of `tuple_len` bytes with the
/// given page size (ceiling division, at least one page for any data).
pub fn pages(tuples: u64, tuple_len: u32, page_size: u32) -> u64 {
    if tuples == 0 {
        return 1;
    }
    let bytes = tuples * tuple_len as u64;
    bytes.div_ceil(page_size as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn noise_factor_is_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = noise_factor(&mut rng, 0.5);
            assert!(f >= 0.2);
        }
    }

    #[test]
    fn pages_rounds_up() {
        assert_eq!(pages(1, 100, 8192), 1);
        assert_eq!(pages(82, 100, 8192), 2); // 8200 bytes -> 2 pages
        assert_eq!(pages(0, 100, 8192), 1);
        assert_eq!(pages(81, 100, 8192), 1); // 8100 bytes -> 1 page
    }
}
