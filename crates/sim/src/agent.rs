//! The MDBS agent façade.
//!
//! In CORDS-MDBS each local DBS is fronted by an *MDBS agent* that offers a
//! uniform relational interface, hosts the load builder and (optionally) an
//! environment monitor (paper §5, Figure 3). [`MdbsAgent`] is that agent:
//! the only handle the `mdbs-core` method gets on a local site. It can
//!
//! * submit a local query and observe its elapsed cost ([`MdbsAgent::run`]),
//! * execute the probing query ([`MdbsAgent::probe`]),
//! * read system statistics ([`MdbsAgent::stats`]),
//! * let the load builder move the environment ([`MdbsAgent::tick`]) or pin
//!   a specific load ([`MdbsAgent::set_load`]).
//!
//! Time is virtual; every observation carries multiplicative and additive
//! noise so repeated executions of the same query in the same state differ
//! slightly — exactly the measurement reality regression has to cope with.

use crate::access::{JoinAccess, UnaryAccess};
use crate::catalog::{LocalCatalog, TableDef, TableId};
use crate::contention::{Load, LoadBuilder};
use crate::engine::{cost_join, cost_unary};
use crate::machine::{Machine, MachineSpec};
use crate::query::{Predicate, Query, UnaryQuery};
use crate::selectivity::{JoinSizes, UnarySizes};
use crate::sysstats::SystemStats;
use crate::trace::{ExecutionTrace, TraceEntry};
use crate::util::noise_factor;
use crate::vendor::VendorProfile;
use mdbs_obs::MetricsRegistry;
use mdbs_stats::rng::Rng;

/// The physical operator the local DBS chose for an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChosenAccess {
    /// A unary operator.
    Unary(UnaryAccess),
    /// A join operator.
    Join(JoinAccess),
}

impl std::fmt::Display for ChosenAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChosenAccess::Unary(a) => a.fmt(f),
            ChosenAccess::Join(a) => a.fmt(f),
        }
    }
}

/// Result-size information attached to an execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionSizes {
    /// Cardinalities of a unary query.
    Unary(UnarySizes),
    /// Cardinalities of a join query.
    Join(JoinSizes),
}

/// One observed local query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Observed elapsed cost in (virtual) seconds.
    pub cost_s: f64,
    /// Physical operator chosen by the local DBS.
    pub access: ChosenAccess,
    /// Operand/intermediate/result cardinalities.
    pub sizes: ExecutionSizes,
    /// Number of background processes at execution time (for diagnostics
    /// and plots only — the method itself must not use this).
    pub procs_at_execution: f64,
}

/// Errors the agent can report.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentError {
    /// The query references a table the local database does not have.
    UnknownTable(TableId),
}

impl std::fmt::Display for AgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentError::UnknownTable(t) => write!(f, "unknown table {t}"),
        }
    }
}

impl std::error::Error for AgentError {}

/// An MDBS agent wrapping one simulated local DBS.
#[derive(Debug, Clone)]
pub struct MdbsAgent {
    vendor: VendorProfile,
    catalog: LocalCatalog,
    machine: Machine,
    load_builder: Option<LoadBuilder>,
    rng: Rng,
    executions: u64,
    clock_s: f64,
    trace: Option<ExecutionTrace>,
    metrics: Option<MetricsRegistry>,
}

impl MdbsAgent {
    /// Creates an agent for a local DBS with the given vendor profile,
    /// database and RNG seed. The environment starts idle and static; call
    /// [`Self::set_load_builder`] to make it dynamic.
    pub fn new(vendor: VendorProfile, catalog: LocalCatalog, seed: u64) -> Self {
        MdbsAgent {
            vendor,
            catalog,
            machine: Machine::new(MachineSpec::default()),
            load_builder: None,
            rng: Rng::seed_from_u64(seed),
            executions: 0,
            clock_s: 0.0,
            trace: None,
            metrics: None,
        }
    }

    /// Enables execution tracing with a bounded window (replacing any
    /// existing trace).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(ExecutionTrace::new(capacity));
    }

    /// The execution trace, when enabled.
    pub fn trace(&self) -> Option<&ExecutionTrace> {
        self.trace.as_ref()
    }

    /// Enables metrics collection (replacing any existing registry). While
    /// enabled, every execution updates `engine.*` counters, per-component
    /// cost gauges and the contention-inflation histogram.
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(MetricsRegistry::new());
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Takes the metrics registry out of the agent (leaving collection
    /// enabled with a fresh one) — for folding into a pipeline
    /// [`Telemetry`](mdbs_obs::Telemetry) at stage boundaries.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.metrics.replace(MetricsRegistry::new())
    }

    /// Disables metrics collection, returning whatever was recorded.
    pub fn disable_metrics(&mut self) -> Option<MetricsRegistry> {
        self.metrics.take()
    }

    /// The vendor profile (display purposes).
    pub fn vendor(&self) -> &VendorProfile {
        &self.vendor
    }

    /// The local schema (what the MDBS global catalog legitimately knows).
    pub fn catalog(&self) -> &LocalCatalog {
        &self.catalog
    }

    /// Installs a load builder driving the dynamic environment. Each query
    /// execution then runs under a freshly drawn load.
    pub fn set_load_builder(&mut self, builder: LoadBuilder) {
        self.load_builder = Some(builder);
    }

    /// Removes the load builder and pins the given static load.
    pub fn set_load(&mut self, load: Load) {
        self.load_builder = None;
        self.machine.set_load(load);
    }

    /// Advances the environment: draws the next load from the builder.
    /// No-op in a static environment.
    pub fn tick(&mut self) {
        if let Some(builder) = &self.load_builder {
            let load = builder.next_load(&mut self.rng);
            self.machine.set_load(load);
        }
    }

    /// The machine (read-only; used by tests and plots).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of queries executed so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Virtual seconds of query time accumulated so far.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Reads the system statistics the environment monitor would report.
    pub fn stats(&mut self) -> SystemStats {
        SystemStats::observe(&self.machine, &mut self.rng)
    }

    /// Executes a local query under the *current* load and returns the
    /// observed cost. Call [`Self::tick`] first to move the environment.
    pub fn run(&mut self, query: &Query) -> Result<Execution, AgentError> {
        let (demand, access, sizes) = match query {
            Query::Unary(u) => {
                let t = self.table(u.table)?;
                let (d, a, s) = cost_unary(t, u, &self.vendor);
                (d, ChosenAccess::Unary(a), ExecutionSizes::Unary(s))
            }
            Query::Join(j) => {
                let l = self.table(j.left)?;
                let r = self.table(j.right)?;
                let (d, a, s) = cost_join(l, r, j, &self.vendor);
                (d, ChosenAccess::Join(a), ExecutionSizes::Join(s))
            }
        };
        let (init, io, cpu) = self
            .machine
            .elapsed_parts(demand.init_s, demand.io_s, demand.cpu_s);
        let stretched = init + io + cpu;
        // Momentary environmental fluctuation: multiplicative noise plus a
        // small absolute floor that dominates only for tiny queries — the
        // reason the paper finds small-cost queries harder to estimate.
        let cost = stretched * noise_factor(&mut self.rng, self.vendor.noise_rel)
            + self.rng.normal(0.0, 0.04).abs();
        self.executions += 1;
        self.clock_s += cost;
        if let Some(metrics) = &mut self.metrics {
            metrics.inc("engine.executions", 1);
            metrics.add_gauge("engine.cost.init_s", init);
            metrics.add_gauge("engine.cost.io_s", io);
            metrics.add_gauge("engine.cost.cpu_s", cpu);
            let demand_total = demand.init_s + demand.io_s + demand.cpu_s;
            if demand_total > 0.0 {
                metrics.observe("engine.contention_inflation", stretched / demand_total);
            }
        }
        if let Some(trace) = &mut self.trace {
            let result_card = match sizes {
                ExecutionSizes::Unary(s) => s.result,
                ExecutionSizes::Join(s) => s.result,
            };
            trace.record(TraceEntry {
                seq: self.executions,
                at_s: self.clock_s,
                query: query.describe(),
                cost_s: cost,
                access,
                result_card,
                procs: self.machine.load().procs,
            });
        }
        Ok(Execution {
            cost_s: cost,
            access,
            sizes,
            procs_at_execution: self.machine.load().procs,
        })
    }

    /// The canonical probing query: a cheap unary query on the smallest
    /// table. Its cost gauges the contention level (paper §3.3).
    pub fn probing_query(&self) -> Query {
        let smallest = self
            .catalog
            .tables()
            .iter()
            .min_by_key(|t| t.cardinality)
            .expect("local database has at least one table");
        Query::Unary(UnaryQuery {
            table: smallest.id,
            projection: vec![0, 1],
            // Moderately selective predicate on an unindexed column so the
            // probe exercises CPU and I/O without being free.
            predicates: vec![Predicate::lt(4, smallest.columns[4].domain_max / 2)],
            order_by: None,
        })
    }

    /// Executes the probing query under the current load and returns its
    /// observed cost.
    pub fn probe(&mut self) -> f64 {
        let q = self.probing_query();
        if let Some(metrics) = &mut self.metrics {
            metrics.inc("engine.probes", 1);
        }
        self.run(&q)
            .expect("probing query references a catalog table")
            .cost_s
    }

    fn table(&self, id: TableId) -> Result<&TableDef, AgentError> {
        self.catalog.table(id).ok_or(AgentError::UnknownTable(id))
    }

    /// Registers a table in the local schema — the local DBS creating a
    /// temporary table for shipped tuples during global query execution.
    /// Panics on a duplicate id (caller controls temp-table ids).
    pub fn register_table(&mut self, table: TableDef) {
        self.catalog.add_table(table);
    }

    /// Drops a (temporary) table; returns whether it existed.
    pub fn drop_table(&mut self, id: TableId) -> bool {
        self.catalog.remove_table(id)
    }

    /// Applies an occasionally-changing environmental factor (paper §2):
    /// a durable hardware, configuration, schema or data change. Cost
    /// models derived before the event may no longer describe this site —
    /// detecting that and re-deriving is `mdbs-core`'s maintenance job.
    pub fn apply_event(
        &mut self,
        event: &crate::events::EnvironmentEvent,
    ) -> Result<(), crate::events::EventError> {
        use crate::events::{EnvironmentEvent as E, EventError};
        match event {
            E::MemoryUpgrade { new_phys_mem_mb } => {
                if !new_phys_mem_mb.is_finite() || *new_phys_mem_mb <= 0.0 {
                    return Err(EventError::InvalidParameter(format!(
                        "physical memory must be positive, got {new_phys_mem_mb}"
                    )));
                }
                self.machine.spec_mut().phys_mem_mb = *new_phys_mem_mb;
            }
            E::BufferPoolResize { pages } => {
                if *pages < 3 {
                    return Err(EventError::InvalidParameter(format!(
                        "buffer pool needs at least 3 pages, got {pages}"
                    )));
                }
                self.vendor.buffer_pages = *pages;
            }
            E::CreateIndex {
                table,
                column,
                kind,
            } => {
                let t = self
                    .catalog
                    .table_mut(*table)
                    .ok_or(EventError::UnknownTable(*table))?;
                let col = t
                    .columns
                    .get_mut(*column)
                    .ok_or(EventError::UnknownColumn {
                        table: *table,
                        column: *column,
                    })?;
                col.index = *kind;
            }
            E::DropIndex { table, column } => {
                let t = self
                    .catalog
                    .table_mut(*table)
                    .ok_or(EventError::UnknownTable(*table))?;
                let col = t
                    .columns
                    .get_mut(*column)
                    .ok_or(EventError::UnknownColumn {
                        table: *table,
                        column: *column,
                    })?;
                col.index = crate::catalog::IndexKind::None;
            }
            E::TableGrowth { table, factor } => {
                if !factor.is_finite() || *factor <= 0.0 {
                    return Err(EventError::InvalidParameter(format!(
                        "growth factor must be positive, got {factor}"
                    )));
                }
                let t = self
                    .catalog
                    .table_mut(*table)
                    .ok_or(EventError::UnknownTable(*table))?;
                t.cardinality = ((t.cardinality as f64 * factor).round() as u64).max(1);
            }
            E::DiskReplacement { io_cost_factor } => {
                if !io_cost_factor.is_finite() || *io_cost_factor <= 0.0 {
                    return Err(EventError::InvalidParameter(format!(
                        "I/O cost factor must be positive, got {io_cost_factor}"
                    )));
                }
                self.vendor.seq_page_io_s *= io_cost_factor;
                self.vendor.rand_page_io_s *= io_cost_factor;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::{ContentionProfile, LoadBuilder};
    use crate::datagen::standard_database;

    fn agent() -> MdbsAgent {
        MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 7)
    }

    fn any_query(a: &MdbsAgent) -> Query {
        let t = &a.catalog().tables()[5];
        Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0, 4, 6],
            predicates: vec![Predicate::gt(4, t.columns[4].domain_max / 3)],
            order_by: None,
        })
    }

    #[test]
    fn run_returns_positive_cost() {
        let mut a = agent();
        let q = any_query(&a);
        let e = a.run(&q).unwrap();
        assert!(e.cost_s > 0.0);
        assert_eq!(a.executions(), 1);
        assert!(a.clock_s() > 0.0);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let mut a = agent();
        let q = Query::Unary(UnaryQuery {
            table: TableId(99),
            projection: vec![],
            predicates: vec![],
            order_by: None,
        });
        assert_eq!(a.run(&q), Err(AgentError::UnknownTable(TableId(99))));
    }

    #[test]
    fn repeated_runs_differ_by_noise_only() {
        let mut a = agent();
        let q = any_query(&a);
        let c1 = a.run(&q).unwrap().cost_s;
        let c2 = a.run(&q).unwrap().cost_s;
        assert_ne!(c1, c2);
        assert!((c1 - c2).abs() / c1 < 0.5, "noise too large: {c1} vs {c2}");
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let mut a1 = agent();
        let mut a2 = agent();
        let q = any_query(&a1);
        assert_eq!(a1.run(&q).unwrap().cost_s, a2.run(&q).unwrap().cost_s);
    }

    #[test]
    fn load_increases_cost() {
        let mut calm = agent();
        let mut busy = agent();
        busy.set_load(Load::background(120.0));
        let q = any_query(&calm);
        let avg =
            |a: &mut MdbsAgent| (0..10).map(|_| a.run(&q).unwrap().cost_s).sum::<f64>() / 10.0;
        assert!(avg(&mut busy) > 3.0 * avg(&mut calm));
    }

    #[test]
    fn probe_tracks_contention() {
        let mut a = agent();
        a.set_load(Load::background(10.0));
        let low = (0..8).map(|_| a.probe()).sum::<f64>() / 8.0;
        a.set_load(Load::background(120.0));
        let high = (0..8).map(|_| a.probe()).sum::<f64>() / 8.0;
        assert!(high > 2.0 * low, "probe {low} -> {high}");
    }

    #[test]
    fn tick_moves_the_environment() {
        let mut a = agent();
        a.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
            lo: 5.0,
            hi: 125.0,
        }));
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..20 {
            a.tick();
            seen.insert((a.machine().load().procs * 100.0) as i64);
        }
        assert!(seen.len() > 10, "load builder did not vary the load");
    }

    #[test]
    fn memory_upgrade_removes_thrashing() {
        let mut a = agent();
        a.set_load(Load::background(125.0));
        let q = any_query(&a);
        let before: f64 = (0..6).map(|_| a.run(&q).unwrap().cost_s).sum::<f64>() / 6.0;
        a.apply_event(&crate::events::EnvironmentEvent::MemoryUpgrade {
            new_phys_mem_mb: 4096.0,
        })
        .unwrap();
        let after: f64 = (0..6).map(|_| a.run(&q).unwrap().cost_s).sum::<f64>() / 6.0;
        assert!(
            after < before / 3.0,
            "upgrade did not help: {before:.1} -> {after:.1}"
        );
    }

    #[test]
    fn create_index_changes_the_access_path() {
        let mut a = agent();
        let t = a.catalog().tables()[8].clone();
        // Selective predicate on an unindexed column: sequential scan.
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(5, t.columns[5].domain_max / 50)],
            order_by: None,
        });
        let before = a.run(&q).unwrap();
        assert_eq!(
            before.access,
            ChosenAccess::Unary(crate::access::UnaryAccess::SeqScan)
        );
        a.apply_event(&crate::events::EnvironmentEvent::CreateIndex {
            table: t.id,
            column: 5,
            kind: crate::catalog::IndexKind::NonClustered,
        })
        .unwrap();
        let after = a.run(&q).unwrap();
        assert_eq!(
            after.access,
            ChosenAccess::Unary(crate::access::UnaryAccess::NonClusteredIndexScan)
        );
    }

    #[test]
    fn table_growth_increases_cost() {
        let mut a = agent();
        let q = any_query(&a);
        let before: f64 = (0..5).map(|_| a.run(&q).unwrap().cost_s).sum::<f64>() / 5.0;
        a.apply_event(&crate::events::EnvironmentEvent::TableGrowth {
            table: q.tables()[0],
            factor: 4.0,
        })
        .unwrap();
        let after: f64 = (0..5).map(|_| a.run(&q).unwrap().cost_s).sum::<f64>() / 5.0;
        assert!(after > 2.0 * before, "{before:.2} -> {after:.2}");
    }

    #[test]
    fn disk_replacement_speeds_up_io() {
        let mut a = agent();
        let q = any_query(&a);
        let before: f64 = (0..5).map(|_| a.run(&q).unwrap().cost_s).sum::<f64>() / 5.0;
        a.apply_event(&crate::events::EnvironmentEvent::DiskReplacement {
            io_cost_factor: 0.2,
        })
        .unwrap();
        let after: f64 = (0..5).map(|_| a.run(&q).unwrap().cost_s).sum::<f64>() / 5.0;
        assert!(after < before, "{before:.2} -> {after:.2}");
    }

    #[test]
    fn invalid_events_are_rejected() {
        let mut a = agent();
        use crate::events::{EnvironmentEvent as E, EventError};
        assert!(matches!(
            a.apply_event(&E::MemoryUpgrade {
                new_phys_mem_mb: -1.0
            }),
            Err(EventError::InvalidParameter(_))
        ));
        assert!(matches!(
            a.apply_event(&E::TableGrowth {
                table: TableId(99),
                factor: 2.0
            }),
            Err(EventError::UnknownTable(_))
        ));
        assert!(matches!(
            a.apply_event(&E::CreateIndex {
                table: TableId(1),
                column: 99,
                kind: crate::catalog::IndexKind::NonClustered
            }),
            Err(EventError::UnknownColumn { .. })
        ));
        assert!(matches!(
            a.apply_event(&E::BufferPoolResize { pages: 1 }),
            Err(EventError::InvalidParameter(_))
        ));
    }

    #[test]
    fn trace_records_executions_when_enabled() {
        let mut a = agent();
        assert!(a.trace().is_none());
        a.enable_trace(3);
        let q = any_query(&a);
        for _ in 0..5 {
            a.run(&q).unwrap();
        }
        let t = a.trace().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        assert!(t.mean_cost() > 0.0);
        assert!(t.report().contains("SeqScan") || t.report().contains("Index"));
    }

    #[test]
    fn metrics_count_executions_and_break_down_cost() {
        let mut a = agent();
        assert!(a.metrics().is_none());
        a.enable_metrics();
        let q = any_query(&a);
        for _ in 0..4 {
            a.run(&q).unwrap();
        }
        a.probe();
        let m = a.metrics().unwrap();
        assert_eq!(m.counter("engine.executions"), 5);
        assert_eq!(m.counter("engine.probes"), 1);
        let init = m.gauge("engine.cost.init_s").unwrap();
        let io = m.gauge("engine.cost.io_s").unwrap();
        let cpu = m.gauge("engine.cost.cpu_s").unwrap();
        assert!(init > 0.0 && io > 0.0 && cpu > 0.0);
        let inflation = m.histogram("engine.contention_inflation").unwrap();
        assert_eq!(inflation.count(), 5);
        // Idle machine: stretched/demand == 1 exactly.
        assert!((inflation.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_do_not_disturb_costs() {
        let mut plain = agent();
        let mut metered = agent();
        metered.enable_metrics();
        let q = any_query(&plain);
        assert_eq!(
            plain.run(&q).unwrap().cost_s,
            metered.run(&q).unwrap().cost_s
        );
    }

    #[test]
    fn take_metrics_leaves_collection_enabled() {
        let mut a = agent();
        a.enable_metrics();
        let q = any_query(&a);
        a.run(&q).unwrap();
        let taken = a.take_metrics().unwrap();
        assert_eq!(taken.counter("engine.executions"), 1);
        a.run(&q).unwrap();
        assert_eq!(a.metrics().unwrap().counter("engine.executions"), 1);
    }

    #[test]
    fn chosen_access_displays_like_debug() {
        let unary = ChosenAccess::Unary(crate::access::UnaryAccess::SeqScan);
        let join = ChosenAccess::Join(crate::access::JoinAccess::SortMerge);
        assert_eq!(unary.to_string(), "SeqScan");
        assert_eq!(join.to_string(), "SortMerge");
        assert_eq!(
            format!("{:?}", crate::access::UnaryAccess::NonClusteredIndexScan),
            crate::access::UnaryAccess::NonClusteredIndexScan.to_string()
        );
    }

    #[test]
    fn join_queries_execute() {
        let mut a = agent();
        let tables = a.catalog().tables();
        let (l, r) = (tables[2].id, tables[3].id);
        let q = Query::Join(crate::query::JoinQuery {
            left: l,
            right: r,
            left_col: 4,
            right_col: 4,
            left_predicates: vec![],
            right_predicates: vec![],
            projection: vec![(true, 0), (false, 1)],
        });
        let e = a.run(&q).unwrap();
        assert!(e.cost_s > 0.0);
        assert!(matches!(e.sizes, ExecutionSizes::Join(_)));
    }
}
