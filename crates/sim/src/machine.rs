//! The simulated host machine.
//!
//! Local query cost in the paper's dynamic environment is dominated by the
//! *combined net effect* of frequently-changing factors: CPU load, I/O
//! traffic and memory pressure from concurrent processes. The machine model
//! here turns a background [`Load`] into three
//! inflation factors:
//!
//! * **CPU factor** — round-robin time-slicing: with `n` CPU-hungry
//!   competitors a query receives `1/(1 + w·n)` of the CPU, so its CPU time
//!   stretches by `1 + w·n`.
//! * **I/O factor** — queueing at the disk: service time stretches linearly
//!   in the number of I/O-issuing competitors, then multiplies with the
//!   thrashing factor.
//! * **Thrashing factor** — once the resident sets of the background
//!   processes exceed physical memory, the machine starts paging and the
//!   effective cost explodes exponentially. This is what bends the curve of
//!   paper Figure 1 upward from ~3.8 s at 50 processes to ~124 s at 130.

use crate::contention::Load;

/// Static hardware description of a simulated host.
///
/// Defaults approximate the paper's late-90s SUN UltraSparc 2 workstation.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Physical memory in megabytes.
    pub phys_mem_mb: f64,
    /// Memory consumed by the OS plus the DBMS itself (MB).
    pub base_mem_mb: f64,
    /// Average resident set of one background process (MB).
    pub mem_per_proc_mb: f64,
    /// CPU stretch per CPU-bound competitor.
    pub cpu_weight: f64,
    /// I/O stretch per I/O-bound competitor.
    pub io_weight: f64,
    /// Exponential thrashing coefficient once memory runs out.
    pub thrash_coeff: f64,
    /// Fraction of physical memory at which thrashing sets in.
    pub thrash_onset: f64,
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec {
            phys_mem_mb: 512.0,
            base_mem_mb: 96.0,
            mem_per_proc_mb: 4.0,
            cpu_weight: 0.045,
            io_weight: 0.030,
            thrash_coeff: 11.0,
            thrash_onset: 0.90,
        }
    }
}

/// A simulated host: a spec plus the currently applied background load.
#[derive(Debug, Clone)]
pub struct Machine {
    spec: MachineSpec,
    load: Load,
}

impl Machine {
    /// Creates a machine with the given spec and an idle load.
    pub fn new(spec: MachineSpec) -> Self {
        Machine {
            spec,
            load: Load::idle(),
        }
    }

    /// The hardware spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Mutable access to the spec — hardware changes (memory upgrades) are
    /// occasionally-changing environmental factors (paper §2).
    pub fn spec_mut(&mut self) -> &mut MachineSpec {
        &mut self.spec
    }

    /// Replaces the background load (the load builder calls this).
    pub fn set_load(&mut self, load: Load) {
        self.load = load;
    }

    /// The background load currently applied.
    pub fn load(&self) -> &Load {
        &self.load
    }

    /// Fraction of physical memory in use (may exceed 1 under overload).
    pub fn memory_fraction(&self) -> f64 {
        (self.spec.base_mem_mb + self.load.procs * self.spec.mem_per_proc_mb)
            / self.spec.phys_mem_mb
    }

    /// Multiplier applied to a foreground query's CPU time.
    pub fn cpu_factor(&self) -> f64 {
        1.0 + self.spec.cpu_weight * self.load.procs * self.load.cpu_intensity
    }

    /// Multiplier applied to a foreground query's I/O time
    /// (queueing × thrashing).
    pub fn io_factor(&self) -> f64 {
        let queueing = 1.0 + self.spec.io_weight * self.load.procs * self.load.io_intensity;
        queueing * self.thrash_factor()
    }

    /// The exponential paging penalty; 1.0 while memory suffices.
    pub fn thrash_factor(&self) -> f64 {
        let over = (self.memory_fraction() - self.spec.thrash_onset).max(0.0);
        (self.spec.thrash_coeff * over).exp()
    }

    /// Converts a resource demand `(init_s, io_s, cpu_s)` measured on an
    /// idle machine into elapsed seconds under the current load.
    ///
    /// Initialization (opening cursors, process startup) is mostly CPU-bound
    /// and stretches with the CPU factor.
    pub fn elapsed(&self, init_s: f64, io_s: f64, cpu_s: f64) -> f64 {
        let (init, io, cpu) = self.elapsed_parts(init_s, io_s, cpu_s);
        init + io + cpu
    }

    /// The per-component breakdown of [`Self::elapsed`]: stretched
    /// `(init, io, cpu)` seconds under the current load. Telemetry uses
    /// this to attribute cost to components without re-deriving factors.
    pub fn elapsed_parts(&self, init_s: f64, io_s: f64, cpu_s: f64) -> (f64, f64, f64) {
        (
            init_s * self.cpu_factor(),
            io_s * self.io_factor(),
            cpu_s * self.cpu_factor(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::Load;

    fn loaded(procs: f64) -> Machine {
        let mut m = Machine::new(MachineSpec::default());
        m.set_load(Load::background(procs));
        m
    }

    #[test]
    fn idle_machine_has_unit_factors() {
        let m = Machine::new(MachineSpec::default());
        assert_eq!(m.cpu_factor(), 1.0);
        assert!((m.io_factor() - 1.0).abs() < 1e-9);
        assert_eq!(m.elapsed(1.0, 2.0, 3.0), 6.0);
    }

    #[test]
    fn factors_grow_monotonically_with_load() {
        let mut prev_io = 0.0;
        let mut prev_cpu = 0.0;
        for p in (0..140).step_by(10) {
            let m = loaded(p as f64);
            assert!(m.cpu_factor() >= prev_cpu);
            assert!(m.io_factor() >= prev_io);
            prev_cpu = m.cpu_factor();
            prev_io = m.io_factor();
        }
    }

    #[test]
    fn thrashing_kicks_in_superlinearly() {
        // Figure 1 shape: cost ratio between 130 and 50 processes should be
        // large (paper observed 124 s / 3.8 s ≈ 33×).
        let low = loaded(50.0);
        let high = loaded(130.0);
        let cost_low = low.elapsed(0.05, 1.0, 0.5);
        let cost_high = high.elapsed(0.05, 1.0, 0.5);
        let ratio = cost_high / cost_low;
        assert!(ratio > 10.0, "ratio only {ratio:.1}");
        // And the curve must be convex: marginal slowdown grows.
        let d1 = loaded(90.0).elapsed(0.05, 1.0, 0.5) - loaded(70.0).elapsed(0.05, 1.0, 0.5);
        let d2 = loaded(130.0).elapsed(0.05, 1.0, 0.5) - loaded(110.0).elapsed(0.05, 1.0, 0.5);
        assert!(d2 > d1);
    }

    #[test]
    fn no_thrashing_below_onset() {
        let m = loaded(20.0);
        assert!((m.thrash_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_fraction_accounts_for_base_usage() {
        let m = Machine::new(MachineSpec::default());
        assert!((m.memory_fraction() - 96.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn intensity_scales_contention() {
        let mut m = Machine::new(MachineSpec::default());
        m.set_load(Load {
            procs: 40.0,
            cpu_intensity: 0.0,
            io_intensity: 1.0,
        });
        assert_eq!(m.cpu_factor(), 1.0);
        assert!(m.io_factor() > 1.0);
    }
}
