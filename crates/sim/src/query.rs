//! Local queries: select-project unary queries and two-way joins.
//!
//! These are the "local (component) queries" a global MDBS optimizer
//! decomposes a global query into. The shapes match the paper's examples
//! (`select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000`) and the two
//! query-class families of Table 3 (unary classes and join classes).

use crate::catalog::TableId;

/// A range predicate on one column of uniform integer values.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Index of the column within the table definition.
    pub column: usize,
    /// Inclusive lower bound of the accepted range (`None` = open).
    pub lo: Option<u64>,
    /// Inclusive upper bound of the accepted range (`None` = open).
    pub hi: Option<u64>,
}

impl Predicate {
    /// `column > v` (exclusive lower bound expressed inclusively).
    pub fn gt(column: usize, v: u64) -> Predicate {
        Predicate {
            column,
            lo: Some(v.saturating_add(1)),
            hi: None,
        }
    }

    /// `column < v`.
    pub fn lt(column: usize, v: u64) -> Predicate {
        Predicate {
            column,
            lo: None,
            hi: Some(v.saturating_sub(1)),
        }
    }

    /// `lo <= column <= hi`.
    pub fn between(column: usize, lo: u64, hi: u64) -> Predicate {
        Predicate {
            column,
            lo: Some(lo),
            hi: Some(hi),
        }
    }
}

/// A unary select-project query over one table with conjunctive range
/// predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct UnaryQuery {
    /// The operand table.
    pub table: TableId,
    /// Projected column indexes (empty = all columns).
    pub projection: Vec<usize>,
    /// Conjunctive predicates.
    pub predicates: Vec<Predicate>,
    /// Column the result is ordered by, if any (`ORDER BY`). Sorting adds
    /// an N·log N CPU term and, for large results, external-sort I/O —
    /// unless the local DBS can read the order off a clustered index.
    pub order_by: Option<usize>,
}

/// A two-way equijoin with optional local predicates on each operand.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// Left operand table.
    pub left: TableId,
    /// Right operand table.
    pub right: TableId,
    /// Join column index on the left table.
    pub left_col: usize,
    /// Join column index on the right table.
    pub right_col: usize,
    /// Local predicates applied to the left operand before joining.
    pub left_predicates: Vec<Predicate>,
    /// Local predicates applied to the right operand before joining.
    pub right_predicates: Vec<Predicate>,
    /// Projected columns `(from_left, column_index)`.
    pub projection: Vec<(bool, usize)>,
}

/// Any local query the simulated DBS accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A unary select-project query.
    Unary(UnaryQuery),
    /// A two-way join query.
    Join(JoinQuery),
}

impl Query {
    /// The tables this query reads.
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            Query::Unary(u) => vec![u.table],
            Query::Join(j) => vec![j.left, j.right],
        }
    }

    /// A short human-readable rendering for logs and reports.
    pub fn describe(&self) -> String {
        match self {
            Query::Unary(u) => format!(
                "SELECT {} FROM {} WHERE {} preds",
                if u.projection.is_empty() {
                    "*".to_string()
                } else {
                    format!("{} cols", u.projection.len())
                },
                u.table,
                u.predicates.len()
            ),
            Query::Join(j) => format!(
                "SELECT .. FROM {} JOIN {} ON c{}=c{} ({}+{} preds)",
                j.left,
                j.right,
                j.left_col,
                j.right_col,
                j.left_predicates.len(),
                j.right_predicates.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_constructors() {
        assert_eq!(
            Predicate::gt(2, 300),
            Predicate {
                column: 2,
                lo: Some(301),
                hi: None
            }
        );
        assert_eq!(
            Predicate::lt(7, 2000),
            Predicate {
                column: 7,
                lo: None,
                hi: Some(1999)
            }
        );
        assert_eq!(
            Predicate::between(0, 5, 10),
            Predicate {
                column: 0,
                lo: Some(5),
                hi: Some(10)
            }
        );
    }

    #[test]
    fn gt_at_domain_edge_saturates() {
        let p = Predicate::gt(0, u64::MAX);
        assert_eq!(p.lo, Some(u64::MAX));
    }

    #[test]
    fn lt_zero_saturates() {
        let p = Predicate::lt(0, 0);
        assert_eq!(p.hi, Some(0));
    }

    #[test]
    fn query_tables() {
        let u = Query::Unary(UnaryQuery {
            table: TableId(7),
            projection: vec![0, 4, 6],
            predicates: vec![Predicate::gt(2, 300), Predicate::lt(7, 2000)],
            order_by: None,
        });
        assert_eq!(u.tables(), vec![TableId(7)]);
        let j = Query::Join(JoinQuery {
            left: TableId(1),
            right: TableId(2),
            left_col: 0,
            right_col: 0,
            left_predicates: vec![],
            right_predicates: vec![],
            projection: vec![(true, 0), (false, 1)],
        });
        assert_eq!(j.tables(), vec![TableId(1), TableId(2)]);
    }

    #[test]
    fn describe_is_stable() {
        let u = Query::Unary(UnaryQuery {
            table: TableId(7),
            projection: vec![],
            predicates: vec![],
            order_by: None,
        });
        assert!(u.describe().contains("R7"));
    }
}
