//! Local database schemas: tables, columns and indexes.
//!
//! The simulator does not materialize tuples — query results and costs are
//! derived analytically from column statistics (uniform value distributions
//! with known domains), which keeps multi-hundred-thousand-tuple databases
//! cheap while staying fully deterministic. What the *global* level of an
//! MDBS legitimately knows about a local table (cardinality, tuple length,
//! which columns are indexed and how) lives here; everything else is
//! internal to the local DBS simulation.

/// Identifies a table within one local database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// How a column is indexed in the local DBS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// No index on this column.
    None,
    /// A clustered (primary-organization) index; at most one per table.
    Clustered,
    /// A non-clustered secondary index.
    NonClustered,
}

/// One column of a local table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (e.g. `a3`).
    pub name: String,
    /// Width of the column in bytes.
    pub width: u32,
    /// Values are uniform integers in `[0, domain_max]`.
    pub domain_max: u64,
    /// Index on this column, if any.
    pub index: IndexKind,
}

/// One local table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table identity.
    pub id: TableId,
    /// Number of tuples.
    pub cardinality: u64,
    /// Columns in definition order.
    pub columns: Vec<ColumnDef>,
    /// Fixed per-tuple storage overhead in bytes.
    pub tuple_overhead: u32,
}

impl TableDef {
    /// Total tuple length in bytes (columns + overhead).
    pub fn tuple_len(&self) -> u32 {
        self.columns.iter().map(|c| c.width).sum::<u32>() + self.tuple_overhead
    }

    /// Length of a projected tuple carrying the given columns.
    pub fn projected_len(&self, cols: &[usize]) -> u32 {
        cols.iter()
            .filter_map(|&i| self.columns.get(i))
            .map(|c| c.width)
            .sum::<u32>()
            + self.tuple_overhead
    }

    /// The column with a clustered index, if any.
    pub fn clustered_column(&self) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.index == IndexKind::Clustered)
    }

    /// Whether column `i` carries any index.
    pub fn is_indexed(&self, i: usize) -> bool {
        self.columns
            .get(i)
            .is_some_and(|c| c.index != IndexKind::None)
    }
}

/// The schema of one local database.
#[derive(Debug, Clone, Default)]
pub struct LocalCatalog {
    tables: Vec<TableDef>,
}

impl LocalCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        LocalCatalog::default()
    }

    /// Registers a table; panics on duplicate ids (a schema bug).
    pub fn add_table(&mut self, table: TableDef) {
        assert!(
            self.table(table.id).is_none(),
            "duplicate table id {}",
            table.id
        );
        self.tables.push(table);
    }

    /// Looks a table up by id.
    pub fn table(&self, id: TableId) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.id == id)
    }

    /// Mutable lookup — used when occasionally-changing factors (schema
    /// changes, table growth) alter the local database.
    pub fn table_mut(&mut self, id: TableId) -> Option<&mut TableDef> {
        self.tables.iter_mut().find(|t| t.id == id)
    }

    /// Drops a table (e.g. a temporary table after a global join).
    /// Returns whether the table existed.
    pub fn remove_table(&mut self, id: TableId) -> bool {
        let before = self.tables.len();
        self.tables.retain(|t| t.id != id);
        self.tables.len() != before
    }

    /// All tables, in registration order.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> TableDef {
        TableDef {
            id: TableId(7),
            cardinality: 50_000,
            columns: (1..=9)
                .map(|i| ColumnDef {
                    name: format!("a{i}"),
                    width: 4,
                    domain_max: 10_000,
                    index: if i == 1 {
                        IndexKind::Clustered
                    } else if i == 3 {
                        IndexKind::NonClustered
                    } else {
                        IndexKind::None
                    },
                })
                .collect(),
            tuple_overhead: 8,
        }
    }

    #[test]
    fn tuple_len_sums_columns_and_overhead() {
        assert_eq!(sample_table().tuple_len(), 9 * 4 + 8);
    }

    #[test]
    fn projected_len_counts_selected_columns() {
        let t = sample_table();
        assert_eq!(t.projected_len(&[0, 4, 6]), 3 * 4 + 8);
        // Out-of-range columns are ignored rather than panicking.
        assert_eq!(t.projected_len(&[100]), 8);
    }

    #[test]
    fn clustered_column_found() {
        assert_eq!(sample_table().clustered_column(), Some(0));
    }

    #[test]
    fn index_lookup() {
        let t = sample_table();
        assert!(t.is_indexed(0));
        assert!(t.is_indexed(2));
        assert!(!t.is_indexed(4));
        assert!(!t.is_indexed(99));
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = LocalCatalog::new();
        c.add_table(sample_table());
        assert!(c.table(TableId(7)).is_some());
        assert!(c.table(TableId(8)).is_none());
        assert_eq!(c.tables().len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate table id")]
    fn duplicate_table_rejected() {
        let mut c = LocalCatalog::new();
        c.add_table(sample_table());
        c.add_table(sample_table());
    }

    #[test]
    fn display_formats_like_the_paper() {
        assert_eq!(TableId(3).to_string(), "R3");
    }
}
