//! A small SQL-ish surface for local queries.
//!
//! The paper writes its local queries as SQL
//! (`select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000`); this module
//! parses exactly that dialect into the [`Query`] AST:
//!
//! ```text
//! query     := SELECT projection FROM table [join] [WHERE conjunction]
//!              [ORDER BY column]
//! projection:= '*' | column (',' column)*
//! join      := JOIN table ON table '.' column '=' table '.' column
//! conjunction := predicate (AND predicate)*
//! predicate := [table '.'] column op number
//!            | [table '.'] column BETWEEN number AND number
//! op        := '<' | '>' | '<=' | '>='
//! ```
//!
//! Keywords are case-insensitive; tables are `R1`…`R12`-style names;
//! columns are the schema's column names (`a1`…`a9`). The parser resolves
//! names against a [`LocalCatalog`] so errors mention what actually exists.

use crate::catalog::{LocalCatalog, TableDef, TableId};
use crate::query::{JoinQuery, Predicate, Query, UnaryQuery};

/// A parse or resolution error, with a human-oriented message.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL error: {}", self.message)
    }
}

impl std::error::Error for SqlError {}

fn err<T>(message: impl Into<String>) -> Result<T, SqlError> {
    Err(SqlError {
        message: message.into(),
    })
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(u64),
    Comma,
    Dot,
    Star,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
}

fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '.' => {
                chars.next();
                tokens.push(Token::Dot);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Le);
                } else {
                    tokens.push(Token::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Ge);
                } else {
                    tokens.push(Token::Gt);
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v as u64))
                            .ok_or(SqlError {
                                message: "numeric literal overflows u64".into(),
                            })?;
                        chars.next();
                    } else if d == '_' {
                        chars.next(); // Allow 50_000 style separators.
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => return err(format!("unexpected character `{other}`")),
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a LocalCatalog,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => err(format!("expected `{kw}`, found {other:?}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => err(format!("expected an identifier, found {other:?}")),
        }
    }

    fn number(&mut self) -> Result<u64, SqlError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => err(format!("expected a number, found {other:?}")),
        }
    }

    fn resolve_table(&self, name: &str) -> Result<&'a TableDef, SqlError> {
        self.catalog
            .tables()
            .iter()
            .find(|t| t.id.to_string().eq_ignore_ascii_case(name))
            .ok_or(SqlError {
                message: format!(
                    "unknown table `{name}` (have: {})",
                    self.catalog
                        .tables()
                        .iter()
                        .map(|t| t.id.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            })
    }

    fn resolve_column(table: &TableDef, name: &str) -> Result<usize, SqlError> {
        table
            .columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or(SqlError {
                message: format!("table {} has no column `{name}`", table.id),
            })
    }
}

/// A parsed column reference: optional table qualifier plus column index.
#[derive(Debug, Clone, PartialEq)]
struct ColumnRef {
    table: Option<TableId>,
    name: String,
}

impl Parser<'_> {
    /// `[table '.'] column`
    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(Token::Dot)) {
            self.next();
            let col = self.ident()?;
            let table = self.resolve_table(&first)?.id;
            Ok(ColumnRef {
                table: Some(table),
                name: col,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                name: first,
            })
        }
    }

    /// One predicate; returns the column ref so the caller can route it to
    /// the proper operand.
    fn predicate(&mut self) -> Result<(ColumnRef, PredShape), SqlError> {
        let col = self.column_ref()?;
        if self.at_keyword("between") {
            self.next();
            let lo = self.number()?;
            self.expect_keyword("and")?;
            let hi = self.number()?;
            if hi < lo {
                return err(format!("BETWEEN bounds reversed: {lo} > {hi}"));
            }
            return Ok((col, PredShape::Between(lo, hi)));
        }
        match self.next() {
            Some(Token::Lt) => Ok((col, PredShape::Lt(self.number()?))),
            Some(Token::Gt) => Ok((col, PredShape::Gt(self.number()?))),
            Some(Token::Le) => Ok((col, PredShape::Le(self.number()?))),
            Some(Token::Ge) => Ok((col, PredShape::Ge(self.number()?))),
            other => err(format!("expected a comparison operator, found {other:?}")),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PredShape {
    Lt(u64),
    Gt(u64),
    Le(u64),
    Ge(u64),
    Between(u64, u64),
}

impl PredShape {
    fn into_predicate(self, column: usize) -> Predicate {
        match self {
            PredShape::Lt(v) => Predicate::lt(column, v),
            PredShape::Gt(v) => Predicate::gt(column, v),
            PredShape::Le(v) => Predicate {
                column,
                lo: None,
                hi: Some(v),
            },
            PredShape::Ge(v) => Predicate {
                column,
                lo: Some(v),
                hi: None,
            },
            PredShape::Between(lo, hi) => Predicate::between(column, lo, hi),
        }
    }
}

/// Parses one query against a local schema.
pub fn parse_query(catalog: &LocalCatalog, input: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        catalog,
    };
    p.expect_keyword("select")?;
    // Projection: '*' or a comma list of (possibly qualified) columns.
    let mut proj_refs: Vec<ColumnRef> = Vec::new();
    let star = matches!(p.peek(), Some(Token::Star));
    if star {
        p.next();
    } else {
        loop {
            proj_refs.push(p.column_ref()?);
            if matches!(p.peek(), Some(Token::Comma)) {
                p.next();
            } else {
                break;
            }
        }
    }
    p.expect_keyword("from")?;
    let left_name = p.ident()?;
    let left = p.resolve_table(&left_name)?;
    // Optional JOIN clause.
    let join = if p.at_keyword("join") {
        p.next();
        let right_name = p.ident()?;
        let right = p.resolve_table(&right_name)?;
        p.expect_keyword("on")?;
        let a = p.column_ref()?;
        match p.next() {
            Some(Token::Eq) => {}
            other => return err(format!("expected `=` in join condition, found {other:?}")),
        }
        let b = p.column_ref()?;
        Some((right, a, b))
    } else {
        None
    };
    // Optional WHERE clause.
    let mut predicates: Vec<(ColumnRef, PredShape)> = Vec::new();
    if p.at_keyword("where") {
        p.next();
        loop {
            predicates.push(p.predicate()?);
            if p.at_keyword("and") {
                p.next();
            } else {
                break;
            }
        }
    }
    // Optional ORDER BY clause (unary queries only).
    let mut order_ref: Option<ColumnRef> = None;
    if p.at_keyword("order") {
        p.next();
        p.expect_keyword("by")?;
        order_ref = Some(p.column_ref()?);
    }
    if p.peek().is_some() {
        return err(format!("trailing input from token {:?}", p.peek()));
    }

    match join {
        None => {
            let projection = if star {
                Vec::new()
            } else {
                proj_refs
                    .iter()
                    .map(|r| {
                        if let Some(t) = r.table {
                            if t != left.id {
                                return err(format!(
                                    "projection references {t}, not the FROM table {}",
                                    left.id
                                ));
                            }
                        }
                        Parser::resolve_column(left, &r.name)
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            let predicates = predicates
                .into_iter()
                .map(|(r, shape)| {
                    if let Some(t) = r.table {
                        if t != left.id {
                            return err(format!(
                                "predicate references {t}, not the FROM table {}",
                                left.id
                            ));
                        }
                    }
                    Ok(shape.into_predicate(Parser::resolve_column(left, &r.name)?))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let order_by = order_ref
                .map(|r| {
                    if let Some(t) = r.table {
                        if t != left.id {
                            return err(format!(
                                "ORDER BY references {t}, not the FROM table {}",
                                left.id
                            ));
                        }
                    }
                    Parser::resolve_column(left, &r.name)
                })
                .transpose()?;
            Ok(Query::Unary(UnaryQuery {
                table: left.id,
                projection,
                predicates,
                order_by,
            }))
        }
        Some((right, a, b)) => {
            if order_ref.is_some() {
                return err("ORDER BY is only supported on single-table queries");
            }
            // Join columns must be qualified to disambiguate.
            let side_of = |r: &ColumnRef| -> Result<(bool, usize), SqlError> {
                let Some(t) = r.table else {
                    return err(format!(
                        "join queries need qualified column references (got bare `{}`)",
                        r.name
                    ));
                };
                if t == left.id {
                    Ok((true, Parser::resolve_column(left, &r.name)?))
                } else if t == right.id {
                    Ok((false, Parser::resolve_column(right, &r.name)?))
                } else {
                    err(format!("{t} is not part of this join"))
                }
            };
            let (a_left, a_col) = side_of(&a)?;
            let (b_left, b_col) = side_of(&b)?;
            let (left_col, right_col) = match (a_left, b_left) {
                (true, false) => (a_col, b_col),
                (false, true) => (b_col, a_col),
                _ => return err("join condition must reference both tables"),
            };
            let mut left_predicates = Vec::new();
            let mut right_predicates = Vec::new();
            for (r, shape) in predicates {
                let (is_left, col) = side_of(&r)?;
                let pred = shape.into_predicate(col);
                if is_left {
                    left_predicates.push(pred);
                } else {
                    right_predicates.push(pred);
                }
            }
            let projection = if star {
                Vec::new()
            } else {
                proj_refs
                    .iter()
                    .map(|r| {
                        let (is_left, col) = side_of(r)?;
                        Ok((is_left, col))
                    })
                    .collect::<Result<Vec<_>, SqlError>>()?
            };
            Ok(Query::Join(JoinQuery {
                left: left.id,
                right: right.id,
                left_col,
                right_col,
                left_predicates,
                right_predicates,
                projection,
            }))
        }
    }
}

/// Renders a query back to the SQL dialect [`parse_query`] accepts.
///
/// Column names are resolved against the schema; unknown tables/columns
/// render as `?`, which will not re-parse — callers should only unparse
/// queries valid against the same catalog. `parse_query(to_sql(q)) == q`
/// holds for every valid query (tested by property).
pub fn to_sql(catalog: &LocalCatalog, query: &Query) -> String {
    let col_name = |table: TableId, col: usize| -> String {
        catalog
            .table(table)
            .and_then(|t| t.columns.get(col))
            .map_or_else(|| "?".to_string(), |c| c.name.clone())
    };
    let render_pred = |table: TableId, qualify: bool, p: &Predicate| -> String {
        let mut name = col_name(table, p.column);
        if qualify {
            name = format!("{table}.{name}");
        }
        match (p.lo, p.hi) {
            (Some(lo), Some(hi)) => format!("{name} between {lo} and {hi}"),
            (Some(lo), None) => format!("{name} >= {lo}"),
            (None, Some(hi)) => format!("{name} <= {hi}"),
            (None, None) => format!("{name} >= 0"),
        }
    };
    match query {
        Query::Unary(u) => {
            let projection = if u.projection.is_empty() {
                "*".to_string()
            } else {
                u.projection
                    .iter()
                    .map(|&c| col_name(u.table, c))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let mut sql = format!("select {projection} from {}", u.table);
            if !u.predicates.is_empty() {
                let preds: Vec<String> = u
                    .predicates
                    .iter()
                    .map(|p| render_pred(u.table, false, p))
                    .collect();
                sql.push_str(&format!(" where {}", preds.join(" and ")));
            }
            if let Some(col) = u.order_by {
                sql.push_str(&format!(" order by {}", col_name(u.table, col)));
            }
            sql
        }
        Query::Join(j) => {
            let projection = if j.projection.is_empty() {
                "*".to_string()
            } else {
                j.projection
                    .iter()
                    .map(|&(from_left, c)| {
                        let t = if from_left { j.left } else { j.right };
                        format!("{t}.{}", col_name(t, c))
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let mut sql = format!(
                "select {projection} from {} join {} on {}.{} = {}.{}",
                j.left,
                j.right,
                j.left,
                col_name(j.left, j.left_col),
                j.right,
                col_name(j.right, j.right_col)
            );
            let mut preds: Vec<String> = j
                .left_predicates
                .iter()
                .map(|p| render_pred(j.left, true, p))
                .collect();
            preds.extend(
                j.right_predicates
                    .iter()
                    .map(|p| render_pred(j.right, true, p)),
            );
            if !preds.is_empty() {
                sql.push_str(&format!(" where {}", preds.join(" and ")));
            }
            sql
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::standard_database;
    use crate::selectivity::unary_sizes;

    fn db() -> LocalCatalog {
        standard_database(42)
    }

    #[test]
    fn parses_the_papers_query() {
        let db = db();
        let q = parse_query(
            &db,
            "select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000",
        )
        .unwrap();
        let Query::Unary(u) = q else {
            panic!("expected a unary query");
        };
        assert_eq!(u.table, TableId(7));
        assert_eq!(u.projection, vec![0, 4, 6]);
        assert_eq!(u.predicates.len(), 2);
        assert_eq!(u.predicates[0], Predicate::gt(2, 300));
        assert_eq!(u.predicates[1], Predicate::lt(7, 2000));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let db = db();
        assert_eq!(
            parse_query(&db, "SELECT a1 FROM r3 WHERE a2 < 10").unwrap(),
            parse_query(&db, "select A1 from R3 where A2 < 10").unwrap()
        );
    }

    #[test]
    fn star_projection_means_all_columns() {
        let db = db();
        let Query::Unary(u) = parse_query(&db, "select * from R2").unwrap() else {
            panic!("expected unary");
        };
        assert!(u.projection.is_empty());
        assert!(u.predicates.is_empty());
    }

    #[test]
    fn between_and_inclusive_ops() {
        let db = db();
        let Query::Unary(u) = parse_query(
            &db,
            "select a1 from R4 where a2 between 10 and 20 and a4 >= 5 and a5 <= 7",
        )
        .unwrap() else {
            panic!("expected unary");
        };
        assert_eq!(u.predicates[0], Predicate::between(1, 10, 20));
        assert_eq!(
            u.predicates[1],
            Predicate {
                column: 3,
                lo: Some(5),
                hi: None
            }
        );
        assert_eq!(
            u.predicates[2],
            Predicate {
                column: 4,
                lo: None,
                hi: Some(7)
            }
        );
    }

    #[test]
    fn numeric_separators_allowed() {
        let db = db();
        let Query::Unary(u) = parse_query(&db, "select a1 from R7 where a3 < 50_000").unwrap()
        else {
            panic!("expected unary");
        };
        assert_eq!(u.predicates[0], Predicate::lt(2, 50_000));
    }

    #[test]
    fn parses_a_join_with_routing() {
        let db = db();
        let q = parse_query(
            &db,
            "select R2.a1, R3.a2 from R2 join R3 on R2.a5 = R3.a5 \
             where R2.a2 < 500 and R3.a6 > 100",
        )
        .unwrap();
        let Query::Join(j) = q else {
            panic!("expected a join");
        };
        assert_eq!(j.left, TableId(2));
        assert_eq!(j.right, TableId(3));
        assert_eq!(j.left_col, 4);
        assert_eq!(j.right_col, 4);
        assert_eq!(j.left_predicates.len(), 1);
        assert_eq!(j.right_predicates.len(), 1);
        assert_eq!(j.projection, vec![(true, 0), (false, 1)]);
    }

    #[test]
    fn join_condition_order_is_normalized() {
        let db = db();
        let a = parse_query(&db, "select * from R2 join R3 on R2.a5 = R3.a6").unwrap();
        let b = parse_query(&db, "select * from R2 join R3 on R3.a6 = R2.a5").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parsed_query_executes() {
        let db = db();
        let q = parse_query(&db, "select a1 from R5 where a2 < 100").unwrap();
        let Query::Unary(u) = &q else { panic!() };
        let t = db.table(u.table).unwrap();
        let s = unary_sizes(t, u);
        assert!(s.result <= s.operand);
    }

    #[test]
    fn good_error_messages() {
        let db = db();
        let cases = [
            ("select a1 from R99", "unknown table"),
            ("select zz from R2", "no column"),
            ("select a1 from R2 where a2", "comparison operator"),
            ("select a1 from R2 where a2 between 20 and 10", "reversed"),
            ("select a1 R2", "expected `from`"),
            ("select a1 from R2 extra", "trailing input"),
            ("select * from R2 join R3 on a5 = R3.a5", "qualified"),
            ("select R4.a1 from R2 where a1 < 5", "not the FROM table"),
        ];
        for (sql, needle) in cases {
            let e = parse_query(&db, sql).unwrap_err();
            assert!(
                e.message.contains(needle),
                "`{sql}` -> `{}` (wanted `{needle}`)",
                e.message
            );
        }
    }

    #[test]
    fn rejects_garbage_characters() {
        let db = db();
        assert!(parse_query(&db, "select a1 from R2 where a2 < $5").is_err());
    }

    #[test]
    fn overflowing_number_is_an_error() {
        let db = db();
        assert!(parse_query(
            &db,
            "select a1 from R2 where a2 < 99999999999999999999999999"
        )
        .is_err());
    }
    #[test]
    fn order_by_parses_and_roundtrips() {
        let db = db();
        let q = parse_query(&db, "select a1 from R4 where a2 < 100 order by a6").unwrap();
        let Query::Unary(u) = &q else { panic!() };
        assert_eq!(u.order_by, Some(5));
        let rendered = to_sql(&db, &q);
        assert_eq!(parse_query(&db, &rendered).unwrap(), q);
        // ORDER BY on a join is rejected with a clear message.
        let e =
            parse_query(&db, "select * from R2 join R3 on R2.a5 = R3.a5 order by a1").unwrap_err();
        assert!(e.message.contains("single-table"), "{}", e.message);
        // ORDER BY on a foreign table is rejected.
        let e = parse_query(&db, "select a1 from R4 order by R2.a1").unwrap_err();
        assert!(e.message.contains("not the FROM table"), "{}", e.message);
    }

    #[test]
    fn to_sql_roundtrips_hand_queries() {
        let db = db();
        for sql in [
            "select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000",
            "select * from R2",
            "select a1 from R4 where a2 between 10 and 20",
            "select R2.a1, R3.a2 from R2 join R3 on R2.a5 = R3.a5 \
             where R2.a2 < 500 and R3.a6 > 100",
        ] {
            let q = parse_query(&db, sql).unwrap();
            let rendered = to_sql(&db, &q);
            let q2 = parse_query(&db, &rendered).unwrap();
            assert_eq!(q, q2, "round-trip changed `{sql}` -> `{rendered}`");
        }
    }
}
