//! # mdbs-sim
//!
//! A deterministic simulator of **autonomous local database systems** and of
//! the **dynamic environment** they run in, standing in for the paper's
//! testbed (Oracle 8.0 and DB2 5.0 under Solaris on SUN UltraSparc 2
//! workstations driven by a CORDS-MDBS "load builder").
//!
//! The multi-states query sampling method treats each local DBS as a black
//! box: it can only *submit a query and observe its elapsed cost*. This
//! crate provides exactly that black box:
//!
//! * [`machine`] — a simulated host with CPU time-slicing, I/O queueing and
//!   memory pressure (swap thrashing), producing the super-linear cost
//!   blow-up of paper Figure 1,
//! * [`contention`] — the load builder: background-process populations and
//!   contention-level trajectories (uniform, clustered, sweeps),
//! * [`sysstats`] — Unix-style system statistics (paper Table 1) derived
//!   from the machine state, used for probing-cost *estimation* (eq. (2)),
//! * [`catalog`], [`datagen`] — local schemas and the paper's synthetic
//!   databases (12 tables, 3,000–250,000 tuples, varied indexes),
//! * [`query`], [`selectivity`] — unary and 2-way-join local queries and
//!   their result-size derivation,
//! * [`access`], [`engine`] — the local DBMS's own access-path choice and
//!   ground-truth cost model (init + I/O + CPU, inflated by contention),
//! * [`vendor`] — per-DBMS cost-constant profiles (`Oracle8`-like vs
//!   `Db2V5`-like),
//! * [`agent`] — the MDBS agent façade the method talks to: `run`, `probe`,
//!   `stats`, `set_load`.
//!
//! Everything is seeded and reproducible; "elapsed time" is virtual seconds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
pub mod agent;
pub mod catalog;
pub mod contention;
pub mod datagen;
pub mod engine;
pub mod events;
pub mod machine;
pub mod query;
pub mod selectivity;
pub mod sql;
pub mod sysstats;
pub mod trace;
pub mod util;
pub mod vendor;

pub use agent::{Execution, MdbsAgent};
pub use catalog::{ColumnDef, IndexKind, LocalCatalog, TableDef, TableId};
pub use contention::{ContentionProfile, Load, LoadBuilder};
pub use events::EnvironmentEvent;
pub use machine::{Machine, MachineSpec};
pub use query::{JoinQuery, Predicate, Query, UnaryQuery};
pub use sql::parse_query;
pub use sysstats::SystemStats;
pub use vendor::VendorProfile;
