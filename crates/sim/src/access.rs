//! Access-path selection by the simulated local DBMS.
//!
//! The local optimizer is part of the black box: the MDBS only *predicts*
//! which access method is "most likely" to be used (that prediction is what
//! drives query classification, paper §4.1), while the local DBS actually
//! picks one. Keeping the two decisions in separate crates mirrors the real
//! information asymmetry — and the prediction rule in `mdbs-core` is
//! deliberately written against the same observable schema facts (index
//! kinds, selectivities) that this module uses.

use crate::catalog::{IndexKind, TableDef};
use crate::query::{JoinQuery, UnaryQuery};
use crate::selectivity::{predicate_selectivity, primary_selectivity};
use crate::vendor::VendorProfile;

/// The physical operator a local DBS executes a unary query with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryAccess {
    /// Full sequential scan of the operand table.
    SeqScan,
    /// Range scan through the clustered index.
    ClusteredIndexScan,
    /// Lookup through a non-clustered index (one page per fetched tuple).
    NonClusteredIndexScan,
}

/// The physical operator for a two-way join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAccess {
    /// Block nested-loop join (no usable index).
    NestedLoop,
    /// Sort-merge join (no usable index, both inputs large).
    SortMerge,
    /// Index nested-loop join driven through the inner table's index.
    IndexNestedLoop,
}

impl std::fmt::Display for UnaryAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            UnaryAccess::SeqScan => "SeqScan",
            UnaryAccess::ClusteredIndexScan => "ClusteredIndexScan",
            UnaryAccess::NonClusteredIndexScan => "NonClusteredIndexScan",
        };
        f.write_str(name)
    }
}

impl std::fmt::Display for JoinAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            JoinAccess::NestedLoop => "NestedLoop",
            JoinAccess::SortMerge => "SortMerge",
            JoinAccess::IndexNestedLoop => "IndexNestedLoop",
        };
        f.write_str(name)
    }
}

/// Picks the access method for a unary query the way a cost-based local
/// optimizer of the era would:
///
/// 1. a clustered index matching a predicate always wins,
/// 2. a non-clustered index is used only when the predicate is selective
///    enough (below the vendor's cutoff),
/// 3. otherwise scan sequentially.
pub fn choose_unary(table: &TableDef, q: &UnaryQuery, vendor: &VendorProfile) -> UnaryAccess {
    let mut best: Option<(UnaryAccess, f64)> = None;
    for p in &q.predicates {
        let Some(col) = table.columns.get(p.column) else {
            continue;
        };
        let sel = predicate_selectivity(table, p);
        match col.index {
            IndexKind::Clustered => {
                // Clustered range scans beat anything for sel < ~1.
                if sel < 0.95 {
                    return UnaryAccess::ClusteredIndexScan;
                }
            }
            IndexKind::NonClustered => {
                if sel <= vendor.unclustered_cutoff && best.map_or(true, |(_, s)| sel < s) {
                    best = Some((UnaryAccess::NonClusteredIndexScan, sel));
                }
            }
            IndexKind::None => {}
        }
    }
    best.map_or(UnaryAccess::SeqScan, |(a, _)| a)
}

/// Picks the access method for a join:
///
/// 1. an index on the inner join column enables index nested loops when the
///    outer intermediate is small enough,
/// 2. otherwise sort-merge when both inputs are large,
/// 3. otherwise block nested loops.
pub fn choose_join(
    left: &TableDef,
    right: &TableDef,
    q: &JoinQuery,
    vendor: &VendorProfile,
) -> JoinAccess {
    let right_indexed = right
        .columns
        .get(q.right_col)
        .is_some_and(|c| c.index != IndexKind::None);
    let left_indexed = left
        .columns
        .get(q.left_col)
        .is_some_and(|c| c.index != IndexKind::None);
    let li = left.cardinality as f64 * primary_selectivity(left, &q.left_predicates);
    let ri = right.cardinality as f64 * primary_selectivity(right, &q.right_predicates);
    if (right_indexed && li <= 0.3 * right.cardinality as f64)
        || (left_indexed && ri <= 0.3 * left.cardinality as f64)
    {
        return JoinAccess::IndexNestedLoop;
    }
    let big = vendor.buffer_pages as f64 * vendor.page_size as f64 / 64.0;
    if li > big && ri > big {
        JoinAccess::SortMerge
    } else {
        JoinAccess::NestedLoop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, TableId};
    use crate::query::Predicate;

    fn table(card: u64, indexes: &[(usize, IndexKind)]) -> TableDef {
        let mut columns: Vec<ColumnDef> = (0..9)
            .map(|i| ColumnDef {
                name: format!("a{}", i + 1),
                width: 4,
                domain_max: 9_999,
                index: IndexKind::None,
            })
            .collect();
        for &(i, kind) in indexes {
            columns[i].index = kind;
        }
        TableDef {
            id: TableId(1),
            cardinality: card,
            columns,
            tuple_overhead: 8,
        }
    }

    fn unary(preds: Vec<Predicate>) -> UnaryQuery {
        UnaryQuery {
            table: TableId(1),
            projection: vec![0],
            predicates: preds,
            order_by: None,
        }
    }

    #[test]
    fn no_index_means_seqscan() {
        let t = table(10_000, &[]);
        let v = VendorProfile::oracle8();
        assert_eq!(
            choose_unary(&t, &unary(vec![Predicate::lt(4, 100)]), &v),
            UnaryAccess::SeqScan
        );
    }

    #[test]
    fn clustered_index_wins() {
        let t = table(10_000, &[(0, IndexKind::Clustered)]);
        let v = VendorProfile::oracle8();
        assert_eq!(
            choose_unary(&t, &unary(vec![Predicate::lt(0, 5_000)]), &v),
            UnaryAccess::ClusteredIndexScan
        );
    }

    #[test]
    fn nonclustered_index_needs_selectivity() {
        let t = table(10_000, &[(2, IndexKind::NonClustered)]);
        let v = VendorProfile::oracle8();
        // 5% selectivity -> below Oracle's 12% cutoff -> index used.
        assert_eq!(
            choose_unary(&t, &unary(vec![Predicate::lt(2, 500)]), &v),
            UnaryAccess::NonClusteredIndexScan
        );
        // 50% selectivity -> seq scan.
        assert_eq!(
            choose_unary(&t, &unary(vec![Predicate::lt(2, 5_000)]), &v),
            UnaryAccess::SeqScan
        );
    }

    #[test]
    fn vendor_cutoffs_differ() {
        let t = table(10_000, &[(2, IndexKind::NonClustered)]);
        // 15% selectivity: DB2 (cutoff 18%) uses the index, Oracle (12%) not.
        let q = unary(vec![Predicate::lt(2, 1_500)]);
        assert_eq!(
            choose_unary(&t, &q, &VendorProfile::db2v5()),
            UnaryAccess::NonClusteredIndexScan
        );
        assert_eq!(
            choose_unary(&t, &q, &VendorProfile::oracle8()),
            UnaryAccess::SeqScan
        );
    }

    #[test]
    fn join_without_index_small_inputs_nested_loop() {
        let l = table(5_000, &[]);
        let r = table(5_000, &[]);
        let q = JoinQuery {
            left: l.id,
            right: r.id,
            left_col: 4,
            right_col: 4,
            left_predicates: vec![],
            right_predicates: vec![],
            projection: vec![],
        };
        assert_eq!(
            choose_join(&l, &r, &q, &VendorProfile::oracle8()),
            JoinAccess::NestedLoop
        );
    }

    #[test]
    fn join_with_inner_index_uses_it() {
        let l = table(1_000, &[]);
        let r = table(100_000, &[(4, IndexKind::NonClustered)]);
        let q = JoinQuery {
            left: l.id,
            right: r.id,
            left_col: 4,
            right_col: 4,
            left_predicates: vec![],
            right_predicates: vec![],
            projection: vec![],
        };
        assert_eq!(
            choose_join(&l, &r, &q, &VendorProfile::oracle8()),
            JoinAccess::IndexNestedLoop
        );
    }

    #[test]
    fn huge_unindexed_join_sort_merges() {
        let l = table(250_000, &[]);
        let r = table(250_000, &[]);
        let q = JoinQuery {
            left: l.id,
            right: r.id,
            left_col: 4,
            right_col: 4,
            left_predicates: vec![],
            right_predicates: vec![],
            projection: vec![],
        };
        assert_eq!(
            choose_join(&l, &r, &q, &VendorProfile::db2v5()),
            JoinAccess::SortMerge
        );
    }
}
