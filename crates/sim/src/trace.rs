//! Execution tracing for the MDBS agent.
//!
//! The CORDS-MDBS agent observes every local query it submits; a bounded
//! trace of those observations is what drift monitors, dashboards and
//! post-mortems read. [`ExecutionTrace`] is a ring buffer of
//! [`TraceEntry`] records with cheap aggregate queries over the window.

use crate::agent::ChosenAccess;
use std::collections::VecDeque;

/// One traced execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Monotonic sequence number (the agent's execution counter).
    pub seq: u64,
    /// Virtual timestamp (the agent's clock when the query finished).
    pub at_s: f64,
    /// Short description of the query.
    pub query: String,
    /// Observed elapsed cost.
    pub cost_s: f64,
    /// The physical operator used.
    pub access: ChosenAccess,
    /// Result cardinality.
    pub result_card: u64,
    /// Background processes at execution time.
    pub procs: f64,
}

/// A bounded ring buffer of recent executions.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    total_recorded: u64,
}

impl ExecutionTrace {
    /// A trace keeping the most recent `capacity` executions.
    pub fn new(capacity: usize) -> Self {
        ExecutionTrace {
            capacity: capacity.max(1),
            entries: VecDeque::with_capacity(capacity.max(1)),
            total_recorded: 0,
        }
    }

    /// Records one execution, evicting the oldest entry when full.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
        self.total_recorded += 1;
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total executions ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Mean cost over the window.
    pub fn mean_cost(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.cost_s).sum::<f64>() / self.entries.len() as f64
    }

    /// The most expensive retained execution.
    pub fn slowest(&self) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.cost_s.partial_cmp(&b.cost_s).expect("finite costs"))
    }

    /// Per-access-path counts over the window.
    pub fn access_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for e in &self.entries {
            *counts.entry(e.access.to_string()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Renders a compact report of the window.
    pub fn report(&self) -> String {
        let mut out = format!(
            "trace: {} retained of {} recorded, mean cost {:.2}s\n",
            self.len(),
            self.total_recorded(),
            self.mean_cost()
        );
        for (access, n) in self.access_histogram() {
            out.push_str(&format!("  {access}: {n}\n"));
        }
        if let Some(s) = self.slowest() {
            out.push_str(&format!(
                "  slowest: {:.2}s ({}) under {:.0} procs\n",
                s.cost_s, s.query, s.procs
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::UnaryAccess;

    fn entry(seq: u64, cost: f64) -> TraceEntry {
        TraceEntry {
            seq,
            at_s: seq as f64,
            query: format!("q{seq}"),
            cost_s: cost,
            access: ChosenAccess::Unary(UnaryAccess::SeqScan),
            result_card: 10,
            procs: 50.0,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = ExecutionTrace::new(3);
        for i in 0..5 {
            t.record(entry(i, i as f64));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        let seqs: Vec<u64> = t.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn aggregates_over_the_window() {
        let mut t = ExecutionTrace::new(10);
        for (i, c) in [1.0, 5.0, 3.0].iter().enumerate() {
            t.record(entry(i as u64, *c));
        }
        assert!((t.mean_cost() - 3.0).abs() < 1e-12);
        assert_eq!(t.slowest().unwrap().cost_s, 5.0);
        let hist = t.access_histogram();
        assert_eq!(hist, vec![("SeqScan".to_string(), 3)]);
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = ExecutionTrace::new(4);
        assert!(t.is_empty());
        assert_eq!(t.mean_cost(), 0.0);
        assert!(t.slowest().is_none());
        assert!(t.report().contains("0 retained"));
    }

    #[test]
    fn report_mentions_the_slowest_query() {
        let mut t = ExecutionTrace::new(4);
        t.record(entry(0, 1.0));
        t.record(entry(1, 9.0));
        assert!(t.report().contains("q1"));
    }
}
