//! Predicate selectivities and result-size derivation.
//!
//! Column values are uniform integers over known domains, so selectivities
//! — and therefore intermediate and result cardinalities — are exact,
//! deterministic functions of the query. This is what lets the simulator
//! skip materializing tuples while keeping the regression problem faithful:
//! the *cost* side is what carries the noise, not the cardinalities.
//!
//! Terminology follows the paper's Table 3:
//! * the **operand** cardinality `N_O` is the raw table size,
//! * the **intermediate** cardinality `N_I` is the tuples surviving the
//!   most selective ("primary") predicate — the portion an index scan would
//!   fetch,
//! * the **result** cardinality `N_R` is the tuples surviving *all*
//!   predicates.

use crate::catalog::TableDef;
use crate::query::{JoinQuery, Predicate, UnaryQuery};

/// Fraction of a uniform column's rows accepted by a range predicate.
pub fn predicate_selectivity(table: &TableDef, pred: &Predicate) -> f64 {
    let Some(col) = table.columns.get(pred.column) else {
        return 1.0; // Unknown column: treat as non-filtering.
    };
    let domain = col.domain_max as f64 + 1.0;
    let lo = pred.lo.unwrap_or(0).min(col.domain_max) as f64;
    let hi = pred.hi.unwrap_or(col.domain_max).min(col.domain_max) as f64;
    if hi < lo {
        return 0.0;
    }
    ((hi - lo + 1.0) / domain).clamp(0.0, 1.0)
}

/// Combined selectivity of conjunctive predicates (independence assumed).
pub fn conjunctive_selectivity(table: &TableDef, preds: &[Predicate]) -> f64 {
    preds
        .iter()
        .map(|p| predicate_selectivity(table, p))
        .product()
}

/// Selectivity of the most selective single predicate (`1.0` when there are
/// none) — the share of the table an index on that predicate's column would
/// have to fetch.
pub fn primary_selectivity(table: &TableDef, preds: &[Predicate]) -> f64 {
    preds
        .iter()
        .map(|p| predicate_selectivity(table, p))
        .fold(1.0, f64::min)
}

/// Derived cardinalities of a unary query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnarySizes {
    /// Operand cardinality `N_O`.
    pub operand: u64,
    /// Intermediate cardinality `N_I` (after the primary predicate).
    pub intermediate: u64,
    /// Result cardinality `N_R` (after all predicates).
    pub result: u64,
}

/// Computes `N_O`, `N_I`, `N_R` for a unary query.
pub fn unary_sizes(table: &TableDef, q: &UnaryQuery) -> UnarySizes {
    let n = table.cardinality as f64;
    let inter = n * primary_selectivity(table, &q.predicates);
    let result = n * conjunctive_selectivity(table, &q.predicates);
    UnarySizes {
        operand: table.cardinality,
        intermediate: inter.round() as u64,
        result: result.round() as u64,
    }
}

/// Derived cardinalities of a join query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinSizes {
    /// Left operand cardinality `N_O1`.
    pub left_operand: u64,
    /// Right operand cardinality `N_O2`.
    pub right_operand: u64,
    /// Left intermediate cardinality `N_I1` (after left local predicates).
    pub left_intermediate: u64,
    /// Right intermediate cardinality `N_I2` (after right local predicates).
    pub right_intermediate: u64,
    /// Join result cardinality `N_R`.
    pub result: u64,
}

impl JoinSizes {
    /// `N_I1 × N_I2`, the Cartesian product of the intermediates —
    /// a basic explanatory variable of the paper's join classes.
    pub fn cartesian(&self) -> u128 {
        self.left_intermediate as u128 * self.right_intermediate as u128
    }
}

/// Computes the cardinalities of a two-way equijoin.
///
/// The equijoin selectivity over uniform columns is `1 / max(d1, d2)` where
/// `d` are the join-column domain sizes (containment assumption).
pub fn join_sizes(left: &TableDef, right: &TableDef, q: &JoinQuery) -> JoinSizes {
    let li = left.cardinality as f64 * conjunctive_selectivity(left, &q.left_predicates);
    let ri = right.cardinality as f64 * conjunctive_selectivity(right, &q.right_predicates);
    let d1 = left
        .columns
        .get(q.left_col)
        .map_or(1.0, |c| c.domain_max as f64 + 1.0);
    let d2 = right
        .columns
        .get(q.right_col)
        .map_or(1.0, |c| c.domain_max as f64 + 1.0);
    let join_sel = 1.0 / d1.max(d2).max(1.0);
    JoinSizes {
        left_operand: left.cardinality,
        right_operand: right.cardinality,
        left_intermediate: li.round() as u64,
        right_intermediate: ri.round() as u64,
        result: (li * ri * join_sel).round() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, IndexKind, TableId};

    fn table(card: u64, domains: &[u64]) -> TableDef {
        TableDef {
            id: TableId(1),
            cardinality: card,
            columns: domains
                .iter()
                .enumerate()
                .map(|(i, &d)| ColumnDef {
                    name: format!("a{}", i + 1),
                    width: 4,
                    domain_max: d,
                    index: IndexKind::None,
                })
                .collect(),
            tuple_overhead: 8,
        }
    }

    #[test]
    fn full_range_predicate_selects_everything() {
        let t = table(1000, &[99]);
        let p = Predicate::between(0, 0, 99);
        assert!((predicate_selectivity(&t, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_range_selects_half() {
        let t = table(1000, &[99]); // domain {0..99}, 100 values
        let p = Predicate::between(0, 0, 49);
        assert!((predicate_selectivity(&t, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_range_selects_nothing() {
        let t = table(1000, &[99]);
        let p = Predicate {
            column: 0,
            lo: Some(60),
            hi: Some(40),
        };
        assert_eq!(predicate_selectivity(&t, &p), 0.0);
    }

    #[test]
    fn unknown_column_is_non_filtering() {
        let t = table(1000, &[99]);
        assert_eq!(predicate_selectivity(&t, &Predicate::gt(5, 10)), 1.0);
    }

    #[test]
    fn conjunction_multiplies() {
        let t = table(10_000, &[99, 99]);
        let preds = vec![Predicate::between(0, 0, 49), Predicate::between(1, 0, 9)];
        assert!((conjunctive_selectivity(&t, &preds) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn unary_sizes_track_selectivities() {
        let t = table(10_000, &[99, 99]);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![],
            predicates: vec![Predicate::between(0, 0, 49), Predicate::between(1, 0, 9)],
            order_by: None,
        };
        let s = unary_sizes(&t, &q);
        assert_eq!(s.operand, 10_000);
        assert_eq!(s.intermediate, 1_000); // Most selective pred: 10%.
        assert_eq!(s.result, 500);
        // Invariant: N_R <= N_I <= N_O.
        assert!(s.result <= s.intermediate && s.intermediate <= s.operand);
    }

    #[test]
    fn unary_without_predicates_is_identity() {
        let t = table(500, &[9]);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![],
            order_by: None,
        };
        let s = unary_sizes(&t, &q);
        assert_eq!(s.intermediate, 500);
        assert_eq!(s.result, 500);
    }

    #[test]
    fn join_sizes_use_domain_containment() {
        let l = table(1_000, &[99]); // domain 100
        let r = table(2_000, &[199]); // domain 200
        let q = JoinQuery {
            left: l.id,
            right: r.id,
            left_col: 0,
            right_col: 0,
            left_predicates: vec![],
            right_predicates: vec![],
            projection: vec![],
        };
        let s = join_sizes(&l, &r, &q);
        // 1000 * 2000 / 200 = 10,000.
        assert_eq!(s.result, 10_000);
        assert_eq!(s.cartesian(), 2_000_000);
    }

    #[test]
    fn join_local_predicates_shrink_intermediates() {
        let l = table(1_000, &[99]);
        let r = table(1_000, &[99]);
        let q = JoinQuery {
            left: l.id,
            right: r.id,
            left_col: 0,
            right_col: 0,
            left_predicates: vec![Predicate::between(0, 0, 49)],
            right_predicates: vec![Predicate::between(0, 0, 9)],
            projection: vec![],
        };
        let s = join_sizes(&l, &r, &q);
        assert_eq!(s.left_intermediate, 500);
        assert_eq!(s.right_intermediate, 100);
        assert!(s.result <= s.left_intermediate * s.right_intermediate);
    }
}
