//! Unix-style system statistics (paper Table 1).
//!
//! The paper lists the statistics `vmstat`/`iostat`/`sar` expose on a
//! dynamic Solaris host — run-queue lengths, CPU percentages, memory and
//! swap usage, I/O rates. The probing-cost *estimation* approach (§3.3,
//! eq. (2)) regresses the probing query's cost on a few of these
//! ("such as CPU load, I/O utilization, and size of used memory space")
//! so the contention state can be determined without actually executing
//! the probe.
//!
//! [`SystemStats::observe`] derives a noisy snapshot from the simulated
//! machine, mimicking what an environment monitor would read.

use crate::machine::Machine;
use mdbs_stats::rng::Rng;

/// A snapshot of the frequently-changing environmental statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStats {
    /// Number of processes in the run queue (cf. `r` in vmstat).
    pub running_procs: f64,
    /// 1-minute load average.
    pub load_avg_1m: f64,
    /// Percentage of CPU time spent in user+system (0–100).
    pub cpu_busy_pct: f64,
    /// Physical reads+writes per second (cf. iostat).
    pub io_per_sec: f64,
    /// Percentage of disk utilization (0–100).
    pub disk_util_pct: f64,
    /// Used memory in megabytes.
    pub mem_used_mb: f64,
    /// Used swap in megabytes.
    pub swap_used_mb: f64,
    /// Pages swapped in per second.
    pub swap_in_per_sec: f64,
}

impl SystemStats {
    /// Reads the statistics off a machine, with measurement noise.
    ///
    /// The mapping is intentionally *indirect* (saturating, noisy): the
    /// method must not be able to read the true process count straight off
    /// a counter, because on real hardware it cannot.
    pub fn observe(machine: &Machine, rng: &mut Rng) -> SystemStats {
        let load = machine.load();
        let spec = machine.spec();
        let procs = load.procs;
        let mem_used = (spec.base_mem_mb + procs * spec.mem_per_proc_mb).min(spec.phys_mem_mb);
        let over_mem =
            (spec.base_mem_mb + procs * spec.mem_per_proc_mb - spec.phys_mem_mb).max(0.0);
        let cpu_busy = 100.0 * (1.0 - 1.0 / machine.cpu_factor());
        let disk_util = 100.0 * (1.0 - 1.0 / machine.io_factor());
        let jitter = |rng: &mut Rng, v: f64, rel: f64| (v * rng.normal(1.0, rel)).max(0.0);
        SystemStats {
            running_procs: jitter(rng, procs * load.cpu_intensity * 0.6, 0.08),
            load_avg_1m: jitter(rng, procs * 0.05 * load.cpu_intensity, 0.05),
            cpu_busy_pct: jitter(rng, cpu_busy, 0.04).min(100.0),
            io_per_sec: jitter(rng, 20.0 + procs * load.io_intensity * 2.5, 0.06),
            disk_util_pct: jitter(rng, disk_util, 0.04).min(100.0),
            mem_used_mb: jitter(rng, mem_used, 0.02).min(spec.phys_mem_mb),
            swap_used_mb: jitter(rng, over_mem, 0.05),
            swap_in_per_sec: jitter(rng, over_mem * (machine.thrash_factor() - 1.0) * 0.5, 0.10),
        }
    }

    /// The explanatory vector used by probing-cost estimation (eq. (2)):
    /// CPU load, I/O utilization, used memory and swap traffic.
    pub fn probe_predictors(&self) -> Vec<f64> {
        vec![
            self.load_avg_1m,
            self.disk_util_pct,
            self.mem_used_mb,
            self.swap_in_per_sec,
        ]
    }

    /// Human-readable names aligned with [`Self::probe_predictors`].
    pub fn probe_predictor_names() -> &'static [&'static str] {
        &[
            "load_avg_1m",
            "disk_util_pct",
            "mem_used_mb",
            "swap_in_per_sec",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::Load;
    use crate::machine::{Machine, MachineSpec};

    fn machine_with(procs: f64) -> Machine {
        let mut m = Machine::new(MachineSpec::default());
        m.set_load(Load::background(procs));
        m
    }

    #[test]
    fn idle_machine_reads_low() {
        let mut rng = Rng::seed_from_u64(1);
        let s = SystemStats::observe(&machine_with(0.0), &mut rng);
        assert!(s.cpu_busy_pct < 1.0);
        assert!(s.swap_used_mb == 0.0);
        assert!(s.running_procs < 1.0);
    }

    #[test]
    fn stats_grow_with_load() {
        let mut rng = Rng::seed_from_u64(2);
        let avg = |procs: f64, rng: &mut Rng| {
            let m = machine_with(procs);
            let draws: Vec<SystemStats> = (0..50).map(|_| SystemStats::observe(&m, rng)).collect();
            (
                draws.iter().map(|s| s.cpu_busy_pct).sum::<f64>() / 50.0,
                draws.iter().map(|s| s.io_per_sec).sum::<f64>() / 50.0,
                draws.iter().map(|s| s.mem_used_mb).sum::<f64>() / 50.0,
            )
        };
        let lo = avg(20.0, &mut rng);
        let hi = avg(100.0, &mut rng);
        assert!(hi.0 > lo.0);
        assert!(hi.1 > lo.1);
        assert!(hi.2 > lo.2);
    }

    #[test]
    fn swap_activity_only_under_memory_pressure() {
        let mut rng = Rng::seed_from_u64(3);
        let calm = SystemStats::observe(&machine_with(30.0), &mut rng);
        assert_eq!(calm.swap_in_per_sec, 0.0);
        let thrashing = SystemStats::observe(&machine_with(130.0), &mut rng);
        assert!(thrashing.swap_in_per_sec > 0.0);
        assert!(thrashing.swap_used_mb > 0.0);
    }

    #[test]
    fn percentages_are_bounded() {
        let mut rng = Rng::seed_from_u64(4);
        for procs in [0.0, 50.0, 200.0] {
            let s = SystemStats::observe(&machine_with(procs), &mut rng);
            assert!((0.0..=100.0).contains(&s.cpu_busy_pct));
            assert!((0.0..=100.0).contains(&s.disk_util_pct));
        }
    }

    #[test]
    fn predictor_vector_matches_names() {
        let mut rng = Rng::seed_from_u64(5);
        let s = SystemStats::observe(&machine_with(10.0), &mut rng);
        assert_eq!(
            s.probe_predictors().len(),
            SystemStats::probe_predictor_names().len()
        );
    }
}
