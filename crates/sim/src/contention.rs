//! The load builder: background-process populations and contention
//! trajectories.
//!
//! The CORDS-MDBS agent of the paper contains "a load builder which
//! generates dynamic loads to simulate dynamic application environments"
//! (§5). This module is that load builder. A [`Load`] summarizes the
//! background process population at one instant; a [`ContentionProfile`]
//! describes how contention-level points are drawn over time — uniformly
//! over a range (the paper's default sampling assumption) or from a
//! mixture of clusters (the Table 6 / Figure 10 "clustered case").

use mdbs_stats::rng::Rng;

/// The background load applied to a machine at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Load {
    /// Number of concurrent background processes.
    pub procs: f64,
    /// How CPU-hungry a background process is (1.0 = fully CPU bound).
    pub cpu_intensity: f64,
    /// How I/O-hungry a background process is (1.0 = fully I/O bound).
    pub io_intensity: f64,
}

impl Load {
    /// No background activity at all.
    pub fn idle() -> Load {
        Load {
            procs: 0.0,
            cpu_intensity: 0.0,
            io_intensity: 0.0,
        }
    }

    /// A typical mixed background population of `procs` processes.
    pub fn background(procs: f64) -> Load {
        Load {
            procs: procs.max(0.0),
            cpu_intensity: 0.8,
            io_intensity: 0.7,
        }
    }
}

/// How the contention level moves over time in a dynamic environment.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentionProfile {
    /// A fixed number of background processes — the *static* environment of
    /// the earlier query sampling method.
    Constant(f64),
    /// Every contention level in `[lo, hi]` is equally likely — the
    /// assumption behind the IUPMA uniform partition.
    Uniform {
        /// Fewest background processes.
        lo: f64,
        /// Most background processes.
        hi: f64,
    },
    /// The contention level clusters around a few operating points (e.g.
    /// "overnight batch", "office hours", "quarter close") — the
    /// distribution of paper Figure 10, where ICMA shines.
    Clustered {
        /// `(center, std_dev, weight)` per cluster; weights need not sum
        /// to 1 (they are normalized when sampling).
        modes: Vec<(f64, f64, f64)>,
    },
}

impl ContentionProfile {
    /// The paper's clustered example: three operating points with distinct
    /// popularity, spanning roughly the same range as the uniform case.
    pub fn paper_clustered() -> ContentionProfile {
        ContentionProfile::Clustered {
            modes: vec![(25.0, 4.0, 0.45), (70.0, 5.0, 0.35), (115.0, 4.0, 0.20)],
        }
    }

    /// Draws one contention-level point (a number of processes).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match self {
            ContentionProfile::Constant(p) => *p,
            ContentionProfile::Uniform { lo, hi } => {
                if hi > lo {
                    rng.gen_range(*lo..=*hi)
                } else {
                    *lo
                }
            }
            ContentionProfile::Clustered { modes } => {
                let total: f64 = modes.iter().map(|m| m.2).sum();
                let mut pick = rng.gen_f64() * total.max(f64::MIN_POSITIVE);
                for (center, sd, w) in modes {
                    pick -= w;
                    if pick <= 0.0 {
                        return rng.normal(*center, *sd).max(0.0);
                    }
                }
                // Numerical fallthrough: use the last mode.
                let (center, sd, _) = modes.last().copied().unwrap_or((0.0, 0.0, 1.0));
                rng.normal(center, sd).max(0.0)
            }
        }
    }
}

/// Draws contention levels from a profile and converts them into [`Load`]s,
/// adding small per-instant jitter to the process mix — the "momentary
/// changes" that make small-cost queries hard to estimate (paper §5).
#[derive(Debug, Clone)]
pub struct LoadBuilder {
    profile: ContentionProfile,
    mix_jitter: f64,
}

impl LoadBuilder {
    /// A load builder over the given contention profile.
    pub fn new(profile: ContentionProfile) -> Self {
        LoadBuilder {
            profile,
            mix_jitter: 0.06,
        }
    }

    /// Overrides the per-instant jitter of the process mix.
    pub fn with_mix_jitter(mut self, jitter: f64) -> Self {
        self.mix_jitter = jitter.max(0.0);
        self
    }

    /// The underlying contention profile.
    pub fn profile(&self) -> &ContentionProfile {
        &self.profile
    }

    /// Produces the next instantaneous background load.
    pub fn next_load(&self, rng: &mut Rng) -> Load {
        let base = Load::background(self.profile.sample(rng));
        Load {
            procs: base.procs,
            cpu_intensity: (base.cpu_intensity + rng.normal(0.0, self.mix_jitter)).clamp(0.05, 1.5),
            io_intensity: (base.io_intensity + rng.normal(0.0, self.mix_jitter)).clamp(0.05, 1.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_is_constant() {
        let mut rng = Rng::seed_from_u64(1);
        let p = ContentionProfile::Constant(42.0);
        for _ in 0..10 {
            assert_eq!(p.sample(&mut rng), 42.0);
        }
    }

    #[test]
    fn uniform_profile_stays_in_range() {
        let mut rng = Rng::seed_from_u64(2);
        let p = ContentionProfile::Uniform { lo: 10.0, hi: 90.0 };
        let mut lo_seen = f64::MAX;
        let mut hi_seen = f64::MIN;
        for _ in 0..5000 {
            let v = p.sample(&mut rng);
            assert!((10.0..=90.0).contains(&v));
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        // The whole range is actually exercised.
        assert!(lo_seen < 15.0 && hi_seen > 85.0);
    }

    #[test]
    fn degenerate_uniform_range() {
        let mut rng = Rng::seed_from_u64(3);
        let p = ContentionProfile::Uniform { lo: 30.0, hi: 30.0 };
        assert_eq!(p.sample(&mut rng), 30.0);
    }

    #[test]
    fn clustered_profile_concentrates_mass() {
        let mut rng = Rng::seed_from_u64(4);
        let p = ContentionProfile::paper_clustered();
        let draws: Vec<f64> = (0..4000).map(|_| p.sample(&mut rng)).collect();
        // Nearly all mass should be within 3 sigma of some mode.
        let near_mode = draws
            .iter()
            .filter(|&&v| {
                [(25.0, 4.0), (70.0, 5.0), (115.0, 4.0)]
                    .iter()
                    .any(|(c, s)| (v - c).abs() < 3.5 * s)
            })
            .count();
        assert!(near_mode as f64 / draws.len() as f64 > 0.98);
        // Weights are respected: the first mode is the most popular.
        let in_first = draws.iter().filter(|&&v| v < 45.0).count() as f64;
        let in_last = draws.iter().filter(|&&v| v > 95.0).count() as f64;
        assert!(in_first > in_last);
    }

    #[test]
    fn load_builder_jitters_the_mix() {
        let mut rng = Rng::seed_from_u64(5);
        let lb = LoadBuilder::new(ContentionProfile::Constant(50.0));
        let a = lb.next_load(&mut rng);
        let b = lb.next_load(&mut rng);
        assert_eq!(a.procs, 50.0);
        assert!(a.cpu_intensity != b.cpu_intensity || a.io_intensity != b.io_intensity);
    }

    #[test]
    fn load_never_negative() {
        let mut rng = Rng::seed_from_u64(6);
        let p = ContentionProfile::Clustered {
            modes: vec![(2.0, 5.0, 1.0)],
        };
        for _ in 0..2000 {
            assert!(p.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn idle_load_is_truly_idle() {
        let l = Load::idle();
        assert_eq!(l.procs, 0.0);
    }
}
