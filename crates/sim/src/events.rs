//! Occasionally-changing environmental factors (paper §2).
//!
//! Besides the frequently-changing factors the qualitative variable
//! captures, the paper lists factors that change *occasionally*: DBMS
//! configuration parameters (buffer pool size), database physical or
//! conceptual schema (new indexes, table growth) and hardware
//! configuration (physical memory). "A simple and effective approach to
//! capturing them in a cost model is to invoke the static query sampling
//! method periodically or whenever a significant change for the factors
//! occurs."
//!
//! [`EnvironmentEvent`] models those changes; applying one to an
//! [`MdbsAgent`](crate::agent::MdbsAgent) durably alters the local system,
//! after which previously derived cost models may drift — the trigger for
//! the model-maintenance machinery in `mdbs-core`.

use crate::catalog::{IndexKind, TableId};

/// A durable change to a local site.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvironmentEvent {
    /// Hardware change: physical memory replaced/extended (MB). Moves the
    /// thrashing knee, reshaping the whole contention response.
    MemoryUpgrade {
        /// New physical memory size in megabytes.
        new_phys_mem_mb: f64,
    },
    /// DBMS configuration change: buffer pool resized (pages). Changes
    /// nested-loop join block counts.
    BufferPoolResize {
        /// New buffer pool size in pages.
        pages: u64,
    },
    /// Schema change: an index created on a column.
    CreateIndex {
        /// Affected table.
        table: TableId,
        /// Column index within the table.
        column: usize,
        /// Kind of the new index.
        kind: IndexKind,
    },
    /// Schema change: the index on a column dropped.
    DropIndex {
        /// Affected table.
        table: TableId,
        /// Column index within the table.
        column: usize,
    },
    /// Data change accumulated to a significant degree: the table grew (or
    /// shrank) by the given factor.
    TableGrowth {
        /// Affected table.
        table: TableId,
        /// Multiplicative cardinality factor (e.g. `2.0` = doubled).
        factor: f64,
    },
    /// Hardware change: the disk subsystem replaced; sequential and random
    /// page I/O get this multiplicative speedup (< 1.0 = faster).
    DiskReplacement {
        /// Multiplier applied to both page-I/O costs.
        io_cost_factor: f64,
    },
}

/// Errors from applying an event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventError {
    /// The referenced table does not exist.
    UnknownTable(TableId),
    /// The referenced column does not exist.
    UnknownColumn {
        /// The table that was found.
        table: TableId,
        /// The missing column index.
        column: usize,
    },
    /// A numeric parameter is out of its valid domain.
    InvalidParameter(String),
}

impl std::fmt::Display for EventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventError::UnknownTable(t) => write!(f, "unknown table {t}"),
            EventError::UnknownColumn { table, column } => {
                write!(f, "table {table} has no column {column}")
            }
            EventError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_cloneable_and_comparable() {
        let e = EnvironmentEvent::MemoryUpgrade {
            new_phys_mem_mb: 2048.0,
        };
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn error_display() {
        let e = EventError::UnknownColumn {
            table: TableId(3),
            column: 42,
        };
        assert!(e.to_string().contains("R3"));
        assert!(e.to_string().contains("42"));
    }
}
