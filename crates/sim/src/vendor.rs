//! Per-DBMS cost-constant profiles.
//!
//! The paper runs the same method against two commercial systems — Oracle
//! 8.0 and DB2 5.0 — and derives *different* cost models for each (Table 4).
//! The simulator reproduces that by giving each vendor its own constants:
//! different startup overheads, page I/O times, per-tuple CPU costs, buffer
//! sizes and index characteristics. The method itself never sees these
//! numbers; it only sees elapsed costs.

/// Cost constants of one simulated local DBMS, in idle-machine seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct VendorProfile {
    /// Display name (used in reports).
    pub name: &'static str,
    /// Fixed query-startup cost (parse, optimize, open cursor) in seconds.
    pub init_s: f64,
    /// Sequential page read, seconds per page.
    pub seq_page_io_s: f64,
    /// Random page read, seconds per page.
    pub rand_page_io_s: f64,
    /// Predicate evaluation, seconds per tuple per predicate.
    pub pred_cpu_s: f64,
    /// Producing one result tuple (projection + shipping), seconds.
    pub out_cpu_s: f64,
    /// Probing one inner tuple pair during a join, seconds.
    pub join_cpu_s: f64,
    /// Comparison cost during sorting, seconds per tuple per merge level.
    pub sort_cpu_s: f64,
    /// Buffer pool size in pages (drives nested-loop passes).
    pub buffer_pages: u64,
    /// Height of a B-tree index (pages touched to reach a leaf).
    pub index_height: u64,
    /// Page size in bytes.
    pub page_size: u32,
    /// Selectivity above which the optimizer refuses a non-clustered index.
    pub unclustered_cutoff: f64,
    /// Relative noise of observed costs (momentary environment changes).
    pub noise_rel: f64,
}

impl VendorProfile {
    /// An Oracle-8.0-like profile: heavier startup, fast scans, generous
    /// buffer pool.
    pub fn oracle8() -> VendorProfile {
        VendorProfile {
            name: "Oracle 8.0",
            init_s: 0.35,
            seq_page_io_s: 0.0020,
            rand_page_io_s: 0.0105,
            pred_cpu_s: 2.6e-6,
            out_cpu_s: 1.15e-5,
            join_cpu_s: 5.2e-7,
            sort_cpu_s: 1.9e-6,
            buffer_pages: 2_048,
            index_height: 3,
            unclustered_cutoff: 0.12,
            page_size: 8_192,
            noise_rel: 0.05,
        }
    }

    /// A DB2-5.0-like profile: lighter startup, slightly slower scans,
    /// smaller buffer pool, more index-friendly optimizer.
    pub fn db2v5() -> VendorProfile {
        VendorProfile {
            name: "DB2 5.0",
            init_s: 0.18,
            seq_page_io_s: 0.0026,
            rand_page_io_s: 0.0090,
            pred_cpu_s: 3.4e-6,
            out_cpu_s: 0.95e-5,
            join_cpu_s: 6.5e-7,
            sort_cpu_s: 2.4e-6,
            buffer_pages: 1_024,
            index_height: 3,
            unclustered_cutoff: 0.18,
            page_size: 4_096,
            noise_rel: 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendors_differ() {
        let o = VendorProfile::oracle8();
        let d = VendorProfile::db2v5();
        assert_ne!(o, d);
        assert_ne!(o.init_s, d.init_s);
        assert_ne!(o.page_size, d.page_size);
    }

    #[test]
    fn all_costs_positive() {
        for v in [VendorProfile::oracle8(), VendorProfile::db2v5()] {
            assert!(v.init_s > 0.0);
            assert!(v.seq_page_io_s > 0.0);
            assert!(v.rand_page_io_s > v.seq_page_io_s);
            assert!(v.pred_cpu_s > 0.0);
            assert!(v.out_cpu_s > 0.0);
            assert!(v.buffer_pages > 2);
            assert!((0.0..=1.0).contains(&v.unclustered_cutoff));
        }
    }
}
