//! Synthetic local databases.
//!
//! The paper's experiments use, per local DBS, "12 randomly-generated
//! tables (R1 … R12) with cardinalities ranging from 3,000 to 250,000.
//! Each table has a number of indexed columns and various selectivities
//! for different columns" (§5). [`standard_database`] reproduces that
//! layout deterministically from a seed so both simulated vendors host
//! comparable (but not identical) data.

use crate::catalog::{ColumnDef, IndexKind, LocalCatalog, TableDef, TableId};
use mdbs_stats::rng::Rng;

/// Number of tables in the standard database.
pub const NUM_TABLES: u32 = 12;

/// Smallest / largest table cardinalities, per the paper.
pub const MIN_CARD: u64 = 3_000;
/// Largest table cardinality, per the paper.
pub const MAX_CARD: u64 = 250_000;

/// Builds the standard 12-table local database.
///
/// * Cardinalities grow geometrically from [`MIN_CARD`] to [`MAX_CARD`]
///   with mild seeded jitter, so every size decade is represented.
/// * Every table has 9 integer columns `a1..a9` (like the paper's R7).
/// * Odd-numbered tables get a clustered index on `a1`; every table gets a
///   non-clustered index on `a3`, and larger tables one more on `a8`.
/// * Column domains vary so different predicates have very different
///   selectivities.
pub fn standard_database(seed: u64) -> LocalCatalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut catalog = LocalCatalog::new();
    let ratio = (MAX_CARD as f64 / MIN_CARD as f64).powf(1.0 / (NUM_TABLES as f64 - 1.0));
    for i in 1..=NUM_TABLES {
        let base = MIN_CARD as f64 * ratio.powi(i as i32 - 1);
        let jitter = rng.gen_range(0.92..1.08);
        let cardinality = ((base * jitter) as u64).clamp(MIN_CARD, MAX_CARD);
        let columns = (1..=9u32)
            .map(|c| {
                let index = match c {
                    1 if i % 2 == 1 => IndexKind::Clustered,
                    3 => IndexKind::NonClustered,
                    8 if cardinality > 50_000 => IndexKind::NonClustered,
                    _ => IndexKind::None,
                };
                ColumnDef {
                    name: format!("a{c}"),
                    width: 4,
                    // Domain sizes spread over decades -> varied selectivity.
                    domain_max: 10u64.pow(2 + (c + i) % 4) + rng.gen_range(0u64..50),
                    index,
                }
            })
            .collect();
        catalog.add_table(TableDef {
            id: TableId(i),
            cardinality,
            columns,
            // Vary tuple lengths across tables (44–92 bytes) so that the
            // tuple-length explanatory variables of paper Table 3 carry
            // real signal rather than being constant.
            tuple_overhead: 8 + (i % 5) * 12,
        });
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_twelve_tables() {
        let db = standard_database(42);
        assert_eq!(db.tables().len(), 12);
    }

    #[test]
    fn cardinalities_span_papers_range() {
        let db = standard_database(42);
        let cards: Vec<u64> = db.tables().iter().map(|t| t.cardinality).collect();
        assert!(cards.iter().all(|&c| (MIN_CARD..=MAX_CARD).contains(&c)));
        assert!(*cards.first().unwrap() < 5_000);
        assert!(*cards.last().unwrap() > 200_000);
        // Monotone up to jitter: last table is the biggest.
        assert_eq!(cards.iter().copied().max().unwrap(), *cards.last().unwrap());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = standard_database(7);
        let b = standard_database(7);
        for (ta, tb) in a.tables().iter().zip(b.tables()) {
            assert_eq!(ta, tb);
        }
        let c = standard_database(8);
        assert!(a
            .tables()
            .iter()
            .zip(c.tables())
            .any(|(ta, tc)| ta.cardinality != tc.cardinality));
    }

    #[test]
    fn index_layout_matches_design() {
        let db = standard_database(42);
        for t in db.tables() {
            // a3 always non-clustered indexed.
            assert_eq!(t.columns[2].index, IndexKind::NonClustered);
            // Clustered index exactly on odd tables, on a1.
            if t.id.0 % 2 == 1 {
                assert_eq!(t.clustered_column(), Some(0));
            } else {
                assert_eq!(t.clustered_column(), None);
            }
        }
    }

    #[test]
    fn every_table_has_nine_columns_with_varied_tuple_lengths() {
        let db = standard_database(1);
        let mut lengths = std::collections::BTreeSet::new();
        for t in db.tables() {
            assert_eq!(t.columns.len(), 9);
            assert!((44..=92).contains(&t.tuple_len()), "{}", t.tuple_len());
            lengths.insert(t.tuple_len());
        }
        assert!(lengths.len() >= 3, "tuple lengths do not vary: {lengths:?}");
    }
}
