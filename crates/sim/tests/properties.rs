//! Property-based tests for the local-DBS and environment simulator.

use mdbs_sim::catalog::{ColumnDef, IndexKind, TableDef, TableId};
use mdbs_sim::contention::{ContentionProfile, Load};
use mdbs_sim::datagen::standard_database;
use mdbs_sim::engine::cost_unary;
use mdbs_sim::machine::{Machine, MachineSpec};
use mdbs_sim::query::{Predicate, Query, UnaryQuery};
use mdbs_sim::selectivity::{predicate_selectivity, unary_sizes};
use mdbs_sim::sql::{parse_query, to_sql};
use mdbs_sim::util::pages;
use mdbs_sim::vendor::VendorProfile;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn table(card: u64, domain: u64) -> TableDef {
    TableDef {
        id: TableId(1),
        cardinality: card,
        columns: (0..9)
            .map(|i| ColumnDef {
                name: format!("a{}", i + 1),
                width: 4,
                domain_max: domain,
                index: IndexKind::None,
            })
            .collect(),
        tuple_overhead: 8,
    }
}

proptest! {
    #[test]
    fn selectivity_is_a_probability(
        card in 1u64..1_000_000,
        domain in 1u64..1_000_000,
        lo in proptest::option::of(0u64..1_000_000),
        hi in proptest::option::of(0u64..1_000_000),
        col in 0usize..12,
    ) {
        let t = table(card, domain);
        let p = Predicate { column: col, lo, hi };
        let sel = predicate_selectivity(&t, &p);
        prop_assert!((0.0..=1.0).contains(&sel), "selectivity {sel}");
    }

    #[test]
    fn unary_sizes_are_ordered(
        card in 1u64..500_000,
        domain in 10u64..100_000,
        cut1 in 0u64..100_000,
        cut2 in 0u64..100_000,
    ) {
        let t = table(card, domain);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![0, 3],
            predicates: vec![Predicate::lt(1, cut1), Predicate::gt(2, cut2)],
            order_by: None,
        };
        let s = unary_sizes(&t, &q);
        prop_assert!(s.result <= s.intermediate);
        prop_assert!(s.intermediate <= s.operand);
        prop_assert_eq!(s.operand, card);
    }

    #[test]
    fn pages_monotone_in_tuples(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        len in 1u32..512,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(pages(lo, len, 8192) <= pages(hi, len, 8192));
        // Enough space for all bytes.
        prop_assert!(pages(hi, len, 8192) * 8192 >= hi * len as u64);
    }

    #[test]
    fn machine_factors_monotone_in_load(p1 in 0.0..200.0f64, p2 in 0.0..200.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let mut m = Machine::new(MachineSpec::default());
        m.set_load(Load::background(lo));
        let (c_lo, i_lo) = (m.cpu_factor(), m.io_factor());
        m.set_load(Load::background(hi));
        prop_assert!(m.cpu_factor() >= c_lo);
        prop_assert!(m.io_factor() >= i_lo);
        prop_assert!(m.cpu_factor() >= 1.0 && m.io_factor() >= 1.0 - 1e-12);
    }

    #[test]
    fn elapsed_scales_with_demand(
        io in 0.0..100.0f64,
        cpu in 0.0..100.0f64,
        procs in 0.0..150.0f64,
    ) {
        let mut m = Machine::new(MachineSpec::default());
        m.set_load(Load::background(procs));
        let once = m.elapsed(0.1, io, cpu);
        let twice = m.elapsed(0.1, 2.0 * io, 2.0 * cpu);
        prop_assert!(twice >= once);
        prop_assert!(once >= 0.1); // At least the (stretched) init cost.
    }

    #[test]
    fn uniform_contention_sampling_in_range(
        lo in 0.0..100.0f64,
        width in 0.0..100.0f64,
        seed in 0u64..500,
    ) {
        let hi = lo + width;
        let p = ContentionProfile::Uniform { lo, hi };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let v = p.sample(&mut rng);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn clustered_sampling_never_negative(
        centers in proptest::collection::vec((0.0..150.0f64, 0.1..20.0f64, 0.01..1.0f64), 1..4),
        seed in 0u64..200,
    ) {
        let p = ContentionProfile::Clustered { modes: centers };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert!(p.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn engine_demand_is_finite_and_positive(
        card in 1u64..500_000,
        cut in 0u64..10_000,
        vendor_pick in 0u8..2,
    ) {
        let vendor = if vendor_pick == 0 {
            VendorProfile::oracle8()
        } else {
            VendorProfile::db2v5()
        };
        let t = table(card, 10_000);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(4, cut)],
            order_by: None,
        };
        let (d, _, _) = cost_unary(&t, &q, &vendor);
        prop_assert!(d.init_s > 0.0);
        prop_assert!(d.io_s.is_finite() && d.io_s >= 0.0);
        prop_assert!(d.cpu_s.is_finite() && d.cpu_s >= 0.0);
    }

    #[test]
    fn observed_cost_positive_under_any_load(
        procs in 0.0..180.0f64,
        seed in 0u64..100,
        tbl in 0usize..12,
    ) {
        let mut agent = mdbs_sim::MdbsAgent::new(
            VendorProfile::oracle8(),
            standard_database(42),
            seed,
        );
        agent.set_load(Load::background(procs));
        let t = &agent.catalog().tables()[tbl];
        let q = mdbs_sim::Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(4, t.columns[4].domain_max / 2)],
            order_by: None,
        });
        let e = agent.run(&q).unwrap();
        prop_assert!(e.cost_s > 0.0 && e.cost_s.is_finite());
    }
    /// SQL render/parse round-trips for arbitrary valid unary queries.
    #[test]
    fn sql_roundtrip_unary(
        tbl in 0usize..12,
        proj in proptest::collection::btree_set(0usize..9, 0..5),
        preds in proptest::collection::vec((0usize..9, 0u64..5000, 0u64..5000), 0..3),
    ) {
        let db = standard_database(42);
        let t = &db.tables()[tbl];
        let predicates: Vec<Predicate> = preds
            .iter()
            .map(|&(c, a, b)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Predicate::between(c, lo, hi)
            })
            .collect();
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: proj.into_iter().collect(),
            predicates,
            order_by: None,
        });
        let sql = to_sql(&db, &q);
        let parsed = parse_query(&db, &sql)
            .unwrap_or_else(|e| panic!("`{sql}` failed to re-parse: {e}"));
        prop_assert_eq!(parsed, q, "sql was `{}`", sql);
    }

}
