//! Property-style tests for the local-DBS and environment simulator, run
//! as seeded deterministic case sweeps over the in-tree [`Rng`]: the same
//! invariants the original randomized suites checked, with inputs that are
//! reproduced exactly on every run.

use mdbs_sim::catalog::{ColumnDef, IndexKind, TableDef, TableId};
use mdbs_sim::contention::{ContentionProfile, Load};
use mdbs_sim::datagen::standard_database;
use mdbs_sim::engine::cost_unary;
use mdbs_sim::machine::{Machine, MachineSpec};
use mdbs_sim::query::{Predicate, Query, UnaryQuery};
use mdbs_sim::selectivity::{predicate_selectivity, unary_sizes};
use mdbs_sim::sql::{parse_query, to_sql};
use mdbs_sim::util::pages;
use mdbs_sim::vendor::VendorProfile;
use mdbs_stats::rng::Rng;

fn table(card: u64, domain: u64) -> TableDef {
    TableDef {
        id: TableId(1),
        cardinality: card,
        columns: (0..9)
            .map(|i| ColumnDef {
                name: format!("a{}", i + 1),
                width: 4,
                domain_max: domain,
                index: IndexKind::None,
            })
            .collect(),
        tuple_overhead: 8,
    }
}

#[test]
fn selectivity_is_a_probability() {
    let mut rng = Rng::seed_from_u64(0x5E1);
    for _ in 0..500 {
        let card = rng.gen_range(1u64..1_000_000);
        let domain = rng.gen_range(1u64..1_000_000);
        let lo = rng.gen_bool(0.5).then(|| rng.gen_range(0u64..1_000_000));
        let hi = rng.gen_bool(0.5).then(|| rng.gen_range(0u64..1_000_000));
        let col = rng.gen_range(0usize..12);
        let t = table(card, domain);
        let p = Predicate {
            column: col,
            lo,
            hi,
        };
        let sel = predicate_selectivity(&t, &p);
        assert!((0.0..=1.0).contains(&sel), "selectivity {sel}");
    }
}

#[test]
fn unary_sizes_are_ordered() {
    let mut rng = Rng::seed_from_u64(0x512E);
    for _ in 0..300 {
        let card = rng.gen_range(1u64..500_000);
        let domain = rng.gen_range(10u64..100_000);
        let cut1 = rng.gen_range(0u64..100_000);
        let cut2 = rng.gen_range(0u64..100_000);
        let t = table(card, domain);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![0, 3],
            predicates: vec![Predicate::lt(1, cut1), Predicate::gt(2, cut2)],
            order_by: None,
        };
        let s = unary_sizes(&t, &q);
        assert!(s.result <= s.intermediate);
        assert!(s.intermediate <= s.operand);
        assert_eq!(s.operand, card);
    }
}

#[test]
fn pages_monotone_in_tuples() {
    let mut rng = Rng::seed_from_u64(0x9A6E);
    for _ in 0..500 {
        let a = rng.gen_range(0u64..1_000_000);
        let b = rng.gen_range(0u64..1_000_000);
        let len = rng.gen_range(1u32..512);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(pages(lo, len, 8192) <= pages(hi, len, 8192));
        // Enough space for all bytes.
        assert!(pages(hi, len, 8192) * 8192 >= hi * len as u64);
    }
}

#[test]
fn machine_factors_monotone_in_load() {
    let mut rng = Rng::seed_from_u64(0x3AC);
    for _ in 0..300 {
        let p1 = rng.gen_range(0.0f64..200.0);
        let p2 = rng.gen_range(0.0f64..200.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let mut m = Machine::new(MachineSpec::default());
        m.set_load(Load::background(lo));
        let (c_lo, i_lo) = (m.cpu_factor(), m.io_factor());
        m.set_load(Load::background(hi));
        assert!(m.cpu_factor() >= c_lo);
        assert!(m.io_factor() >= i_lo);
        assert!(m.cpu_factor() >= 1.0 && m.io_factor() >= 1.0 - 1e-12);
    }
}

#[test]
fn elapsed_scales_with_demand() {
    let mut rng = Rng::seed_from_u64(0xE1A);
    for _ in 0..300 {
        let io = rng.gen_range(0.0f64..100.0);
        let cpu = rng.gen_range(0.0f64..100.0);
        let procs = rng.gen_range(0.0f64..150.0);
        let mut m = Machine::new(MachineSpec::default());
        m.set_load(Load::background(procs));
        let once = m.elapsed(0.1, io, cpu);
        let twice = m.elapsed(0.1, 2.0 * io, 2.0 * cpu);
        assert!(twice >= once);
        assert!(once >= 0.1); // At least the (stretched) init cost.
    }
}

#[test]
fn uniform_contention_sampling_in_range() {
    let mut meta = Rng::seed_from_u64(0x41F0);
    for _ in 0..100 {
        let lo = meta.gen_range(0.0f64..100.0);
        let width = meta.gen_range(0.0f64..100.0);
        let seed = meta.gen_range(0u64..500);
        let hi = lo + width;
        let p = ContentionProfile::Uniform { lo, hi };
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..20 {
            let v = p.sample(&mut rng);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}

#[test]
fn clustered_sampling_never_negative() {
    let mut meta = Rng::seed_from_u64(0xC1F0);
    for _ in 0..100 {
        let n_modes = meta.gen_range(1usize..4);
        let modes: Vec<(f64, f64, f64)> = (0..n_modes)
            .map(|_| {
                (
                    meta.gen_range(0.0f64..150.0),
                    meta.gen_range(0.1f64..20.0),
                    meta.gen_range(0.01f64..1.0),
                )
            })
            .collect();
        let seed = meta.gen_range(0u64..200);
        let p = ContentionProfile::Clustered { modes };
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..20 {
            assert!(p.sample(&mut rng) >= 0.0);
        }
    }
}

#[test]
fn engine_demand_is_finite_and_positive() {
    let mut rng = Rng::seed_from_u64(0xE26);
    for _ in 0..300 {
        let card = rng.gen_range(1u64..500_000);
        let cut = rng.gen_range(0u64..10_000);
        let vendor = if rng.gen_bool(0.5) {
            VendorProfile::oracle8()
        } else {
            VendorProfile::db2v5()
        };
        let t = table(card, 10_000);
        let q = UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(4, cut)],
            order_by: None,
        };
        let (d, _, _) = cost_unary(&t, &q, &vendor);
        assert!(d.init_s > 0.0);
        assert!(d.io_s.is_finite() && d.io_s >= 0.0);
        assert!(d.cpu_s.is_finite() && d.cpu_s >= 0.0);
    }
}

#[test]
fn observed_cost_positive_under_any_load() {
    let mut meta = Rng::seed_from_u64(0x0B5);
    for _ in 0..60 {
        let procs = meta.gen_range(0.0f64..180.0);
        let seed = meta.gen_range(0u64..100);
        let tbl = meta.gen_range(0usize..12);
        let mut agent =
            mdbs_sim::MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), seed);
        agent.set_load(Load::background(procs));
        let t = &agent.catalog().tables()[tbl];
        let q = mdbs_sim::Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(4, t.columns[4].domain_max / 2)],
            order_by: None,
        });
        let e = agent.run(&q).unwrap();
        assert!(e.cost_s > 0.0 && e.cost_s.is_finite());
    }
}

/// SQL render/parse round-trips for arbitrary valid unary queries.
#[test]
fn sql_roundtrip_unary() {
    let db = standard_database(42);
    let mut rng = Rng::seed_from_u64(0x5A1);
    for _ in 0..300 {
        let tbl = rng.gen_range(0usize..12);
        let t = &db.tables()[tbl];
        let n_proj = rng.gen_range(0usize..5);
        let proj: std::collections::BTreeSet<usize> =
            (0..n_proj).map(|_| rng.gen_range(0usize..9)).collect();
        let n_preds = rng.gen_range(0usize..3);
        let predicates: Vec<Predicate> = (0..n_preds)
            .map(|_| {
                let c = rng.gen_range(0usize..9);
                let a = rng.gen_range(0u64..5000);
                let b = rng.gen_range(0u64..5000);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Predicate::between(c, lo, hi)
            })
            .collect();
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: proj.into_iter().collect(),
            predicates,
            order_by: None,
        });
        let sql = to_sql(&db, &q);
        let parsed =
            parse_query(&db, &sql).unwrap_or_else(|e| panic!("`{sql}` failed to re-parse: {e}"));
        assert_eq!(parsed, q, "sql was `{sql}`");
    }
}
