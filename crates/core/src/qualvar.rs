//! Contention states and the qualitative variable (paper §3.1, §3.3).
//!
//! The combined effect of all frequently-changing environmental factors is
//! gauged by the probing-query cost. Its observed range `[Cmin, Cmax]` is
//! partitioned into `m` disjoint subranges, each a **contention state**; a
//! qualitative variable with `m` categories (equivalently `m − 1` indicator
//! variables) then enters the regression cost model.
//!
//! Internally states are indexed `0..m` from *lowest* to *highest*
//! contention; the paper's decreasing-index notation (`S_m` = lowest) is a
//! display concern handled by [`StateSet::paper_label`].

use crate::CoreError;
use mdbs_stats::Cluster1D;

/// A partition of the probing-cost range into contention states.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSet {
    /// Ascending bin edges; `edges.len() == states + 1`.
    edges: Vec<f64>,
}

impl StateSet {
    /// A single all-encompassing state — the static method's assumption.
    pub fn single() -> StateSet {
        StateSet {
            edges: vec![f64::NEG_INFINITY, f64::INFINITY],
        }
    }

    /// Builds a state set from explicit ascending edges.
    ///
    /// Requires at least two strictly increasing edges.
    pub fn from_edges(edges: Vec<f64>) -> Result<StateSet, CoreError> {
        if edges.len() < 2 {
            return Err(CoreError::Degenerate(
                "state set needs at least two edges".into(),
            ));
        }
        if edges.windows(2).any(|w| w[1] <= w[0]) {
            return Err(CoreError::Degenerate(format!(
                "state edges must be strictly increasing: {edges:?}"
            )));
        }
        Ok(StateSet { edges })
    }

    /// The straightforward uniform partition of `[c_min, c_max]` into `m`
    /// equal subranges (paper §3.3, "Determining states via iterative
    /// uniform partition").
    pub fn uniform(c_min: f64, c_max: f64, m: usize) -> Result<StateSet, CoreError> {
        if m == 0 {
            return Err(CoreError::Degenerate("m must be at least 1".into()));
        }
        if m == 1 {
            return Ok(StateSet::single());
        }
        if c_max <= c_min {
            return Err(CoreError::Degenerate(format!(
                "cannot partition degenerate probing range [{c_min}, {c_max}]"
            )));
        }
        let width = (c_max - c_min) / m as f64;
        let edges = (0..=m)
            .map(|i| {
                if i == 0 {
                    c_min
                } else if i == m {
                    c_max
                } else {
                    c_min + width * i as f64
                }
            })
            .collect();
        StateSet::from_edges(edges)
    }

    /// A partition induced by 1-D clusters of probing costs (paper §3.3,
    /// "Determining states via data clustering"): state boundaries fall at
    /// the midpoints between adjacent clusters' extents.
    pub fn from_clusters(clusters: &[Cluster1D]) -> Result<StateSet, CoreError> {
        if clusters.is_empty() {
            return Err(CoreError::Degenerate("no clusters".into()));
        }
        let mut edges = Vec::with_capacity(clusters.len() + 1);
        edges.push(clusters[0].min);
        for w in clusters.windows(2) {
            edges.push(0.5 * (w[0].max + w[1].min));
        }
        edges.push(clusters.last().expect("non-empty").max);
        // Guard against zero-width clusters producing equal edges.
        edges.dedup_by(|b, a| *b <= *a);
        if edges.len() < 2 {
            return Err(CoreError::Degenerate(
                "clusters collapse to a single point".into(),
            ));
        }
        StateSet::from_edges(edges)
    }

    /// Number of contention states `m`.
    pub fn len(&self) -> usize {
        self.edges.len() - 1
    }

    /// A state set always has at least one state; provided for
    /// `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when this is the single-state (static) partition.
    pub fn is_single(&self) -> bool {
        self.len() == 1
    }

    /// The ascending edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// The `[lo, hi)` subrange of state `i` (last state closed above).
    pub fn bounds(&self, i: usize) -> (f64, f64) {
        (self.edges[i], self.edges[i + 1])
    }

    /// Maps a probing cost to its state index, clamping values outside the
    /// observed range to the nearest state (a query executed in a heavier
    /// environment than ever sampled is still "highest contention").
    pub fn state_of(&self, probe_cost: f64) -> usize {
        let m = self.len();
        if probe_cost <= self.edges[0] {
            return 0;
        }
        if probe_cost >= self.edges[m] {
            return m - 1;
        }
        // Binary search over ascending edges.
        match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&probe_cost).expect("finite edges"))
        {
            Ok(i) => i.min(m - 1),
            Err(i) => i - 1,
        }
    }

    /// Indicator encoding of a state: `m − 1` zeros/ones, `z_i = 1` iff the
    /// state index is `i + 1` (state 0 is the reference category).
    pub fn indicators(&self, state: usize) -> Vec<f64> {
        let m = self.len();
        let mut z = vec![0.0; m.saturating_sub(1)];
        if (1..m).contains(&state) {
            z[state - 1] = 1.0;
        }
        z
    }

    /// Merges state `i` with state `i + 1` (removing their shared edge).
    pub fn merge_with_next(&self, i: usize) -> Result<StateSet, CoreError> {
        if i + 1 >= self.len() {
            return Err(CoreError::Degenerate(format!(
                "cannot merge state {i} with its successor in an {}-state set",
                self.len()
            )));
        }
        let mut edges = self.edges.clone();
        edges.remove(i + 1);
        StateSet::from_edges(edges)
    }

    /// The paper's decreasing-index label for state `i`: the lowest
    /// contention state is `S_m`, the highest `S_1`.
    pub fn paper_label(&self, i: usize) -> String {
        format!("S{}", self.len() - i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_state_covers_everything() {
        let s = StateSet::single();
        assert_eq!(s.len(), 1);
        assert!(s.is_single());
        assert_eq!(s.state_of(-1e9), 0);
        assert_eq!(s.state_of(1e9), 0);
        assert!(s.indicators(0).is_empty());
    }

    #[test]
    fn uniform_partition_has_equal_widths() {
        let s = StateSet::uniform(0.0, 10.0, 5).unwrap();
        assert_eq!(s.len(), 5);
        for i in 0..5 {
            let (lo, hi) = s.bounds(i);
            assert!((hi - lo - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_rejects_degenerate_inputs() {
        assert!(StateSet::uniform(1.0, 1.0, 3).is_err());
        assert!(StateSet::uniform(2.0, 1.0, 3).is_err());
        assert!(StateSet::uniform(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn state_lookup_is_total_and_monotone() {
        let s = StateSet::uniform(0.0, 10.0, 4).unwrap();
        assert_eq!(s.state_of(-5.0), 0);
        assert_eq!(s.state_of(0.0), 0);
        assert_eq!(s.state_of(2.49), 0);
        assert_eq!(s.state_of(2.51), 1);
        assert_eq!(s.state_of(9.99), 3);
        assert_eq!(s.state_of(10.0), 3);
        assert_eq!(s.state_of(99.0), 3);
        let mut prev = 0;
        for i in 0..1000 {
            let st = s.state_of(i as f64 * 0.011);
            assert!(st >= prev);
            prev = st;
        }
    }

    #[test]
    fn state_lookup_at_exact_edges() {
        let s = StateSet::from_edges(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.state_of(1.0), 1);
        assert_eq!(s.state_of(2.0), 2);
        assert_eq!(s.state_of(3.0), 2);
    }

    #[test]
    fn indicators_encode_one_hot_with_reference() {
        let s = StateSet::uniform(0.0, 10.0, 4).unwrap();
        assert_eq!(s.indicators(0), vec![0.0, 0.0, 0.0]);
        assert_eq!(s.indicators(1), vec![1.0, 0.0, 0.0]);
        assert_eq!(s.indicators(3), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn merge_removes_shared_edge() {
        let s = StateSet::uniform(0.0, 10.0, 4).unwrap();
        let merged = s.merge_with_next(1).unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.bounds(1), (2.5, 7.5));
        assert!(s.merge_with_next(3).is_err());
    }

    #[test]
    fn clusters_to_states() {
        let clusters = vec![
            Cluster1D {
                min: 1.0,
                max: 2.0,
                count: 10,
                centroid: 1.5,
            },
            Cluster1D {
                min: 6.0,
                max: 8.0,
                count: 5,
                centroid: 7.0,
            },
        ];
        let s = StateSet::from_clusters(&clusters).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.bounds(0), (1.0, 4.0));
        assert_eq!(s.bounds(1), (4.0, 8.0));
        // Points in the gap are assigned to the nearest side of the midpoint.
        assert_eq!(s.state_of(3.0), 0);
        assert_eq!(s.state_of(5.0), 1);
    }

    #[test]
    fn from_edges_validation() {
        assert!(StateSet::from_edges(vec![1.0]).is_err());
        assert!(StateSet::from_edges(vec![1.0, 1.0]).is_err());
        assert!(StateSet::from_edges(vec![2.0, 1.0]).is_err());
        assert!(StateSet::from_edges(vec![1.0, 2.0, 3.0]).is_ok());
    }

    #[test]
    fn paper_labels_decrease_with_contention() {
        let s = StateSet::uniform(0.0, 10.0, 3).unwrap();
        assert_eq!(s.paper_label(0), "S3"); // Lowest contention.
        assert_eq!(s.paper_label(2), "S1"); // Highest contention.
    }
}
