//! A concurrent model registry for the estimation hot path.
//!
//! The [`GlobalCatalog`] is the paper's
//! single-threaded picture of "cost model parameters kept in the MDBS
//! catalog". A front-end that re-derives models in the background while
//! answering estimates needs more: estimation must never block behind a
//! derivation, and a reader must never observe a half-written model. The
//! [`ModelRegistry`] provides that with a sharded `RwLock` map from
//! `(site, class)` to an [`Arc`]'d immutable snapshot, swapped whole on
//! publish — readers either see the old complete model or the new complete
//! model, nothing in between — plus a monotone global version so callers
//! can tell *which*.
//!
//! Shard selection uses an in-tree FNV-1a hash of the key, not the std
//! `RandomState`, so shard layout (and thus any iteration-derived output)
//! is stable across processes — the same determinism policy as the rest of
//! the workspace.

use crate::catalog::{GlobalCatalog, SiteId};
use crate::classes::{classify, QueryClass};
use crate::correction::EstimateQuery;
use crate::model::CostModel;
use mdbs_obs::Telemetry;
// Hash sharding is deliberate here: lookups are point reads keyed by
// (site, class) and iteration only happens in `to_catalog`, which is
// order-insensitive (see the waiver there).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent lock shards. A small power of two: contention on
/// a registry of dozens of models is negligible beyond this.
const SHARDS: usize = 16;

/// One published model snapshot: immutable once registered.
#[derive(Debug, Clone)]
pub struct RegisteredModel {
    /// The site the model covers.
    pub site: SiteId,
    /// The query class the model covers.
    pub class: QueryClass,
    /// The registry-global version at which this snapshot was published.
    pub version: u64,
    /// The fitted multi-states cost model.
    pub model: CostModel,
}

/// A served estimate with its full provenance: the snapshot version it
/// was computed against, the contention state the probing cost mapped
/// to, and what the online correction layer did to the raw model output —
/// everything a flight record or accuracy ledger needs to explain the
/// number. Computed against one `Arc` snapshot, so the fields are always
/// mutually coherent even while maintenance republishes.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateDetail {
    /// The estimated query cost to serve (corrected when a warm
    /// correction cell applied; otherwise the raw model output).
    pub estimate: f64,
    /// The raw model output before any correction — what the correction
    /// ledger learns from.
    pub raw_estimate: f64,
    /// Multiplicative correction factor applied (1.0 when none).
    pub correction: f64,
    /// Whether a correction cell actually adjusted this estimate.
    pub corrected: bool,
    /// The correction cell's residual scale — the `±` confidence the
    /// serving loop annotates answers with (0.0 when uncorrected).
    pub confidence: f64,
    /// Version of the snapshot the estimate came from.
    pub version: u64,
    /// Index of the contention state `probe_cost` mapped to.
    pub state: usize,
    /// The paper's label for that state (`S1` = highest contention).
    pub state_label: String,
}

/// One lock shard: a plain map from key to published snapshot.
#[allow(clippy::disallowed_types)]
type Shard = RwLock<HashMap<(SiteId, QueryClass), Arc<RegisteredModel>>>;

/// Sharded, versioned `(site, class) → CostModel` map. See the module docs.
#[derive(Debug)]
pub struct ModelRegistry {
    shards: Vec<Shard>,
    version: AtomicU64,
    publishes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    #[allow(clippy::disallowed_types)]
    pub fn new() -> Self {
        ModelRegistry {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            version: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, site: &SiteId, class: QueryClass) -> &Shard {
        &self.shards[(key_hash(site, class) as usize) % SHARDS]
    }

    /// Publishes (or replaces) the model for a site/class pair, returning
    /// the new snapshot's version. The swap is atomic from a reader's point
    /// of view: concurrent [`ModelRegistry::get`] calls observe either the
    /// previous snapshot or this one, whole.
    // ctx: serial-only
    pub fn publish(&self, site: SiteId, class: QueryClass, model: CostModel) -> u64 {
        let version = self.version.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Arc::new(RegisteredModel {
            site: site.clone(),
            class,
            version,
            model,
        });
        self.shard(&site, class)
            .write()
            .expect("registry shard")
            .insert((site, class), entry);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// The current snapshot for a site/class pair, if any. Cheap: one
    /// shard read lock and an `Arc` clone.
    pub fn get(&self, site: &SiteId, class: QueryClass) -> Option<Arc<RegisteredModel>> {
        let found = self
            .shard(site, class)
            .read()
            .expect("registry shard")
            .get(&(site.clone(), class))
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// The registry-global version: increments on every publish, so a
    /// changed version means *some* model changed.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Number of registered site/class pairs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("registry shard").len())
            .sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unified estimation entry point: classify the query, look up
    /// the snapshot, extract the Table-3 variables, evaluate the model in
    /// the contention state implied by the probing cost, and apply the
    /// attached correction ledger (if any, and warm). The whole estimate
    /// is computed against one `Arc` snapshot, so every
    /// [`EstimateDetail`] field is mutually coherent even while
    /// maintenance republishes underneath — a reader can assert the
    /// versions it observes never regress.
    ///
    /// `None` when the query cannot be classified or no model is
    /// registered for its class.
    pub fn estimate(&self, q: &EstimateQuery<'_>) -> Option<EstimateDetail> {
        let class = classify(q.schema, q.query)?;
        let snapshot = self.get(q.site, class)?;
        crate::correction::price_with_model(&snapshot.model, snapshot.version, class, q)
    }

    /// Loads every model of a [`GlobalCatalog`] into the registry,
    /// publishing in `(site, class)` order so versions are deterministic.
    pub fn from_catalog(catalog: &GlobalCatalog) -> Self {
        let registry = ModelRegistry::new();
        for site in catalog.sites() {
            for class in catalog.classes_for(&site) {
                if let Some(model) = catalog.model(&site, class) {
                    registry.publish(site.clone(), class, model.clone());
                }
            }
        }
        registry
    }

    /// Loads a versioned [`crate::store::CatalogSnapshot`], publishing in
    /// `(site, class)` order, then advances the registry version to at
    /// least the snapshot's — so models published *after* a warm start
    /// get versions strictly greater than anything already persisted,
    /// keeping registry versions and snapshot versions on one monotone
    /// axis.
    pub fn from_snapshot(snap: &crate::store::CatalogSnapshot) -> Self {
        let registry = ModelRegistry::from_catalog(&snap.catalog);
        registry.version.fetch_max(snap.version, Ordering::Relaxed);
        registry
    }

    /// Snapshots the registry into a versioned
    /// [`crate::store::CatalogSnapshot`] at the current registry version
    /// (probe estimators are not part of the registry and come back
    /// empty).
    pub fn to_snapshot(&self) -> crate::store::CatalogSnapshot {
        crate::store::CatalogSnapshot::at_version(self.to_catalog(), self.version())
    }

    /// Snapshots the registry back into a plain [`GlobalCatalog`] (probe
    /// estimators are not part of the registry and come back empty).
    pub fn to_catalog(&self) -> GlobalCatalog {
        let mut catalog = GlobalCatalog::new();
        for shard in &self.shards {
            // lint:allow(no-unordered-iteration): insertion into the keyed catalog is order-insensitive; the catalog's own export sorts
            for ((site, class), entry) in shard.read().expect("registry shard").iter() {
                catalog.insert_model(site.clone(), *class, entry.model.clone());
            }
        }
        catalog
    }

    /// Folds the registry's access counters into a telemetry collection:
    /// `registry.publishes`, `registry.hits`, `registry.misses` (all
    /// deterministic for a deterministic access sequence) and the current
    /// `registry.version` gauge.
    pub fn fold_metrics(&self, tel: &mut Telemetry) {
        tel.inc("registry.publishes", self.publishes.load(Ordering::Relaxed));
        tel.inc("registry.hits", self.hits.load(Ordering::Relaxed));
        tel.inc("registry.misses", self.misses.load(Ordering::Relaxed));
        tel.gauge("registry.version", self.version() as f64);
    }
}

/// FNV-1a over the site name and the class discriminant: a stable,
/// process-independent shard/job key.
pub(crate) fn key_hash(site: &SiteId, class: QueryClass) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in site.0.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(PRIME);
    }
    let tag = QueryClass::all()
        .iter()
        .position(|&c| c == class)
        .expect("class is in the canonical list") as u64;
    h = (h ^ (0x80 | tag)).wrapping_mul(PRIME);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{fit_cost_model, ModelForm};
    use crate::observation::Observation;
    use crate::qualvar::StateSet;

    /// A toy one-state model `cost = intercept + slope·x`.
    fn toy_model(slope: f64) -> CostModel {
        let obs: Vec<Observation> = (0..30)
            .map(|i| {
                let x = (i % 10) as f64 * 100.0;
                Observation {
                    x: vec![x],
                    cost: 1.0 + slope * x + (i % 3) as f64 * 1e-3,
                    probe_cost: 1.0,
                }
            })
            .collect();
        fit_cost_model(
            ModelForm::Coincident,
            StateSet::single(),
            vec![0],
            vec!["N_O".into()],
            &obs,
        )
        .unwrap()
    }

    #[test]
    fn publish_then_get_roundtrips() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let v = reg.publish("oracle".into(), QueryClass::UnaryNoIndex, toy_model(0.01));
        assert_eq!(v, 1);
        assert_eq!(reg.len(), 1);
        let snap = reg.get(&"oracle".into(), QueryClass::UnaryNoIndex).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.class, QueryClass::UnaryNoIndex);
        assert!(reg.get(&"oracle".into(), QueryClass::JoinNoIndex).is_none());
    }

    #[test]
    fn republish_bumps_version_and_swaps_whole_model() {
        let reg = ModelRegistry::new();
        reg.publish("s".into(), QueryClass::UnaryNoIndex, toy_model(0.01));
        let old = reg.get(&"s".into(), QueryClass::UnaryNoIndex).unwrap();
        reg.publish("s".into(), QueryClass::UnaryNoIndex, toy_model(0.02));
        let new = reg.get(&"s".into(), QueryClass::UnaryNoIndex).unwrap();
        assert!(new.version > old.version);
        assert_ne!(
            old.model.coefficients, new.model.coefficients,
            "snapshots are distinct objects"
        );
        // The old Arc stays valid for readers that still hold it.
        assert_eq!(old.version, 1);
    }

    #[test]
    fn catalog_roundtrip_preserves_models() {
        let mut catalog = GlobalCatalog::new();
        catalog.insert_model("a".into(), QueryClass::UnaryNoIndex, toy_model(0.01));
        catalog.insert_model("b".into(), QueryClass::JoinNoIndex, toy_model(0.03));
        let reg = ModelRegistry::from_catalog(&catalog);
        assert_eq!(reg.len(), 2);
        let back = reg.to_catalog();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.model(&"a".into(), QueryClass::UnaryNoIndex)
                .unwrap()
                .coefficients,
            catalog
                .model(&"a".into(), QueryClass::UnaryNoIndex)
                .unwrap()
                .coefficients
        );
    }

    #[test]
    fn key_hash_is_stable_and_separates_classes() {
        let a = key_hash(&"oracle".into(), QueryClass::UnaryNoIndex);
        let b = key_hash(&"oracle".into(), QueryClass::JoinNoIndex);
        let c = key_hash(&"db2".into(), QueryClass::UnaryNoIndex);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, key_hash(&"oracle".into(), QueryClass::UnaryNoIndex));
    }

    #[test]
    fn fold_metrics_reports_access_counters() {
        let reg = ModelRegistry::new();
        reg.publish("s".into(), QueryClass::UnaryNoIndex, toy_model(0.01));
        reg.get(&"s".into(), QueryClass::UnaryNoIndex);
        reg.get(&"s".into(), QueryClass::JoinNoIndex);
        let mut tel = Telemetry::enabled();
        reg.fold_metrics(&mut tel);
        assert_eq!(tel.metrics.counter("registry.publishes"), 1);
        assert_eq!(tel.metrics.counter("registry.hits"), 1);
        assert_eq!(tel.metrics.counter("registry.misses"), 1);
    }

    #[test]
    fn concurrent_readers_see_whole_snapshots_during_swaps() {
        let reg = ModelRegistry::new();
        reg.publish("s".into(), QueryClass::UnaryNoIndex, toy_model(0.01));
        #[allow(clippy::disallowed_methods)]
        // lint:allow(no-raw-threads): torn-read stress test needs raw racing threads; nothing output-relevant is computed
        std::thread::scope(|scope| {
            let reg = &reg;
            scope.spawn(move || {
                for i in 0..200 {
                    let slope = 0.01 + (i % 7) as f64 * 0.001;
                    reg.publish("s".into(), QueryClass::UnaryNoIndex, toy_model(slope));
                }
            });
            for _ in 0..2 {
                scope.spawn(move || {
                    for _ in 0..500 {
                        let snap = reg
                            .get(&"s".into(), QueryClass::UnaryNoIndex)
                            .expect("model never absent once published");
                        // A torn model would break internal invariants;
                        // estimating exercises the coefficient table.
                        let est = snap.model.estimate(&[100.0], 1.0);
                        assert!(est.is_finite());
                    }
                });
            }
        });
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.version(), 201);
    }
}
