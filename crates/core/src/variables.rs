//! Candidate explanatory variables (paper Table 3).
//!
//! Each query-class *family* (unary vs join) has a fixed set of candidate
//! explanatory variables, split into **basic** variables — expected to
//! matter for almost any cost model — and **secondary** variables that the
//! forward-selection step may add:
//!
//! | Family | Basic | Secondary |
//! |--------|-------|-----------|
//! | Unary  | `N_O` (operand card), `N_I` (intermediate card), `N_R` (result card) | `L_O`, `L_R` (tuple lengths), `N_O·L_O`, `N_R·L_R` (table lengths), `SORT` (= `N_R·log₂N_R` when the query orders its result, else 0) |
//! | Join   | `N_O1`, `N_O2`, `N_I1`, `N_I2`, `N_R`, `N_I1·N_I2` | `L_O1`, `L_O2`, `L_R`, `N_O1·L_O1`, `N_O2·L_O2`, `N_R·L_R` |
//!
//! `SORT` extends the paper's Table 3 the way its own framework intends:
//! a workload feature with a known cost shape enters as a candidate
//! variable and survives selection only when the class's sample actually
//! exercises it.
//!
//! The values are things the MDBS can derive at the global level (catalog
//! cardinalities × selectivities) or observe from the returned result.

use mdbs_sim::catalog::LocalCatalog;
use mdbs_sim::query::Query;
use mdbs_sim::selectivity::{join_sizes, unary_sizes};

/// Whether a query class is unary or join shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariableFamily {
    /// Unary (single-table select-project) classes.
    Unary,
    /// Two-way join classes.
    Join,
}

/// One candidate explanatory variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariableDef {
    /// Short name used in reports (matches the paper's notation).
    pub name: &'static str,
    /// Basic (always tried first) or secondary (forward-selection pool).
    pub basic: bool,
}

const UNARY_VARS: &[VariableDef] = &[
    VariableDef {
        name: "N_O",
        basic: true,
    },
    VariableDef {
        name: "N_I",
        basic: true,
    },
    VariableDef {
        name: "N_R",
        basic: true,
    },
    VariableDef {
        name: "L_O",
        basic: false,
    },
    VariableDef {
        name: "L_R",
        basic: false,
    },
    VariableDef {
        name: "N_O*L_O",
        basic: false,
    },
    VariableDef {
        name: "N_R*L_R",
        basic: false,
    },
    VariableDef {
        name: "SORT",
        basic: false,
    },
];

const JOIN_VARS: &[VariableDef] = &[
    VariableDef {
        name: "N_O1",
        basic: true,
    },
    VariableDef {
        name: "N_O2",
        basic: true,
    },
    VariableDef {
        name: "N_I1",
        basic: true,
    },
    VariableDef {
        name: "N_I2",
        basic: true,
    },
    VariableDef {
        name: "N_R",
        basic: true,
    },
    VariableDef {
        name: "N_I1*N_I2",
        basic: true,
    },
    VariableDef {
        name: "L_O1",
        basic: false,
    },
    VariableDef {
        name: "L_O2",
        basic: false,
    },
    VariableDef {
        name: "L_R",
        basic: false,
    },
    VariableDef {
        name: "N_O1*L_O1",
        basic: false,
    },
    VariableDef {
        name: "N_O2*L_O2",
        basic: false,
    },
    VariableDef {
        name: "N_R*L_R",
        basic: false,
    },
];

impl VariableFamily {
    /// All candidate variables of the family, in canonical order.
    pub fn all(self) -> &'static [VariableDef] {
        match self {
            VariableFamily::Unary => UNARY_VARS,
            VariableFamily::Join => JOIN_VARS,
        }
    }

    /// Indexes (into [`Self::all`]) of the basic variables.
    pub fn basic_indexes(self) -> Vec<usize> {
        self.all()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.basic)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indexes (into [`Self::all`]) of the secondary variables.
    pub fn secondary_indexes(self) -> Vec<usize> {
        self.all()
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.basic)
            .map(|(i, _)| i)
            .collect()
    }

    /// Evaluates all candidate variables for a query against the schema the
    /// MDBS sees. Returns `None` when the query shape does not match the
    /// family or references unknown tables.
    pub fn extract(self, catalog: &LocalCatalog, query: &Query) -> Option<Vec<f64>> {
        match (self, query) {
            (VariableFamily::Unary, Query::Unary(u)) => {
                let t = catalog.table(u.table)?;
                let s = unary_sizes(t, u);
                let l_o = t.tuple_len() as f64;
                let l_r = if u.projection.is_empty() {
                    l_o
                } else {
                    t.projected_len(&u.projection) as f64
                };
                let (n_o, n_i, n_r) = (s.operand as f64, s.intermediate as f64, s.result as f64);
                let sort = if u.order_by.is_some() && s.result > 1 {
                    n_r * n_r.log2()
                } else {
                    0.0
                };
                Some(vec![n_o, n_i, n_r, l_o, l_r, n_o * l_o, n_r * l_r, sort])
            }
            (VariableFamily::Join, Query::Join(j)) => {
                let l = catalog.table(j.left)?;
                let r = catalog.table(j.right)?;
                let s = join_sizes(l, r, j);
                let l_o1 = l.tuple_len() as f64;
                let l_o2 = r.tuple_len() as f64;
                // Result tuples carry the projected columns of both sides.
                let l_r = if j.projection.is_empty() {
                    l_o1 + l_o2
                } else {
                    let lw: u32 = j
                        .projection
                        .iter()
                        .filter(|(from_left, _)| *from_left)
                        .filter_map(|&(_, c)| l.columns.get(c))
                        .map(|c| c.width)
                        .sum();
                    let rw: u32 = j
                        .projection
                        .iter()
                        .filter(|(from_left, _)| !*from_left)
                        .filter_map(|&(_, c)| r.columns.get(c))
                        .map(|c| c.width)
                        .sum();
                    (lw + rw + l.tuple_overhead) as f64
                };
                let (n_o1, n_o2) = (s.left_operand as f64, s.right_operand as f64);
                let (n_i1, n_i2) = (s.left_intermediate as f64, s.right_intermediate as f64);
                let n_r = s.result as f64;
                Some(vec![
                    n_o1,
                    n_o2,
                    n_i1,
                    n_i2,
                    n_r,
                    n_i1 * n_i2,
                    l_o1,
                    l_o2,
                    l_r,
                    n_o1 * l_o1,
                    n_o2 * l_o2,
                    n_r * l_r,
                ])
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbs_sim::datagen::standard_database;
    use mdbs_sim::query::{JoinQuery, Predicate, UnaryQuery};

    #[test]
    fn unary_family_shape() {
        let f = VariableFamily::Unary;
        assert_eq!(f.all().len(), 8);
        assert_eq!(f.basic_indexes(), vec![0, 1, 2]);
        assert_eq!(f.secondary_indexes(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn join_family_shape() {
        let f = VariableFamily::Join;
        assert_eq!(f.all().len(), 12);
        assert_eq!(f.basic_indexes().len(), 6);
        assert_eq!(f.secondary_indexes().len(), 6);
    }

    #[test]
    fn unary_extraction_matches_sizes() {
        let db = standard_database(42);
        let t = &db.tables()[5];
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0, 1],
            predicates: vec![Predicate::between(4, 0, t.columns[4].domain_max / 4)],
            order_by: None,
        });
        let x = VariableFamily::Unary.extract(&db, &q).unwrap();
        assert_eq!(x.len(), 8);
        assert_eq!(x[7], 0.0); // No ORDER BY -> the SORT term is zero.
        assert_eq!(x[0], t.cardinality as f64); // N_O
        assert!(x[1] <= x[0]); // N_I <= N_O
        assert!(x[2] <= x[1]); // N_R <= N_I
        assert_eq!(x[3], t.tuple_len() as f64); // L_O
        assert!(x[4] < x[3]); // projected narrower than full tuple
        assert_eq!(x[5], x[0] * x[3]);
        assert_eq!(x[6], x[2] * x[4]);
    }

    #[test]
    fn join_extraction_matches_sizes() {
        let db = standard_database(42);
        let (a, b) = (&db.tables()[2], &db.tables()[3]);
        let q = Query::Join(JoinQuery {
            left: a.id,
            right: b.id,
            left_col: 4,
            right_col: 4,
            left_predicates: vec![Predicate::lt(5, a.columns[5].domain_max / 2)],
            right_predicates: vec![],
            projection: vec![(true, 0), (false, 1)],
        });
        let x = VariableFamily::Join.extract(&db, &q).unwrap();
        assert_eq!(x.len(), 12);
        assert_eq!(x[0], a.cardinality as f64);
        assert_eq!(x[1], b.cardinality as f64);
        assert!((x[5] - x[2] * x[3]).abs() < 1e-6); // cartesian product
    }

    #[test]
    fn sort_variable_tracks_order_by() {
        let db = standard_database(42);
        let t = &db.tables()[5];
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::between(4, 0, t.columns[4].domain_max / 4)],
            order_by: Some(6),
        });
        let x = VariableFamily::Unary.extract(&db, &q).unwrap();
        let n_r = x[2];
        assert!(n_r > 1.0);
        assert!((x[7] - n_r * n_r.log2()).abs() < 1e-6);
    }

    #[test]
    fn family_mismatch_returns_none() {
        let db = standard_database(42);
        let t = &db.tables()[0];
        let u = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![],
            predicates: vec![],
            order_by: None,
        });
        assert!(VariableFamily::Join.extract(&db, &u).is_none());
    }

    #[test]
    fn unknown_table_returns_none() {
        let db = standard_database(42);
        let u = Query::Unary(UnaryQuery {
            table: mdbs_sim::catalog::TableId(99),
            projection: vec![],
            predicates: vec![],
            order_by: None,
        });
        assert!(VariableFamily::Unary.extract(&db, &u).is_none());
    }
}
