//! Catalog persistence.
//!
//! "The cost model parameters are kept in the MDBS catalog and utilized
//! during query optimization" (paper §1) — which requires the models to
//! survive the process that derived them. This module gives [`CostModel`],
//! [`ProbeCostEstimator`], [`ModelAccumulator`] (the sufficient statistics
//! behind a model, so incremental refits can resume in a later process)
//! and the whole [`GlobalCatalog`] a line-oriented,
//! versioned, human-readable text format with exact `f64` round-trips
//! (Rust's shortest-round-trip float formatting).
//!
//! The format is deliberately not JSON: the workspace's dependency budget
//! has no serde format crate, and a catalog entry is simple enough that a
//! hand-rolled format with a version tag is the smaller risk.

use crate::catalog::{GlobalCatalog, SiteId};
use crate::classes::QueryClass;
use crate::model::{CostModel, FitStats, ModelAccumulator, ModelForm};
use crate::probing::ProbeCostEstimator;
use crate::qualvar::StateSet;
use crate::CoreError;

/// Current format version tag.
pub const FORMAT_VERSION: &str = "v1";

fn parse_err(msg: impl Into<String>) -> CoreError {
    CoreError::Degenerate(format!("catalog parse error: {}", msg.into()))
}

/// A parse error pinned to a 1-based line number of the input text, so a
/// corrupt multi-thousand-line catalog points at the offending line
/// instead of making the operator bisect it by hand.
fn parse_err_at(line: usize, msg: impl Into<String>) -> CoreError {
    CoreError::Degenerate(format!(
        "catalog parse error at line {line}: {}",
        msg.into()
    ))
}

/// Rewrites a line-less `catalog parse error:` (from a shared helper like
/// [`ModelForm::parse`]) into its line-pinned form; errors that already
/// carry a line, or are not parse errors at all, pass through untouched.
fn pin_line<T>(line: usize, r: Result<T, CoreError>) -> Result<T, CoreError> {
    r.map_err(|e| match e {
        CoreError::Degenerate(msg) => match msg.strip_prefix("catalog parse error: ") {
            Some(rest) => parse_err_at(line, rest),
            None => CoreError::Degenerate(msg),
        },
        other => other,
    })
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{v}")
    }
}

fn parse_f64(s: &str) -> Result<f64, CoreError> {
    s.parse::<f64>()
        .map_err(|_| parse_err(format!("bad float `{s}`")))
}

impl ModelForm {
    /// Stable textual tag.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelForm::Coincident => "coincident",
            ModelForm::Parallel => "parallel",
            ModelForm::Concurrent => "concurrent",
            ModelForm::General => "general",
        }
    }

    /// Parses the stable tag.
    pub fn parse(s: &str) -> Result<ModelForm, CoreError> {
        match s {
            "coincident" => Ok(ModelForm::Coincident),
            "parallel" => Ok(ModelForm::Parallel),
            "concurrent" => Ok(ModelForm::Concurrent),
            "general" => Ok(ModelForm::General),
            other => Err(parse_err(format!("unknown model form `{other}`"))),
        }
    }
}

impl QueryClass {
    /// Stable textual tag used by the catalog format.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryClass::UnaryNoIndex => "unary_no_index",
            QueryClass::UnaryNonClusteredIndex => "unary_nonclustered_index",
            QueryClass::UnaryClusteredIndex => "unary_clustered_index",
            QueryClass::JoinNoIndex => "join_no_index",
            QueryClass::JoinIndexed => "join_indexed",
        }
    }

    /// Parses the stable tag.
    pub fn parse(s: &str) -> Result<QueryClass, CoreError> {
        QueryClass::all()
            .into_iter()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| parse_err(format!("unknown query class `{s}`")))
    }
}

impl CostModel {
    /// Serializes the model to a catalog entry.
    pub fn to_catalog_entry(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("costmodel {FORMAT_VERSION}\n"));
        out.push_str(&format!("form {}\n", self.form.as_str()));
        let edges: Vec<String> = self.states.edges().iter().map(|&e| fmt_f64(e)).collect();
        out.push_str(&format!("states {}\n", edges.join(" ")));
        let vars: Vec<String> = self
            .var_indexes
            .iter()
            .zip(&self.var_names)
            .map(|(i, n)| format!("{i}:{n}"))
            .collect();
        out.push_str(&format!("vars {}\n", vars.join(" ")));
        out.push_str(&format!(
            "fit {} {} {} {} {} {} {}\n",
            fmt_f64(self.fit.r_squared),
            fmt_f64(self.fit.adj_r_squared),
            fmt_f64(self.fit.see),
            fmt_f64(self.fit.f_statistic),
            fmt_f64(self.fit.f_p_value),
            self.fit.n,
            self.fit.k
        ));
        for (s, coefs) in self.coefficients.iter().enumerate() {
            let cs: Vec<String> = coefs.iter().map(|&c| fmt_f64(c)).collect();
            out.push_str(&format!("coef {s} {}\n", cs.join(" ")));
        }
        out.push_str("end\n");
        out
    }

    /// Parses a catalog entry produced by [`Self::to_catalog_entry`].
    pub fn from_catalog_entry(text: &str) -> Result<CostModel, CoreError> {
        CostModel::from_catalog_entry_at(text, 1)
    }

    /// Like [`Self::from_catalog_entry`], but `first_line` names the
    /// 1-based line number `text` starts at within the enclosing file, so
    /// errors point at the absolute offending line.
    pub fn from_catalog_entry_at(text: &str, first_line: usize) -> Result<CostModel, CoreError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (first_line + i, l.trim()))
            .filter(|(_, l)| !l.is_empty());
        let (hline, header) = lines
            .next()
            .ok_or_else(|| parse_err_at(first_line, "empty entry"))?;
        let mut h = header.split_whitespace();
        if h.next() != Some("costmodel") {
            return Err(parse_err_at(hline, "missing `costmodel` header"));
        }
        let version = h
            .next()
            .ok_or_else(|| parse_err_at(hline, "missing version"))?;
        if version != FORMAT_VERSION {
            return Err(parse_err_at(
                hline,
                format!("unsupported version `{version}`"),
            ));
        }
        let mut form: Option<ModelForm> = None;
        let mut states: Option<StateSet> = None;
        let mut var_indexes = Vec::new();
        let mut var_names = Vec::new();
        let mut fit: Option<FitStats> = None;
        let mut coefficients: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut last_line = hline;
        for (ln, line) in lines {
            last_line = ln;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("form") => {
                    form = Some(pin_line(
                        ln,
                        ModelForm::parse(
                            parts
                                .next()
                                .ok_or_else(|| parse_err_at(ln, "form tag missing"))?,
                        ),
                    )?);
                }
                Some("states") => {
                    let edges: Result<Vec<f64>, _> = parts.map(parse_f64).collect();
                    states = Some(StateSet::from_edges(pin_line(ln, edges)?)?);
                }
                Some("vars") => {
                    for v in parts {
                        let (idx, name) = v
                            .split_once(':')
                            .ok_or_else(|| parse_err_at(ln, format!("bad var spec `{v}`")))?;
                        var_indexes.push(
                            idx.parse::<usize>()
                                .map_err(|_| parse_err_at(ln, format!("bad var index `{idx}`")))?,
                        );
                        var_names.push(name.to_string());
                    }
                }
                Some("fit") => {
                    let vals: Vec<&str> = parts.collect();
                    if vals.len() != 7 {
                        return Err(parse_err_at(ln, "fit line needs 7 fields"));
                    }
                    fit = Some(FitStats {
                        r_squared: pin_line(ln, parse_f64(vals[0]))?,
                        adj_r_squared: pin_line(ln, parse_f64(vals[1]))?,
                        see: pin_line(ln, parse_f64(vals[2]))?,
                        f_statistic: pin_line(ln, parse_f64(vals[3]))?,
                        f_p_value: pin_line(ln, parse_f64(vals[4]))?,
                        n: vals[5]
                            .parse()
                            .map_err(|_| parse_err_at(ln, "bad n in fit line"))?,
                        k: vals[6]
                            .parse()
                            .map_err(|_| parse_err_at(ln, "bad k in fit line"))?,
                    });
                }
                Some("coef") => {
                    let s: usize = parts
                        .next()
                        .ok_or_else(|| parse_err_at(ln, "coef state missing"))?
                        .parse()
                        .map_err(|_| parse_err_at(ln, "bad coef state index"))?;
                    let cs: Result<Vec<f64>, _> = parts.map(parse_f64).collect();
                    coefficients.push((s, pin_line(ln, cs)?));
                }
                Some("end") => break,
                Some(other) => return Err(parse_err_at(ln, format!("unknown line `{other}`"))),
                None => continue,
            }
        }
        let form = form.ok_or_else(|| parse_err_at(last_line, "missing form"))?;
        let states = states.ok_or_else(|| parse_err_at(last_line, "missing states"))?;
        let fit = fit.ok_or_else(|| parse_err_at(last_line, "missing fit"))?;
        coefficients.sort_by_key(|(s, _)| *s);
        if coefficients.len() != states.len() {
            return Err(parse_err_at(
                last_line,
                format!(
                    "{} coefficient rows for {} states",
                    coefficients.len(),
                    states.len()
                ),
            ));
        }
        let p = var_indexes.len();
        let coefficients: Vec<Vec<f64>> = coefficients.into_iter().map(|(_, c)| c).collect();
        if coefficients.iter().any(|c| c.len() != p + 1) {
            return Err(parse_err_at(
                last_line,
                "coefficient row width does not match vars",
            ));
        }
        Ok(CostModel {
            form,
            states,
            var_indexes,
            var_names,
            coefficients,
            fit,
        })
    }
}

impl ModelAccumulator {
    /// Serializes the accumulator to a catalog entry.
    ///
    /// Each per-state Gram block is written as a `block` line holding the
    /// scalar statistics followed by `xtx`/`xty` lines with the matrix
    /// entries; every float uses the exact shortest-round-trip formatting,
    /// so import reproduces the accumulator bit for bit.
    pub fn to_catalog_entry(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("gramacc {FORMAT_VERSION}\n"));
        out.push_str(&format!("form {}\n", self.form().as_str()));
        let edges: Vec<String> = self.states().edges().iter().map(|&e| fmt_f64(e)).collect();
        out.push_str(&format!("states {}\n", edges.join(" ")));
        let vars: Vec<String> = self
            .var_indexes()
            .iter()
            .zip(self.var_names())
            .map(|(i, n)| format!("{i}:{n}"))
            .collect();
        out.push_str(&format!("vars {}\n", vars.join(" ")));
        for (s, b) in self.blocks().iter().enumerate() {
            out.push_str(&format!(
                "block {s} {} {} {}\n",
                b.n(),
                fmt_f64(b.yty()),
                fmt_f64(b.sum_y())
            ));
            let xtx: Vec<String> = b.xtx().iter().map(|&v| fmt_f64(v)).collect();
            out.push_str(&format!("xtx {}\n", xtx.join(" ")));
            let xty: Vec<String> = b.xty().iter().map(|&v| fmt_f64(v)).collect();
            out.push_str(&format!("xty {}\n", xty.join(" ")));
        }
        out.push_str("end\n");
        out
    }

    /// Parses a catalog entry produced by [`Self::to_catalog_entry`].
    pub fn from_catalog_entry(text: &str) -> Result<ModelAccumulator, CoreError> {
        ModelAccumulator::from_catalog_entry_at(text, 1)
    }

    /// Like [`Self::from_catalog_entry`], but `first_line` names the
    /// 1-based line number `text` starts at within the enclosing file.
    pub fn from_catalog_entry_at(
        text: &str,
        first_line: usize,
    ) -> Result<ModelAccumulator, CoreError> {
        struct PartialBlock {
            line: usize,
            state: usize,
            n: usize,
            yty: f64,
            sum_y: f64,
            xtx: Option<Vec<f64>>,
            xty: Option<Vec<f64>>,
        }
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (first_line + i, l.trim()))
            .filter(|(_, l)| !l.is_empty());
        let (hline, header) = lines
            .next()
            .ok_or_else(|| parse_err_at(first_line, "empty entry"))?;
        let mut h = header.split_whitespace();
        if h.next() != Some("gramacc") {
            return Err(parse_err_at(hline, "missing `gramacc` header"));
        }
        if h.next() != Some(FORMAT_VERSION) {
            return Err(parse_err_at(hline, "unsupported gramacc version"));
        }
        let mut form: Option<ModelForm> = None;
        let mut states: Option<StateSet> = None;
        let mut var_indexes = Vec::new();
        let mut var_names = Vec::new();
        let mut blocks: Vec<PartialBlock> = Vec::new();
        let mut last_line = hline;
        for (ln, line) in lines {
            last_line = ln;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("form") => {
                    form = Some(pin_line(
                        ln,
                        ModelForm::parse(
                            parts
                                .next()
                                .ok_or_else(|| parse_err_at(ln, "form tag missing"))?,
                        ),
                    )?);
                }
                Some("states") => {
                    let edges: Result<Vec<f64>, _> = parts.map(parse_f64).collect();
                    states = Some(StateSet::from_edges(pin_line(ln, edges)?)?);
                }
                Some("vars") => {
                    for v in parts {
                        let (idx, name) = v
                            .split_once(':')
                            .ok_or_else(|| parse_err_at(ln, format!("bad var spec `{v}`")))?;
                        var_indexes.push(
                            idx.parse::<usize>()
                                .map_err(|_| parse_err_at(ln, format!("bad var index `{idx}`")))?,
                        );
                        var_names.push(name.to_string());
                    }
                }
                Some("block") => {
                    let vals: Vec<&str> = parts.collect();
                    if vals.len() != 4 {
                        return Err(parse_err_at(ln, "block line needs 4 fields"));
                    }
                    blocks.push(PartialBlock {
                        line: ln,
                        state: vals[0]
                            .parse()
                            .map_err(|_| parse_err_at(ln, "bad block state index"))?,
                        n: vals[1]
                            .parse()
                            .map_err(|_| parse_err_at(ln, "bad block n"))?,
                        yty: pin_line(ln, parse_f64(vals[2]))?,
                        sum_y: pin_line(ln, parse_f64(vals[3]))?,
                        xtx: None,
                        xty: None,
                    });
                }
                Some("xtx") => {
                    let vals: Result<Vec<f64>, _> = parts.map(parse_f64).collect();
                    let block = blocks
                        .last_mut()
                        .ok_or_else(|| parse_err_at(ln, "xtx line before any block"))?;
                    block.xtx = Some(pin_line(ln, vals)?);
                }
                Some("xty") => {
                    let vals: Result<Vec<f64>, _> = parts.map(parse_f64).collect();
                    let block = blocks
                        .last_mut()
                        .ok_or_else(|| parse_err_at(ln, "xty line before any block"))?;
                    block.xty = Some(pin_line(ln, vals)?);
                }
                Some("end") => break,
                Some(other) => return Err(parse_err_at(ln, format!("unknown line `{other}`"))),
                None => continue,
            }
        }
        let form = form.ok_or_else(|| parse_err_at(last_line, "missing form"))?;
        let states = states.ok_or_else(|| parse_err_at(last_line, "missing states"))?;
        let k = var_indexes.len() + 1;
        blocks.sort_by_key(|b| b.state);
        if blocks.iter().enumerate().any(|(i, b)| b.state != i) {
            return Err(parse_err_at(
                last_line,
                "block state indexes are not contiguous from 0",
            ));
        }
        let grams: Result<Vec<_>, CoreError> = blocks
            .into_iter()
            .map(|b| {
                let xtx = b
                    .xtx
                    .ok_or_else(|| parse_err_at(b.line, "block missing xtx line"))?;
                let xty = b
                    .xty
                    .ok_or_else(|| parse_err_at(b.line, "block missing xty line"))?;
                mdbs_stats::GramAccumulator::from_parts(k, b.n, xtx, xty, b.yty, b.sum_y)
                    .map_err(CoreError::from)
            })
            .collect();
        ModelAccumulator::from_parts(form, states, var_indexes, var_names, grams?)
    }
}

impl ProbeCostEstimator {
    /// Serializes the estimator to a catalog entry.
    pub fn to_catalog_entry(&self) -> String {
        let sel: Vec<String> = self
            .selected
            .iter()
            .zip(&self.names)
            .map(|(i, n)| format!("{i}:{n}"))
            .collect();
        let coefs: Vec<String> = self.coefficients.iter().map(|&c| fmt_f64(c)).collect();
        format!(
            "probeest {FORMAT_VERSION}\nparams {}\ncoef {}\nfit {} {}\nend\n",
            sel.join(" "),
            coefs.join(" "),
            fmt_f64(self.r_squared),
            fmt_f64(self.see)
        )
    }

    /// Parses a catalog entry produced by [`Self::to_catalog_entry`].
    pub fn from_catalog_entry(text: &str) -> Result<ProbeCostEstimator, CoreError> {
        ProbeCostEstimator::from_catalog_entry_at(text, 1)
    }

    /// Like [`Self::from_catalog_entry`], but `first_line` names the
    /// 1-based line number `text` starts at within the enclosing file.
    pub fn from_catalog_entry_at(
        text: &str,
        first_line: usize,
    ) -> Result<ProbeCostEstimator, CoreError> {
        let mut selected = Vec::new();
        let mut names = Vec::new();
        let mut coefficients = Vec::new();
        let mut r_squared = 0.0;
        let mut see = 0.0;
        let mut seen_header = false;
        let mut last_line = first_line;
        for (ln, line) in text
            .lines()
            .enumerate()
            .map(|(i, l)| (first_line + i, l.trim()))
            .filter(|(_, l)| !l.is_empty())
        {
            last_line = ln;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("probeest") => {
                    if parts.next() != Some(FORMAT_VERSION) {
                        return Err(parse_err_at(ln, "unsupported probeest version"));
                    }
                    seen_header = true;
                }
                Some("params") => {
                    for v in parts {
                        let (idx, name) = v
                            .split_once(':')
                            .ok_or_else(|| parse_err_at(ln, format!("bad param spec `{v}`")))?;
                        selected.push(
                            idx.parse::<usize>()
                                .map_err(|_| parse_err_at(ln, "bad param index"))?,
                        );
                        names.push(name.to_string());
                    }
                }
                Some("coef") => {
                    let cs: Result<Vec<f64>, _> = parts.map(parse_f64).collect();
                    coefficients = pin_line(ln, cs)?;
                }
                Some("fit") => {
                    r_squared = pin_line(
                        ln,
                        parse_f64(parts.next().ok_or_else(|| parse_err_at(ln, "fit r2"))?),
                    )?;
                    see = pin_line(
                        ln,
                        parse_f64(parts.next().ok_or_else(|| parse_err_at(ln, "fit see"))?),
                    )?;
                }
                Some("end") => break,
                Some(other) => return Err(parse_err_at(ln, format!("unknown line `{other}`"))),
                None => continue,
            }
        }
        if !seen_header {
            return Err(parse_err_at(first_line, "missing `probeest` header"));
        }
        if coefficients.len() != selected.len() + 1 {
            return Err(parse_err_at(last_line, "coef width does not match params"));
        }
        Ok(ProbeCostEstimator {
            selected,
            names,
            coefficients,
            r_squared,
            see,
        })
    }
}

impl GlobalCatalog {
    /// Serializes the whole catalog (all models and probe estimators).
    pub fn export(&self) -> String {
        self.export_versioned(0)
    }

    /// Serializes the catalog with a snapshot version tag. Version 0 means
    /// "unversioned" and writes the exact historical byte layout (no
    /// `snapshot-version` line), so pre-existing catalogs and their
    /// byte-identity gates are unaffected; any other version adds a
    /// `snapshot-version N` line right after the header.
    pub fn export_versioned(&self, version: u64) -> String {
        let mut out = format!("mdbs-catalog {FORMAT_VERSION}\n");
        if version > 0 {
            out.push_str(&format!("snapshot-version {version}\n"));
        }
        let mut sites: Vec<SiteId> = self.sites().into_iter().collect();
        sites.sort();
        for site in sites {
            for class in self.classes_for(&site) {
                let model = self.model(&site, class).expect("class listed for site");
                out.push_str(&format!("entry {} {}\n", site, class.as_str()));
                out.push_str(&model.to_catalog_entry());
                if let Some(acc) = self.accumulator(&site, class) {
                    out.push_str(&format!("gram-entry {} {}\n", site, class.as_str()));
                    out.push_str(&acc.to_catalog_entry());
                }
            }
            if let Some(est) = self.probe_estimator(&site) {
                out.push_str(&format!("probe-entry {site}\n"));
                out.push_str(&est.to_catalog_entry());
            }
        }
        out
    }

    /// Parses a catalog produced by [`Self::export`], discarding the
    /// snapshot version if one is present.
    pub fn import(text: &str) -> Result<GlobalCatalog, CoreError> {
        GlobalCatalog::import_versioned(text).map(|(catalog, _)| catalog)
    }

    /// Parses a catalog produced by [`Self::export_versioned`], returning
    /// the catalog and its snapshot version (0 when the text carries no
    /// `snapshot-version` line). Parse errors name the 1-based line of the
    /// input they occurred on.
    pub fn import_versioned(text: &str) -> Result<(GlobalCatalog, u64), CoreError> {
        let mut catalog = GlobalCatalog::new();
        let mut version = 0u64;
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
        let (_, header) = lines.next().ok_or_else(|| parse_err("empty catalog"))?;
        if !header.starts_with("mdbs-catalog") {
            return Err(parse_err_at(1, "missing catalog header"));
        }
        while let Some((ln, line)) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("snapshot-version") => {
                    version = parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| parse_err_at(ln, "bad snapshot-version"))?;
                }
                Some("entry") => {
                    let site: SiteId = parts
                        .next()
                        .ok_or_else(|| parse_err_at(ln, "entry site missing"))?
                        .into();
                    let class = pin_line(
                        ln,
                        QueryClass::parse(
                            parts
                                .next()
                                .ok_or_else(|| parse_err_at(ln, "entry class missing"))?,
                        ),
                    )?;
                    let (block, start) = collect_block(&mut lines, ln)?;
                    let model = CostModel::from_catalog_entry_at(&block, start)?;
                    catalog.insert_model(site, class, model);
                }
                Some("gram-entry") => {
                    let site: SiteId = parts
                        .next()
                        .ok_or_else(|| parse_err_at(ln, "gram-entry site missing"))?
                        .into();
                    let class = pin_line(
                        ln,
                        QueryClass::parse(
                            parts
                                .next()
                                .ok_or_else(|| parse_err_at(ln, "gram-entry class missing"))?,
                        ),
                    )?;
                    let (block, start) = collect_block(&mut lines, ln)?;
                    let acc = ModelAccumulator::from_catalog_entry_at(&block, start)?;
                    catalog.insert_accumulator(site, class, acc);
                }
                Some("probe-entry") => {
                    let site: SiteId = parts
                        .next()
                        .ok_or_else(|| parse_err_at(ln, "probe-entry site missing"))?
                        .into();
                    let (block, start) = collect_block(&mut lines, ln)?;
                    let est = ProbeCostEstimator::from_catalog_entry_at(&block, start)?;
                    catalog.insert_probe_estimator(site, est);
                }
                Some(other) => {
                    return Err(parse_err_at(ln, format!("unknown catalog line `{other}`")))
                }
                None => continue,
            }
        }
        Ok((catalog, version))
    }
}

/// Collects lines up to and including the next `end`, returning the block
/// text and the 1-based line number its first line had in the input
/// (`after_line + 1`; errors in the block are reported relative to it).
fn collect_block<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    after_line: usize,
) -> Result<(String, usize), CoreError> {
    let mut block = String::new();
    for (_ln, line) in lines.by_ref() {
        block.push_str(line);
        block.push('\n');
        if line.trim() == "end" {
            return Ok((block, after_line + 1));
        }
    }
    Err(parse_err_at(
        after_line,
        "unterminated block (missing `end`)",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fit_cost_model;
    use crate::observation::Observation;

    fn sample_model(m: usize) -> CostModel {
        let states = if m == 1 {
            StateSet::single()
        } else {
            StateSet::uniform(0.0, m as f64, m).unwrap()
        };
        let mut obs = Vec::new();
        for s in 0..m {
            for i in 0..12 {
                let x = i as f64 * 3.0;
                obs.push(Observation {
                    x: vec![x, x * 0.7, (i % 4) as f64 * 2.0],
                    cost: (s + 1) as f64 * (1.5 + 2.5 * x) + (i % 3) as f64 * 0.01,
                    probe_cost: s as f64 + 0.5,
                });
            }
        }
        fit_cost_model(
            if m == 1 {
                ModelForm::Coincident
            } else {
                ModelForm::General
            },
            states,
            vec![0, 2],
            vec!["N_O".into(), "N_R".into()],
            &obs,
        )
        .unwrap()
    }

    #[test]
    fn cost_model_roundtrip_exact() {
        for m in [1usize, 3, 5] {
            let model = sample_model(m);
            let text = model.to_catalog_entry();
            let back = CostModel::from_catalog_entry(&text).unwrap();
            assert_eq!(back, model, "m = {m}");
        }
    }

    #[test]
    fn single_state_infinite_edges_roundtrip() {
        let model = sample_model(1);
        assert!(model.states.edges()[0].is_infinite());
        let back = CostModel::from_catalog_entry(&model.to_catalog_entry()).unwrap();
        assert_eq!(back.states.edges(), model.states.edges());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CostModel::from_catalog_entry("").is_err());
        assert!(CostModel::from_catalog_entry("costmodel v999\nend\n").is_err());
        assert!(CostModel::from_catalog_entry("costmodel v1\nbogus line\nend\n").is_err());
        // Truncated: missing coefficients for one state.
        let model = sample_model(3);
        let text = model.to_catalog_entry();
        let truncated: String = text
            .lines()
            .filter(|l| !l.starts_with("coef 2"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(CostModel::from_catalog_entry(&truncated).is_err());
    }

    #[test]
    fn class_tags_roundtrip() {
        for class in QueryClass::all() {
            assert_eq!(QueryClass::parse(class.as_str()).unwrap(), class);
        }
        assert!(QueryClass::parse("nonsense").is_err());
    }

    #[test]
    fn form_tags_roundtrip() {
        for form in [
            ModelForm::Coincident,
            ModelForm::Parallel,
            ModelForm::Concurrent,
            ModelForm::General,
        ] {
            assert_eq!(ModelForm::parse(form.as_str()).unwrap(), form);
        }
    }

    #[test]
    fn catalog_roundtrip() {
        let mut catalog = GlobalCatalog::new();
        catalog.insert_model("site-a".into(), QueryClass::UnaryNoIndex, sample_model(3));
        catalog.insert_model("site-a".into(), QueryClass::JoinNoIndex, sample_model(2));
        catalog.insert_model("site-b".into(), QueryClass::UnaryNoIndex, sample_model(4));
        let text = catalog.export();
        let back = GlobalCatalog::import(&text).unwrap();
        assert_eq!(back.len(), 3);
        for (site, class) in [
            ("site-a", QueryClass::UnaryNoIndex),
            ("site-a", QueryClass::JoinNoIndex),
            ("site-b", QueryClass::UnaryNoIndex),
        ] {
            assert_eq!(
                back.model(&site.into(), class),
                catalog.model(&site.into(), class),
                "{site}/{class:?}"
            );
        }
    }

    #[test]
    fn accumulator_roundtrip_exact() {
        for m in [1usize, 3] {
            let model = sample_model(m);
            let obs: Vec<Observation> = (0..(12 * m))
                .map(|i| {
                    let x = i as f64 * 3.0;
                    Observation {
                        x: vec![x, x * 0.7, (i % 4) as f64 * 2.0],
                        cost: 1.5 + 2.5 * x + (i % 3) as f64 * 0.01,
                        probe_cost: (i % m) as f64 + 0.5,
                    }
                })
                .collect();
            let acc = ModelAccumulator::from_observations(&model, &obs);
            let text = acc.to_catalog_entry();
            let back = ModelAccumulator::from_catalog_entry(&text).unwrap();
            // Bit-exact: shortest-round-trip floats reproduce every Gram entry.
            assert_eq!(back, acc, "m = {m}");
            assert_eq!(back.refit().unwrap(), acc.refit().unwrap(), "m = {m}");
        }
    }

    #[test]
    fn accumulator_parse_rejects_garbage() {
        assert!(ModelAccumulator::from_catalog_entry("").is_err());
        assert!(ModelAccumulator::from_catalog_entry("gramacc v999\nend\n").is_err());
        let model = sample_model(3);
        let acc = ModelAccumulator::from_observations(&model, &[]);
        let text = acc.to_catalog_entry();
        // Drop one block's xty line: the block is incomplete.
        let mut dropped = false;
        let truncated: String = text
            .lines()
            .filter(|l| {
                if !dropped && l.starts_with("xty") {
                    dropped = true;
                    false
                } else {
                    true
                }
            })
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(ModelAccumulator::from_catalog_entry(&truncated).is_err());
        // Renumber a block so the state indexes are not contiguous.
        let renumbered = text.replace("block 2 ", "block 7 ");
        assert!(ModelAccumulator::from_catalog_entry(&renumbered).is_err());
    }

    #[test]
    fn catalog_roundtrip_with_gram_entries() {
        let mut catalog = GlobalCatalog::new();
        let model = sample_model(3);
        let obs: Vec<Observation> = (0..36)
            .map(|i| {
                let x = i as f64 * 3.0;
                Observation {
                    x: vec![x, x * 0.7, (i % 4) as f64 * 2.0],
                    cost: 1.5 + 2.5 * x + (i % 3) as f64 * 0.01,
                    probe_cost: (i % 3) as f64 + 0.5,
                }
            })
            .collect();
        let acc = ModelAccumulator::from_observations(&model, &obs);
        catalog.insert_model("site-a".into(), QueryClass::UnaryNoIndex, model);
        catalog.insert_accumulator("site-a".into(), QueryClass::UnaryNoIndex, acc.clone());
        catalog.insert_model("site-b".into(), QueryClass::JoinNoIndex, sample_model(2));
        let text = catalog.export();
        let back = GlobalCatalog::import(&text).unwrap();
        assert_eq!(
            back.accumulator(&"site-a".into(), QueryClass::UnaryNoIndex),
            Some(&acc)
        );
        assert!(back
            .accumulator(&"site-b".into(), QueryClass::JoinNoIndex)
            .is_none());
        // A second export of the re-imported catalog is byte-identical.
        assert_eq!(back.export(), text);
    }

    #[test]
    fn catalog_import_rejects_bad_header() {
        assert!(GlobalCatalog::import("not a catalog\n").is_err());
        assert!(GlobalCatalog::import("").is_err());
    }

    fn error_message(e: CoreError) -> String {
        match e {
            CoreError::Degenerate(msg) => msg,
            other => panic!("unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_absolute_line_numbers() {
        // Corrupt one float deep inside a multi-entry catalog: the error
        // must name the absolute line of the corrupted text, not a
        // block-relative offset.
        let mut catalog = GlobalCatalog::new();
        catalog.insert_model("site-a".into(), QueryClass::UnaryNoIndex, sample_model(3));
        catalog.insert_model("site-b".into(), QueryClass::JoinNoIndex, sample_model(2));
        let text = catalog.export();
        let lines: Vec<&str> = text.lines().collect();
        // Corrupt the *last* `fit` line (inside site-b's entry).
        let bad_line_no = lines
            .iter()
            .rposition(|l| l.starts_with("fit "))
            .map(|i| i + 1)
            .unwrap();
        let corrupted: String = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i + 1 == bad_line_no {
                    "fit NOT_A_FLOAT 0 0 0 0 5 2\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let msg = error_message(GlobalCatalog::import(&corrupted).unwrap_err());
        assert_eq!(
            msg,
            format!("catalog parse error at line {bad_line_no}: bad float `NOT_A_FLOAT`"),
        );
    }

    #[test]
    fn unknown_line_error_names_its_line() {
        let mut catalog = GlobalCatalog::new();
        catalog.insert_model("site-a".into(), QueryClass::UnaryNoIndex, sample_model(1));
        let mut text = catalog.export();
        text.push_str("garbage-line here\n");
        let n = text.lines().count();
        let msg = error_message(GlobalCatalog::import(&text).unwrap_err());
        assert_eq!(
            msg,
            format!("catalog parse error at line {n}: unknown catalog line `garbage-line`"),
        );
    }

    #[test]
    fn snapshot_version_roundtrip() {
        let mut catalog = GlobalCatalog::new();
        catalog.insert_model("site-a".into(), QueryClass::UnaryNoIndex, sample_model(3));
        // Version 0 keeps the historical byte layout.
        assert_eq!(catalog.export_versioned(0), catalog.export());
        let versioned = catalog.export_versioned(42);
        assert!(versioned.contains("snapshot-version 42\n"));
        let (back, v) = GlobalCatalog::import_versioned(&versioned).unwrap();
        assert_eq!(v, 42);
        assert_eq!(back.export(), catalog.export());
        // Plain import tolerates the version line.
        assert_eq!(GlobalCatalog::import(&versioned).unwrap().len(), 1);
        // A bad version value is a parse error at line 2.
        let msg = error_message(
            GlobalCatalog::import(&versioned.replace("snapshot-version 42", "snapshot-version x"))
                .unwrap_err(),
        );
        assert_eq!(msg, "catalog parse error at line 2: bad snapshot-version");
    }
}
