//! Feedback-driven online correction of served estimates (ROADMAP item 2).
//!
//! The paper keeps cost models accurate in a *dynamic* environment by
//! re-deriving them — a heavyweight reaction. Between retrains there is a
//! much cheaper signal: every `observe` event compares a served estimate
//! against the cost the site actually charged, and the resulting relative
//! error is strongly autocorrelated per (site, contention-state) when the
//! environment shifts durably (a 12× I/O degrade biases *every* estimate in
//! a state by roughly the same factor). This module folds that residual
//! stream into a [`CorrectionLedger`] of per-(site, state) running
//! statistics and multiplies the learned bias out of every served estimate,
//! in the spirit of low-cost online model corrections between retrains
//! (see PAPERS.md: adaptive cost models folding execution feedback).
//!
//! Two statistics per cell, both plain EWMAs so the fold is O(1),
//! deterministic, and independent of worker count:
//!
//! * **bias** — EWMA of the *signed* relative error
//!   `(raw_estimate − observed) / observed` of the **raw** model output.
//!   Learning on raw (not corrected) estimates keeps the statistic a
//!   property of the model itself: a working correction would otherwise
//!   drive its own evidence to zero and immediately unlearn itself.
//! * **scale** — EWMA of `|rel − bias|`, a robust dispersion of the
//!   residuals around the learned bias. Served as the `±` confidence
//!   annotation: a small bias with a huge scale is noise, not signal.
//!
//! A cell only corrects after [`MIN_SAMPLES`] folds (cold cells serve the
//! raw estimate), and the correction is the multiplicative factor
//! `1 / (1 + bias)`, clamped to [`FACTOR_CLAMP`] so a pathological bias
//! near −1 cannot blow an estimate up unboundedly.
//!
//! ## The escalation ladder
//!
//! Correction is the first rung of the serving loop's maintenance ladder:
//!
//! 1. **correct** — cheap, per-observation, no model change;
//! 2. **refit** — when `|bias|` saturates a configurable threshold
//!    ([`CorrectionConfig::saturation`]), the model itself is wrong enough
//!    that the loop spends one incremental refit
//!    ([`crate::maintenance::ModelMaintainer::refit_incremental`]) per
//!    episode to fold the new regime into the coefficients;
//! 3. **rederive** — if the bias saturates *again* after that refit, the
//!    cheap rungs are exhausted: the cell is **suspended** (corrections
//!    stop, raw estimates flow) so the drift monitor sees the model's true
//!    quality and can trip the full
//!    [`crate::maintenance::rederive_drifted`] path. Papering over a
//!    saturated correction forever would hide the drift signal the
//!    heavyweight rung keys on.
//!
//! Cells reset whenever their site's model is republished (the learned
//! bias described the old snapshot), and the per-model refit budget is
//! restored by a rederivation — the ladder starts over against the fresh
//! model.
//!
//! ## The unified estimation entry point
//!
//! Corrections reach estimates through one choke point:
//! [`crate::registry::ModelRegistry::estimate`] /
//! [`crate::catalog::GlobalCatalog::estimate`], both taking an
//! [`EstimateQuery`] and returning an
//! [`crate::registry::EstimateDetail`] carrying the corrected estimate,
//! the raw model output, the applied factor, the confidence, the snapshot
//! version and the detected contention state. The historical
//! `estimate_local_cost` / `estimate_with_version` / `estimate_detailed`
//! trio survived one release as `#[deprecated]` delegating shims and is
//! gone (the `expired-deprecation` lint rule now enforces that grace
//! policy mechanically).

use crate::catalog::SiteId;
use crate::registry::EstimateDetail;
use mdbs_obs::Telemetry;
use mdbs_sim::catalog::LocalCatalog;
use mdbs_sim::query::Query;
use std::collections::BTreeMap;

/// Folds a correction cell only after this many observations: a single
/// residual is noise, not bias.
pub const MIN_SAMPLES: u64 = 3;

/// Clamp on the multiplicative correction factor `1 / (1 + bias)`: a bias
/// approaching −1 (raw estimates near zero against large observed costs)
/// must not blow an estimate up without bound.
pub const FACTOR_CLAMP: (f64, f64) = (0.05, 20.0);

/// Knobs of the correction layer. Carried inside
/// [`crate::server::ServeConfig`] (`correction_*` fields) and validated by
/// its builder.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectionConfig {
    /// EWMA smoothing factor in `(0, 1]` for both the bias and the scale
    /// statistic. Larger adapts faster and forgets faster.
    pub ewma_alpha: f64,
    /// `|bias|` at or above this (with [`MIN_SAMPLES`] evidence) saturates
    /// the cell and escalates to an incremental refit.
    pub saturation: f64,
    /// Upper bound on live cells; the least-recently-observed cell is
    /// evicted when a new key would exceed it.
    pub max_cells: usize,
}

impl Default for CorrectionConfig {
    fn default() -> Self {
        CorrectionConfig {
            ewma_alpha: 0.25,
            saturation: 0.5,
            max_cells: 1024,
        }
    }
}

/// One (site, state) correction cell.
#[derive(Debug, Clone, PartialEq)]
struct Cell {
    /// EWMA of the signed relative error of raw estimates.
    bias: f64,
    /// EWMA of `|rel − bias|`: robust residual dispersion.
    scale: f64,
    /// Observations folded in.
    samples: u64,
    /// Monotone recency stamp for LRU eviction.
    touch: u64,
    /// Set once the per-model refit budget is exhausted: the cell stops
    /// correcting so the drift monitor sees raw quality.
    suspended: bool,
}

/// What one [`CorrectionLedger::observe`] fold did to its cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellUpdate {
    /// The signed relative error folded in.
    pub rel: f64,
    /// The cell's bias after the fold.
    pub bias: f64,
    /// The cell's scale after the fold.
    pub scale: f64,
    /// Observations in the cell after the fold.
    pub samples: u64,
    /// Whether the cell is saturated (`|bias| ≥ saturation` with
    /// [`MIN_SAMPLES`] evidence) — the escalation trigger.
    pub saturated: bool,
}

/// A correction applied (or declined) for one served estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correction {
    /// The estimate to serve (equals the raw estimate when not applied).
    pub estimate: f64,
    /// Multiplicative factor applied (1.0 when not applied).
    pub factor: f64,
    /// The cell's residual scale — the `±` confidence annotation.
    pub confidence: f64,
    /// Whether a warm, non-suspended cell actually corrected.
    pub applied: bool,
}

impl Correction {
    /// The identity correction: raw estimate served untouched.
    fn none(raw: f64) -> Correction {
        Correction {
            estimate: raw,
            factor: 1.0,
            confidence: 0.0,
            applied: false,
        }
    }
}

/// Per-(site, state) running bias/scale statistics over the residual
/// stream, bounded by an LRU cap. Mutated only from the serving loop's
/// serial event path; estimation reads it through a shared reference, so
/// every decision is worker-count-independent by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectionLedger {
    config: CorrectionConfig,
    cells: BTreeMap<(String, String), Cell>,
    touch_counter: u64,
    evictions: u64,
}

impl CorrectionLedger {
    /// An empty ledger with the given knobs (`max_cells` is clamped to at
    /// least 1 so the ledger can always hold the cell it is folding).
    pub fn new(config: CorrectionConfig) -> CorrectionLedger {
        let config = CorrectionConfig {
            max_cells: config.max_cells.max(1),
            ..config
        };
        CorrectionLedger {
            config,
            cells: BTreeMap::new(),
            touch_counter: 0,
            evictions: 0,
        }
    }

    /// The knobs this ledger runs with.
    pub fn config(&self) -> &CorrectionConfig {
        &self.config
    }

    /// Folds one (raw estimate, observed cost) pair into the cell,
    /// creating (and LRU-evicting) as needed. The relative error is
    /// `(raw − observed) / observed` with the denominator floored away
    /// from zero, exactly like the accuracy ledger's.
    // ctx: serial-only
    pub fn observe(&mut self, site: &str, state: &str, raw: f64, observed: f64) -> CellUpdate {
        let denom = observed.abs().max(1e-12);
        let rel = (raw - observed) / denom;
        let key = (site.to_string(), state.to_string());
        if !self.cells.contains_key(&key) && self.cells.len() >= self.config.max_cells {
            let oldest = self
                .cells
                .iter()
                .min_by_key(|(_, c)| c.touch)
                .map(|(k, _)| k.clone())
                .expect("non-empty at cap");
            self.cells.remove(&oldest);
            self.evictions += 1;
        }
        self.touch_counter += 1;
        let touch = self.touch_counter;
        let alpha = self.config.ewma_alpha;
        let cell = self.cells.entry(key).or_insert(Cell {
            bias: rel,
            scale: rel.abs(),
            samples: 0,
            touch,
            suspended: false,
        });
        if cell.samples > 0 {
            cell.bias += alpha * (rel - cell.bias);
            cell.scale += alpha * ((rel - cell.bias).abs() - cell.scale);
        }
        cell.samples += 1;
        cell.touch = touch;
        CellUpdate {
            rel,
            bias: cell.bias,
            scale: cell.scale,
            samples: cell.samples,
            saturated: cell.samples >= MIN_SAMPLES && cell.bias.abs() >= self.config.saturation,
        }
    }

    /// The correction for one raw estimate: a warm (≥ [`MIN_SAMPLES`]),
    /// non-suspended cell divides the learned bias out
    /// (`raw / (1 + bias)`, clamped to [`FACTOR_CLAMP`]); anything else is
    /// the identity. Pure — safe to call from pool workers through a
    /// shared reference.
    pub fn correct(&self, site: &str, state: &str, raw: f64) -> Correction {
        let Some(cell) = self.cells.get(&(site.to_string(), state.to_string())) else {
            return Correction::none(raw);
        };
        if cell.suspended || cell.samples < MIN_SAMPLES {
            return Correction::none(raw);
        }
        let factor = 1.0 / (1.0 + cell.bias);
        if !factor.is_finite() {
            return Correction::none(raw);
        }
        let factor = factor.clamp(FACTOR_CLAMP.0, FACTOR_CLAMP.1);
        Correction {
            estimate: raw * factor,
            factor,
            confidence: cell.scale,
            applied: true,
        }
    }

    /// Suspends a cell: it keeps folding evidence but stops correcting, so
    /// raw estimate quality reaches the drift monitor. Returns `true` when
    /// the cell existed and was not already suspended.
    // ctx: serial-only
    pub fn suspend(&mut self, site: &str, state: &str) -> bool {
        match self.cells.get_mut(&(site.to_string(), state.to_string())) {
            Some(cell) if !cell.suspended => {
                cell.suspended = true;
                true
            }
            _ => false,
        }
    }

    /// Drops every cell of a site — called when the site's model is
    /// republished (refit or rederivation): the learned bias described the
    /// old snapshot.
    // ctx: serial-only
    pub fn reset_site(&mut self, site: &str) {
        self.cells.retain(|(s, _), _| s != site);
    }

    /// Live cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell is live.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total observations folded across live cells.
    pub fn samples(&self) -> u64 {
        self.cells.values().map(|c| c.samples).sum()
    }

    /// Cells evicted by the LRU cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Largest `|bias|` across live cells (0 when empty) — the heartbeat's
    /// one-number summary of how hard the layer is working.
    pub fn max_abs_bias(&self) -> f64 {
        self.cells
            .values()
            .map(|c| c.bias.abs())
            .fold(0.0, f64::max)
    }

    /// Folds the ledger's own counters into telemetry:
    /// `serve.correction.cells` / `.samples` gauges and the
    /// `serve.correction.evictions` counter.
    pub fn fold_metrics(&self, tel: &mut Telemetry) {
        tel.gauge("serve.correction.cells", self.len() as f64);
        tel.gauge("serve.correction.samples", self.samples() as f64);
        tel.inc("serve.correction.evictions", self.evictions);
    }
}

/// The one input struct of the unified estimation entry point
/// ([`crate::registry::ModelRegistry::estimate`] /
/// [`crate::catalog::GlobalCatalog::estimate`]): everything the
/// historical estimation trio threaded through diverging signatures,
/// plus the optional
/// correction ledger whose learned bias is divided out of the raw model
/// output.
#[derive(Debug, Clone, Copy)]
pub struct EstimateQuery<'a> {
    /// The site to price at.
    pub site: &'a SiteId,
    /// The site's local schema (classification + variable extraction).
    pub schema: &'a LocalCatalog,
    /// The query to price.
    pub query: &'a Query,
    /// The probing cost gauged in the target environment — selects the
    /// contention state.
    pub probe_cost: f64,
    /// Online correction ledger; `None` serves the raw model output.
    pub correction: Option<&'a CorrectionLedger>,
}

impl<'a> EstimateQuery<'a> {
    /// An uncorrected query — the exact semantics of the deprecated trio.
    pub fn raw(
        site: &'a SiteId,
        schema: &'a LocalCatalog,
        query: &'a Query,
        probe_cost: f64,
    ) -> EstimateQuery<'a> {
        EstimateQuery {
            site,
            schema,
            query,
            probe_cost,
            correction: None,
        }
    }

    /// The same query with a correction ledger attached.
    pub fn with_correction(mut self, ledger: &'a CorrectionLedger) -> EstimateQuery<'a> {
        self.correction = Some(ledger);
        self
    }
}

/// Shared pricing core of [`crate::registry::ModelRegistry::estimate`] and
/// [`crate::catalog::GlobalCatalog::estimate`]: extract the class's
/// Table-3 variables, project onto the model's selected subset, detect the
/// contention state, evaluate, and apply the correction ledger (when
/// attached and warm).
pub(crate) fn price_with_model(
    model: &crate::model::CostModel,
    version: u64,
    class: crate::classes::QueryClass,
    q: &EstimateQuery<'_>,
) -> Option<EstimateDetail> {
    let family: crate::variables::VariableFamily = class.family();
    let x = family.extract(q.schema, q.query)?;
    let x_sel: Vec<f64> = model.var_indexes.iter().map(|&i| x[i]).collect();
    let state = model.states.state_of(q.probe_cost);
    let state_label = model.states.paper_label(state);
    let raw = model.estimate(&x_sel, q.probe_cost);
    let correction = q
        .correction
        .map(|ledger| ledger.correct(&q.site.0, &state_label, raw))
        .unwrap_or_else(|| Correction::none(raw));
    Some(EstimateDetail {
        estimate: correction.estimate,
        raw_estimate: raw,
        correction: correction.factor,
        corrected: correction.applied,
        confidence: correction.confidence,
        version,
        state,
        state_label,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(alpha: f64, saturation: f64, max_cells: usize) -> CorrectionLedger {
        CorrectionLedger::new(CorrectionConfig {
            ewma_alpha: alpha,
            saturation,
            max_cells,
        })
    }

    /// Satellite: the EWMA bias/scale arithmetic against hand-computed
    /// values. α = 0.5; relative errors +0.20 then +0.40 on observed 100:
    ///
    /// * fold 1 seeds: bias = 0.20, scale = |0.20| = 0.20
    /// * fold 2: bias = 0.20 + 0.5·(0.40 − 0.20) = 0.30 and
    ///   scale = 0.20 + 0.5·(|0.40 − 0.30| − 0.20) = 0.15
    #[test]
    fn ewma_bias_and_scale_match_hand_computation() {
        let mut l = ledger(0.5, 10.0, 16);
        let u1 = l.observe("oracle", "S1", 120.0, 100.0);
        assert!((u1.rel - 0.20).abs() < 1e-12);
        assert!((u1.bias - 0.20).abs() < 1e-12);
        assert!((u1.scale - 0.20).abs() < 1e-12);
        assert_eq!(u1.samples, 1);
        let u2 = l.observe("oracle", "S1", 140.0, 100.0);
        assert!((u2.rel - 0.40).abs() < 1e-12, "rel {}", u2.rel);
        assert!((u2.bias - 0.30).abs() < 1e-12, "bias {}", u2.bias);
        assert!((u2.scale - 0.15).abs() < 1e-12, "scale {}", u2.scale);
        assert_eq!(u2.samples, 2);
        assert!(!u2.saturated, "below min samples");
    }

    #[test]
    fn correction_divides_learned_bias_out_after_warmup() {
        let mut l = ledger(0.5, 10.0, 16);
        // Model overestimates by exactly +25% in this cell.
        for _ in 0..2 {
            l.observe("oracle", "S1", 125.0, 100.0);
        }
        // Cold cell (2 < MIN_SAMPLES): identity.
        let cold = l.correct("oracle", "S1", 125.0);
        assert!(!cold.applied);
        assert_eq!(cold.estimate, 125.0);
        l.observe("oracle", "S1", 125.0, 100.0);
        // Warm: bias = 0.25, factor = 1/1.25 = 0.8 → 125 → 100.
        let c = l.correct("oracle", "S1", 125.0);
        assert!(c.applied);
        assert!((c.factor - 0.8).abs() < 1e-12, "factor {}", c.factor);
        assert!((c.estimate - 100.0).abs() < 1e-9, "estimate {}", c.estimate);
        // Constant residuals: the scale seeded at |rel| = 0.25 halves on
        // every fold (α = 0.5, zero deviation) — 0.25 → 0.125 → 0.0625.
        assert!((c.confidence - 0.0625).abs() < 1e-12, "{}", c.confidence);
        // An unknown cell stays identity.
        assert!(!l.correct("oracle", "S2", 50.0).applied);
        assert!(!l.correct("db2", "S1", 50.0).applied);
    }

    #[test]
    fn saturation_needs_both_evidence_and_magnitude() {
        let mut l = ledger(0.5, 0.5, 16);
        // Massive bias but < MIN_SAMPLES folds: not saturated.
        assert!(!l.observe("oracle", "S1", 10.0, 100.0).saturated);
        assert!(!l.observe("oracle", "S1", 10.0, 100.0).saturated);
        // Third fold crosses the evidence gate with |bias| ≈ 0.9 ≥ 0.5.
        let u = l.observe("oracle", "S1", 10.0, 100.0);
        assert!(u.saturated, "bias {} with {} samples", u.bias, u.samples);
        // A small-bias cell never saturates regardless of evidence.
        let mut small = ledger(0.5, 0.5, 16);
        for _ in 0..10 {
            assert!(!small.observe("oracle", "S1", 101.0, 100.0).saturated);
        }
    }

    #[test]
    fn suspension_stops_correcting_but_keeps_folding() {
        let mut l = ledger(0.5, 0.5, 16);
        for _ in 0..4 {
            l.observe("oracle", "S1", 10.0, 100.0);
        }
        assert!(l.correct("oracle", "S1", 10.0).applied);
        assert!(l.suspend("oracle", "S1"));
        assert!(!l.suspend("oracle", "S1"), "already suspended");
        assert!(!l.suspend("oracle", "S9"), "unknown cell");
        let c = l.correct("oracle", "S1", 10.0);
        assert!(!c.applied);
        assert_eq!(c.estimate, 10.0);
        // Evidence keeps folding while suspended.
        let before = l.samples();
        l.observe("oracle", "S1", 10.0, 100.0);
        assert_eq!(l.samples(), before + 1);
    }

    #[test]
    fn reset_site_drops_only_that_sites_cells() {
        let mut l = ledger(0.5, 0.5, 16);
        l.observe("oracle", "S1", 10.0, 100.0);
        l.observe("oracle", "S2", 10.0, 100.0);
        l.observe("db2", "S1", 10.0, 100.0);
        assert_eq!(l.len(), 3);
        l.reset_site("oracle");
        assert_eq!(l.len(), 1);
        assert!(!l.correct("oracle", "S1", 10.0).applied, "cell gone");
        l.observe("db2", "S1", 10.0, 100.0);
        assert_eq!(l.samples(), 2, "db2's cell survived intact");
    }

    #[test]
    fn lru_cap_evicts_least_recently_observed_and_counts() {
        let mut l = ledger(0.5, 0.5, 2);
        l.observe("a", "S1", 1.0, 1.0);
        l.observe("b", "S1", 1.0, 1.0);
        // Touch `a` so `b` is the LRU victim.
        l.observe("a", "S1", 1.0, 1.0);
        l.observe("c", "S1", 1.0, 1.0);
        assert_eq!(l.len(), 2);
        assert_eq!(l.evictions(), 1);
        // `b` was evicted: re-observing it starts a fresh cell (and evicts
        // the now-oldest `a`).
        let u = l.observe("b", "S1", 1.0, 1.0);
        assert_eq!(u.samples, 1);
        assert_eq!(l.evictions(), 2);
        // Existing-key folds never evict.
        l.observe("b", "S1", 1.0, 1.0);
        assert_eq!(l.evictions(), 2);
    }

    #[test]
    fn factor_clamp_bounds_pathological_bias() {
        let mut l = ledger(1.0, 10.0, 4);
        // Raw ~0 against observed 100 → rel ≈ −1 → naive factor explodes.
        for _ in 0..3 {
            l.observe("oracle", "S1", 1e-9, 100.0);
        }
        let c = l.correct("oracle", "S1", 1e-9);
        assert!(c.applied);
        assert!(c.factor <= FACTOR_CLAMP.1, "factor {}", c.factor);
        // Raw huge against tiny observed → factor floors.
        let mut h = ledger(1.0, 10.0, 4);
        for _ in 0..3 {
            h.observe("oracle", "S1", 1000.0, 1.0);
        }
        let c = h.correct("oracle", "S1", 1000.0);
        assert!(c.applied);
        assert!(c.factor >= FACTOR_CLAMP.0, "factor {}", c.factor);
    }

    #[test]
    fn fold_metrics_reports_cells_samples_and_evictions() {
        let mut l = ledger(0.5, 0.5, 1);
        l.observe("a", "S1", 1.0, 1.0);
        l.observe("b", "S1", 1.0, 1.0);
        let mut tel = Telemetry::enabled();
        l.fold_metrics(&mut tel);
        let jsonl = tel.render_jsonl();
        assert!(jsonl.contains("serve.correction.cells"), "{jsonl}");
        assert!(jsonl.contains("serve.correction.evictions"), "{jsonl}");
        assert_eq!(tel.metrics.counter("serve.correction.evictions"), 1);
    }

    #[test]
    fn max_abs_bias_summarises_the_worst_cell() {
        let mut l = ledger(1.0, 10.0, 8);
        assert_eq!(l.max_abs_bias(), 0.0);
        l.observe("a", "S1", 110.0, 100.0);
        l.observe("b", "S1", 50.0, 100.0);
        assert!((l.max_abs_bias() - 0.5).abs() < 1e-12);
    }
}
