//! The end-to-end derivation pipeline (paper §4).
//!
//! For one query class at one local site:
//!
//! 1. draw the planned number of sample queries ([`crate::sampling`]),
//! 2. execute each in the dynamic environment, recording its cost, the
//!    probing cost measured in the same environment and a system-statistics
//!    snapshot,
//! 3. determine the contention states with IUPMA or ICMA
//!    ([`crate::states`]) — drawing targeted extra samples when a state is
//!    thin,
//! 4. run mixed backward/forward variable selection with the states fixed
//!    ([`crate::selection`]),
//! 5. fit the probing-cost estimator of eq. (2) ([`crate::probing`]),
//! 6. return the final model plus everything a report needs (iteration
//!    history, the one-state comparison model, sample statistics).

use crate::classes::QueryClass;
use crate::model::{fit_cost_model, CostModel, ModelForm};
use crate::observation::Observation;
use crate::probing::ProbeCostEstimator;
use crate::sampling::{planned_sample_size, SampleGenerator};
use crate::selection::{select_variables_traced, SelectionConfig};
use crate::states::{
    determine_states_traced, IterationStats, ObservationSource, StateAlgorithm, StatesConfig,
};
use crate::CoreError;
use mdbs_obs::Telemetry;
use mdbs_sim::{MdbsAgent, SystemStats};

/// Configuration of the whole derivation pipeline.
#[derive(Debug, Clone)]
pub struct DerivationConfig {
    /// State-determination knobs.
    pub states: StatesConfig,
    /// Variable-selection knobs.
    pub selection: SelectionConfig,
    /// Override the planned sample size (None → eq. (4)).
    pub sample_size: Option<usize>,
    /// Environment draws allowed per targeted resample before giving up.
    pub max_resample_attempts: usize,
    /// Whether to fit the eq.-(2) probing-cost estimator.
    pub fit_probe_estimator: bool,
}

impl Default for DerivationConfig {
    fn default() -> Self {
        DerivationConfig {
            states: StatesConfig::default(),
            selection: SelectionConfig::default(),
            sample_size: None,
            max_resample_attempts: 40,
            fit_probe_estimator: true,
        }
    }
}

impl DerivationConfig {
    /// A cheap configuration for doc-tests and smoke tests: fewer samples,
    /// fewer states.
    pub fn quick() -> Self {
        DerivationConfig {
            states: StatesConfig {
                max_states: 3,
                ..StatesConfig::default()
            },
            sample_size: Some(150),
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        }
    }
}

/// Everything the derivation produces.
#[derive(Debug, Clone)]
pub struct DerivedModel {
    /// The query class the model covers.
    pub class: QueryClass,
    /// The multi-states cost model.
    pub model: CostModel,
    /// The one-state comparison model (Static Approach 2): same sample,
    /// same selected variables, single contention state.
    pub one_state: CostModel,
    /// Phase-1 iteration history of the state determination.
    pub history: Vec<IterationStats>,
    /// Number of phase-2 merging adjustments.
    pub merges: usize,
    /// The observations the models were fitted on.
    pub observations: Vec<Observation>,
    /// The probing-cost estimator (when requested).
    pub probe_estimator: Option<ProbeCostEstimator>,
    /// Mean observed cost of the sample queries (reported in Table 5).
    pub avg_sample_cost: f64,
}

/// Collects `n` observations for a class: tick the environment, measure the
/// probing cost, run the sample query, extract the Table-3 variables.
/// Optionally records `(stats, probe)` pairs for eq. (2).
pub fn collect_observations(
    agent: &mut MdbsAgent,
    class: QueryClass,
    n: usize,
    generator: &mut SampleGenerator,
    mut probe_log: Option<&mut Vec<(SystemStats, f64)>>,
) -> Result<Vec<Observation>, CoreError> {
    let family = class.family();
    let mut observations = Vec::with_capacity(n);
    while observations.len() < n {
        let query = generator.generate(class, agent.catalog());
        let Some(x) = family.extract(agent.catalog(), &query) else {
            continue; // Shape mismatch cannot happen for generated queries.
        };
        agent.tick();
        if let Some(log) = probe_log.as_deref_mut() {
            log.push((agent.stats(), 0.0));
        }
        let probe_cost = agent.probe();
        if let Some(log) = probe_log.as_deref_mut() {
            log.last_mut().expect("just pushed").1 = probe_cost;
        }
        let exec = agent
            .run(&query)
            .map_err(|e| CoreError::Agent(e.to_string()))?;
        observations.push(Observation {
            x,
            cost: exec.cost_s,
            probe_cost,
        });
    }
    Ok(observations)
}

/// An [`ObservationSource`] that draws targeted extra samples by re-rolling
/// the environment until the probing cost lands in the requested subrange.
pub struct AgentSource<'a> {
    agent: &'a mut MdbsAgent,
    generator: &'a mut SampleGenerator,
    class: QueryClass,
    max_attempts: usize,
}

impl ObservationSource for AgentSource<'_> {
    fn draw_in_range(&mut self, lo: f64, hi: f64) -> Option<Observation> {
        let family = self.class.family();
        for _ in 0..self.max_attempts {
            self.agent.tick();
            let probe_cost = self.agent.probe();
            if !(probe_cost >= lo && probe_cost < hi) {
                continue;
            }
            let query = self.generator.generate(self.class, self.agent.catalog());
            let x = family.extract(self.agent.catalog(), &query)?;
            let exec = self.agent.run(&query).ok()?;
            return Some(Observation {
                x,
                cost: exec.cost_s,
                probe_cost,
            });
        }
        None
    }
}

/// Runs the full pipeline for one class on one agent.
///
/// `seed` drives the sample-query generator (the agent carries its own
/// environment seed).
pub fn derive_cost_model(
    agent: &mut MdbsAgent,
    class: QueryClass,
    algorithm: StateAlgorithm,
    cfg: &DerivationConfig,
    seed: u64,
) -> Result<DerivedModel, CoreError> {
    derive_cost_model_traced(
        agent,
        class,
        algorithm,
        cfg,
        seed,
        &mut Telemetry::disabled(),
    )
}

/// [`derive_cost_model`] with telemetry: one span per pipeline stage
/// (`derive.sampling` → `.states` → `.selection` → `.fit` → `.validation`)
/// carrying observation counts, sample-size rule inputs and virtual-time
/// attribution, plus the `states.*`/`selection.*` counters of the traced
/// stage functions. When the telemetry is enabled, the agent's `engine.*`
/// metrics are collected for the duration and folded in at the end. On an
/// error return, spans opened so far are left open (`wall_ms` 0).
pub fn derive_cost_model_traced(
    agent: &mut MdbsAgent,
    class: QueryClass,
    algorithm: StateAlgorithm,
    cfg: &DerivationConfig,
    seed: u64,
    tel: &mut Telemetry,
) -> Result<DerivedModel, CoreError> {
    let family = class.family();
    let n = cfg
        .sample_size
        .unwrap_or_else(|| planned_sample_size(family, cfg.states.max_states));
    let root = tel.begin_span("derive");
    tel.field(root, "class", format!("{class:?}"));
    tel.field(root, "algorithm", format!("{algorithm:?}"));
    tel.field(root, "planned_n", n as u64);
    tel.field(root, "candidate_vars", family.all().len() as u64);
    tel.field(root, "max_states", cfg.states.max_states as u64);
    // While telemetry is on, also collect the agent's engine.* metrics so
    // the report attributes simulator work to this derivation.
    let fold_engine = tel.is_enabled() && agent.metrics().is_none();
    if fold_engine {
        agent.enable_metrics();
    }

    let mut generator = SampleGenerator::new(seed);
    let mut probe_log = Vec::new();
    let span = tel.begin_span("derive.sampling");
    let clock0 = agent.clock_s();
    let mut observations = collect_observations(
        agent,
        class,
        n,
        &mut generator,
        cfg.fit_probe_estimator.then_some(&mut probe_log),
    )?;
    tel.field(span, "observations", observations.len() as u64);
    tel.field(span, "virtual_s", agent.clock_s() - clock0);
    tel.end_span(span);

    // States are determined against the basic variables (the variables the
    // class is guaranteed to need); selection then refines the term set.
    let basic = family.basic_indexes();
    let basic_names: Vec<String> = basic
        .iter()
        .map(|&i| family.all()[i].name.to_string())
        .collect();
    let span = tel.begin_span("derive.states");
    let clock0 = agent.clock_s();
    let states_result = {
        let mut source = AgentSource {
            agent,
            generator: &mut generator,
            class,
            max_attempts: cfg.max_resample_attempts,
        };
        determine_states_traced(
            algorithm,
            &mut observations,
            &basic,
            &basic_names,
            &cfg.states,
            &mut source,
            tel,
        )?
    };
    tel.field(span, "states", states_result.model.num_states() as u64);
    tel.field(span, "iterations", states_result.history.len() as u64);
    tel.field(span, "merges", states_result.merges as u64);
    tel.field(span, "observations", observations.len() as u64);
    tel.field(span, "virtual_s", agent.clock_s() - clock0);
    tel.end_span(span);

    let span = tel.begin_span("derive.selection");
    let selection = select_variables_traced(
        family,
        &observations,
        &states_result.model.states,
        cfg.states.form,
        &cfg.selection,
        tel,
    )?;
    let model = selection.model;
    tel.field(span, "variables", model.var_indexes.len() as u64);
    tel.field(span, "names", model.var_names.join(","));
    tel.end_span(span);

    // The one-state comparison model: identical sample and variables, but
    // the static method's single contention state.
    let span = tel.begin_span("derive.fit");
    let one_state = fit_cost_model(
        ModelForm::Coincident,
        crate::qualvar::StateSet::single(),
        model.var_indexes.clone(),
        model.var_names.clone(),
        &observations,
    )?;

    let probe_estimator = if cfg.fit_probe_estimator {
        Some(ProbeCostEstimator::fit(&probe_log, 0.05)?)
    } else {
        None
    };
    tel.field(span, "r_squared", model.fit.r_squared);
    tel.field(span, "see", model.fit.see);
    tel.field(span, "one_state_r_squared", one_state.fit.r_squared);
    tel.field(span, "probe_estimator", probe_estimator.is_some());
    tel.end_span(span);

    let span = tel.begin_span("derive.validation");
    let avg_sample_cost =
        observations.iter().map(|o| o.cost).sum::<f64>() / observations.len().max(1) as f64;
    tel.field(span, "observations", observations.len() as u64);
    tel.field(span, "avg_sample_cost", avg_sample_cost);
    tel.end_span(span);

    if fold_engine {
        if let Some(metrics) = agent.disable_metrics() {
            tel.merge_metrics(&metrics);
        }
    }
    tel.end_span(root);

    Ok(DerivedModel {
        class,
        model,
        one_state,
        history: states_result.history,
        merges: states_result.merges,
        observations,
        probe_estimator,
        avg_sample_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variables::VariableFamily;
    use mdbs_sim::datagen::standard_database;
    use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

    fn dynamic_agent(seed: u64) -> MdbsAgent {
        let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), seed);
        agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
            lo: 5.0,
            hi: 125.0,
        }));
        agent
    }

    #[test]
    fn collect_observations_produces_complete_rows() {
        let mut agent = dynamic_agent(1);
        let mut generator = SampleGenerator::new(2);
        let obs = collect_observations(
            &mut agent,
            QueryClass::UnaryNoIndex,
            30,
            &mut generator,
            None,
        )
        .unwrap();
        assert_eq!(obs.len(), 30);
        for o in &obs {
            assert_eq!(o.x.len(), VariableFamily::Unary.all().len());
            assert!(o.cost > 0.0);
            assert!(o.probe_cost > 0.0);
        }
    }

    #[test]
    fn probe_log_pairs_align() {
        let mut agent = dynamic_agent(3);
        let mut generator = SampleGenerator::new(4);
        let mut log = Vec::new();
        let obs = collect_observations(
            &mut agent,
            QueryClass::UnaryNoIndex,
            20,
            &mut generator,
            Some(&mut log),
        )
        .unwrap();
        assert_eq!(log.len(), obs.len());
        for ((_, probe), o) in log.iter().zip(&obs) {
            assert_eq!(*probe, o.probe_cost);
        }
    }

    #[test]
    fn derivation_beats_one_state_on_dynamic_data() {
        let mut agent = dynamic_agent(5);
        let cfg = DerivationConfig {
            sample_size: Some(260),
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        };
        let derived = derive_cost_model(
            &mut agent,
            QueryClass::UnaryNoIndex,
            StateAlgorithm::Iupma,
            &cfg,
            7,
        )
        .unwrap();
        assert!(derived.model.num_states() >= 2, "stayed single-state");
        assert!(
            derived.model.fit.r_squared > derived.one_state.fit.r_squared,
            "multi {} vs one-state {}",
            derived.model.fit.r_squared,
            derived.one_state.fit.r_squared
        );
        assert!(derived.model.fit.r_squared > 0.9);
        assert!(derived.avg_sample_cost > 0.0);
        assert!(!derived.history.is_empty());
    }

    #[test]
    fn agent_source_targets_the_requested_band() {
        let mut agent = dynamic_agent(9);
        // Find a plausible probe band first.
        agent.tick();
        let p = agent.probe();
        let mut generator = SampleGenerator::new(10);
        let mut source = AgentSource {
            agent: &mut agent,
            generator: &mut generator,
            class: QueryClass::UnaryNoIndex,
            max_attempts: 200,
        };
        let got = source.draw_in_range(p * 0.2, p * 5.0);
        let obs = got.expect("broad band should be reachable");
        assert!(obs.probe_cost >= p * 0.2 && obs.probe_cost < p * 5.0);
        // An impossible band fails gracefully.
        let mut source = AgentSource {
            agent: &mut agent,
            generator: &mut generator,
            class: QueryClass::UnaryNoIndex,
            max_attempts: 5,
        };
        assert!(source.draw_in_range(1e9, 2e9).is_none());
    }
}
