//! The end-to-end derivation pipeline (paper §4).
//!
//! For one query class at one local site:
//!
//! 1. draw the planned number of sample queries ([`crate::sampling`]),
//! 2. execute each in the dynamic environment, recording its cost, the
//!    probing cost measured in the same environment and a system-statistics
//!    snapshot,
//! 3. determine the contention states with IUPMA or ICMA
//!    ([`crate::states`]) — drawing targeted extra samples when a state is
//!    thin,
//! 4. run mixed backward/forward variable selection with the states fixed
//!    ([`crate::selection`]),
//! 5. fit the probing-cost estimator of eq. (2) ([`crate::probing`]),
//! 6. return the final model plus everything a report needs (iteration
//!    history, the one-state comparison model, sample statistics).

use crate::catalog::SiteId;
use crate::classes::QueryClass;
use crate::model::{fit_cost_model, CostModel, ModelForm};
use crate::observation::Observation;
use crate::pipeline::PipelineCtx;
use crate::pool;
use crate::probing::ProbeCostEstimator;
use crate::sampling::{planned_sample_size, SampleGenerator};
use crate::selection::{select_variables_inner, SelectionConfig};
use crate::states::{
    determine_states_inner, IterationStats, ObservationSource, StateAlgorithm, StatesConfig,
};
use crate::CoreError;
use mdbs_obs::Telemetry;
use mdbs_sim::{MdbsAgent, SystemStats};
use mdbs_stats::rng::split_stream;

/// Configuration of the whole derivation pipeline.
#[derive(Debug, Clone)]
pub struct DerivationConfig {
    /// State-determination knobs.
    pub states: StatesConfig,
    /// Variable-selection knobs.
    pub selection: SelectionConfig,
    /// Override the planned sample size (None → eq. (4)).
    pub sample_size: Option<usize>,
    /// Environment draws allowed per targeted resample before giving up.
    pub max_resample_attempts: usize,
    /// Whether to fit the eq.-(2) probing-cost estimator.
    pub fit_probe_estimator: bool,
}

impl Default for DerivationConfig {
    fn default() -> Self {
        DerivationConfig {
            states: StatesConfig::default(),
            selection: SelectionConfig::default(),
            sample_size: None,
            max_resample_attempts: 40,
            fit_probe_estimator: true,
        }
    }
}

impl DerivationConfig {
    /// A cheap configuration for doc-tests and smoke tests: fewer samples,
    /// fewer states.
    pub fn quick() -> Self {
        DerivationConfig {
            states: StatesConfig {
                max_states: 3,
                ..StatesConfig::default()
            },
            sample_size: Some(150),
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        }
    }
}

/// Everything the derivation produces.
#[derive(Debug, Clone)]
pub struct DerivedModel {
    /// The query class the model covers.
    pub class: QueryClass,
    /// The multi-states cost model.
    pub model: CostModel,
    /// The one-state comparison model (Static Approach 2): same sample,
    /// same selected variables, single contention state.
    pub one_state: CostModel,
    /// Phase-1 iteration history of the state determination.
    pub history: Vec<IterationStats>,
    /// Number of phase-2 merging adjustments.
    pub merges: usize,
    /// The observations the models were fitted on.
    pub observations: Vec<Observation>,
    /// The probing-cost estimator (when requested).
    pub probe_estimator: Option<ProbeCostEstimator>,
    /// Mean observed cost of the sample queries (reported in Table 5).
    pub avg_sample_cost: f64,
}

/// Collects `n` observations for a class: tick the environment, measure the
/// probing cost, run the sample query, extract the Table-3 variables.
/// Optionally records `(stats, probe)` pairs for eq. (2).
pub fn collect_observations(
    agent: &mut MdbsAgent,
    class: QueryClass,
    n: usize,
    generator: &mut SampleGenerator,
    mut probe_log: Option<&mut Vec<(SystemStats, f64)>>,
) -> Result<Vec<Observation>, CoreError> {
    let family = class.family();
    let mut observations = Vec::with_capacity(n);
    while observations.len() < n {
        let query = generator.generate(class, agent.catalog());
        let Some(x) = family.extract(agent.catalog(), &query) else {
            continue; // Shape mismatch cannot happen for generated queries.
        };
        agent.tick();
        if let Some(log) = probe_log.as_deref_mut() {
            log.push((agent.stats(), 0.0));
        }
        let probe_cost = agent.probe();
        if let Some(log) = probe_log.as_deref_mut() {
            log.last_mut().expect("just pushed").1 = probe_cost;
        }
        let exec = agent
            .run(&query)
            .map_err(|e| CoreError::Agent(e.to_string()))?;
        observations.push(Observation {
            x,
            cost: exec.cost_s,
            probe_cost,
        });
    }
    Ok(observations)
}

/// An [`ObservationSource`] that draws targeted extra samples by re-rolling
/// the environment until the probing cost lands in the requested subrange.
pub struct AgentSource<'a> {
    agent: &'a mut MdbsAgent,
    generator: &'a mut SampleGenerator,
    class: QueryClass,
    max_attempts: usize,
}

impl ObservationSource for AgentSource<'_> {
    fn draw_in_range(&mut self, lo: f64, hi: f64) -> Option<Observation> {
        let family = self.class.family();
        for _ in 0..self.max_attempts {
            self.agent.tick();
            let probe_cost = self.agent.probe();
            if !(probe_cost >= lo && probe_cost < hi) {
                continue;
            }
            let query = self.generator.generate(self.class, self.agent.catalog());
            let x = family.extract(self.agent.catalog(), &query)?;
            let exec = self.agent.run(&query).ok()?;
            return Some(Observation {
                x,
                cost: exec.cost_s,
                probe_cost,
            });
        }
        None
    }
}

/// Runs the full pipeline for one class on one agent.
///
/// `ctx.seed` drives the sample-query generator (the agent carries its own
/// environment seed). When `ctx.telemetry` is enabled, the run records one
/// span per pipeline stage (`derive.sampling` → `.states` → `.selection` →
/// `.fit` → `.validation`) carrying observation counts, sample-size rule
/// inputs and virtual-time attribution, plus the `states.*`/`selection.*`
/// counters of the stage functions; the agent's `engine.*` metrics are
/// collected for the duration and folded in at the end. On an error return,
/// spans opened so far are left open (`wall_ms` 0).
pub fn derive_cost_model(
    agent: &mut MdbsAgent,
    class: QueryClass,
    algorithm: StateAlgorithm,
    cfg: &DerivationConfig,
    ctx: &mut PipelineCtx,
) -> Result<DerivedModel, CoreError> {
    derive_inner(agent, class, algorithm, cfg, ctx.seed, &mut ctx.telemetry)
}

/// The pipeline body shared by [`derive_cost_model`] and the batch/
/// maintenance callers that carry their own seed and telemetry handle;
/// see [`derive_cost_model`] for the contract.
pub(crate) fn derive_inner(
    agent: &mut MdbsAgent,
    class: QueryClass,
    algorithm: StateAlgorithm,
    cfg: &DerivationConfig,
    seed: u64,
    tel: &mut Telemetry,
) -> Result<DerivedModel, CoreError> {
    let family = class.family();
    let n = cfg
        .sample_size
        .unwrap_or_else(|| planned_sample_size(family, cfg.states.max_states));
    let root = tel.begin_span("derive");
    tel.field(root, "class", format!("{class:?}"));
    tel.field(root, "algorithm", format!("{algorithm:?}"));
    tel.field(root, "planned_n", n as u64);
    tel.field(root, "candidate_vars", family.all().len() as u64);
    tel.field(root, "max_states", cfg.states.max_states as u64);
    // While telemetry is on, also collect the agent's engine.* metrics so
    // the report attributes simulator work to this derivation.
    let fold_engine = tel.is_enabled() && agent.metrics().is_none();
    if fold_engine {
        agent.enable_metrics();
    }

    let mut generator = SampleGenerator::new(seed);
    let mut probe_log = Vec::new();
    let span = tel.begin_span("derive.sampling");
    let clock0 = agent.clock_s();
    let mut observations = collect_observations(
        agent,
        class,
        n,
        &mut generator,
        cfg.fit_probe_estimator.then_some(&mut probe_log),
    )?;
    tel.field(span, "observations", observations.len() as u64);
    tel.field(span, "virtual_s", agent.clock_s() - clock0);
    tel.end_span(span);

    // States are determined against the basic variables (the variables the
    // class is guaranteed to need); selection then refines the term set.
    let basic = family.basic_indexes();
    let basic_names: Vec<String> = basic
        .iter()
        .map(|&i| family.all()[i].name.to_string())
        .collect();
    let span = tel.begin_span("derive.states");
    let clock0 = agent.clock_s();
    let states_result = {
        let mut source = AgentSource {
            agent,
            generator: &mut generator,
            class,
            max_attempts: cfg.max_resample_attempts,
        };
        determine_states_inner(
            algorithm,
            &mut observations,
            &basic,
            &basic_names,
            &cfg.states,
            &mut source,
            tel,
        )?
    };
    tel.field(span, "states", states_result.model.num_states() as u64);
    tel.field(span, "iterations", states_result.history.len() as u64);
    tel.field(span, "merges", states_result.merges as u64);
    tel.field(span, "observations", observations.len() as u64);
    tel.field(span, "virtual_s", agent.clock_s() - clock0);
    tel.end_span(span);

    let span = tel.begin_span("derive.selection");
    let selection = select_variables_inner(
        family,
        &observations,
        &states_result.model.states,
        cfg.states.form,
        &cfg.selection,
        tel,
    )?;
    let model = selection.model;
    tel.field(span, "variables", model.var_indexes.len() as u64);
    tel.field(span, "names", model.var_names.join(","));
    tel.end_span(span);

    // The one-state comparison model: identical sample and variables, but
    // the static method's single contention state.
    let span = tel.begin_span("derive.fit");
    let one_state = fit_cost_model(
        ModelForm::Coincident,
        crate::qualvar::StateSet::single(),
        model.var_indexes.clone(),
        model.var_names.clone(),
        &observations,
    )?;

    let probe_estimator = if cfg.fit_probe_estimator {
        Some(ProbeCostEstimator::fit(&probe_log, 0.05)?)
    } else {
        None
    };
    tel.field(span, "r_squared", model.fit.r_squared);
    tel.field(span, "see", model.fit.see);
    tel.field(span, "one_state_r_squared", one_state.fit.r_squared);
    tel.field(span, "probe_estimator", probe_estimator.is_some());
    tel.end_span(span);

    let span = tel.begin_span("derive.validation");
    let avg_sample_cost =
        observations.iter().map(|o| o.cost).sum::<f64>() / observations.len().max(1) as f64;
    tel.field(span, "observations", observations.len() as u64);
    tel.field(span, "avg_sample_cost", avg_sample_cost);
    tel.end_span(span);

    if fold_engine {
        if let Some(metrics) = agent.disable_metrics() {
            tel.merge_metrics(&metrics);
        }
    }
    tel.end_span(root);

    Ok(DerivedModel {
        class,
        model,
        one_state,
        history: states_result.history,
        merges: states_result.merges,
        observations,
        probe_estimator,
        avg_sample_cost,
    })
}

/// Stream tags separating a job's two child RNG streams (environment vs.
/// sample generation) when splitting from the root seed.
pub(crate) const ENV_STREAM: u64 = 0x454E_5600; // "ENV"
pub(crate) const GEN_STREAM: u64 = 0x4745_4E00; // "GEN"

/// One unit of batch-derivation work: a `(site, class, algorithm)` triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeriveJob {
    /// The local site whose model is derived.
    pub site: SiteId,
    /// The query class the model covers.
    pub class: QueryClass,
    /// The state-determination algorithm to run.
    pub algorithm: StateAlgorithm,
}

impl DeriveJob {
    /// A job for one site/class pair.
    pub fn new(site: impl Into<SiteId>, class: QueryClass, algorithm: StateAlgorithm) -> Self {
        DeriveJob {
            site: site.into(),
            class,
            algorithm,
        }
    }

    /// A stable 64-bit key identifying this job: an FNV-1a hash of the
    /// site name, class and algorithm. The key — not the job's position or
    /// the thread that runs it — selects the job's child RNG streams, so
    /// reordering or re-partitioning a batch never changes any job's seeds.
    pub fn job_key(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let alg = match self.algorithm {
            StateAlgorithm::Iupma => 1u64,
            StateAlgorithm::Icma => 2u64,
        };
        (crate::registry::key_hash(&self.site, self.class) ^ alg).wrapping_mul(PRIME)
    }

    /// A human-readable `site/class/algorithm` label.
    pub fn label(&self) -> String {
        format!("{}/{:?}/{:?}", self.site, self.class, self.algorithm)
    }
}

/// Configuration of a [`derive_all`] batch.
#[derive(Debug, Clone, Default)]
pub struct BatchConfig {
    /// The per-job derivation configuration.
    pub derivation: DerivationConfig,
    /// Worker threads (`None` → the machine's available parallelism). Any
    /// value yields identical results; see [`derive_all`].
    pub workers: Option<usize>,
}

/// What one [`derive_all`] job produced.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The job.
    pub job: DeriveJob,
    /// The environment seed the job's agent was built with (split from the
    /// root seed by the job key).
    pub env_seed: u64,
    /// The derivation result. Jobs fail independently: one degenerate
    /// site/class does not abort the batch.
    pub result: Result<DerivedModel, CoreError>,
}

/// Derives every job's model on a worker pool and returns the outcomes in
/// job order.
///
/// Each job gets two child RNG streams split from `ctx.seed` and keyed by
/// [`DeriveJob::job_key`]: an *environment* seed passed to `make_agent`
/// (build the job's agent from it so the simulated load is reproducible)
/// and a *generation* seed for the job's sample queries. Because the
/// streams depend only on `(root seed, job key)` and outcomes are merged in
/// job order, the models **and** the per-job telemetry are byte-identical
/// across worker counts; only wall-clock fields and `pool.sched.*` metrics
/// (worker count, steals, queue depth) differ, and
/// [`mdbs_obs::telemetry::strip_wall_clock`] removes exactly those.
///
/// Telemetry: one `derive_all` span with per-job `derive` spans merged
/// beneath it, the deterministic `pool.jobs_completed` counter, and the
/// scheduling-dependent `pool.sched.{steals,workers,max_queue_depth}`.
pub fn derive_all<F>(
    jobs: Vec<DeriveJob>,
    cfg: &BatchConfig,
    make_agent: F,
    ctx: &mut PipelineCtx,
) -> Vec<BatchOutcome>
where
    F: Fn(&DeriveJob, u64) -> MdbsAgent + Sync,
{
    let workers = pool::effective_workers(cfg.workers, jobs.len());
    let span = ctx.telemetry.begin_span("derive_all");
    ctx.telemetry.field(span, "jobs", jobs.len() as u64);
    let root_seed = ctx.seed;
    let traced = ctx.telemetry.is_enabled();
    let derivation = &cfg.derivation;
    let make_agent = &make_agent;

    let (results, report) = pool::run_jobs(jobs, workers, move |_, job: DeriveJob| {
        let key = job.job_key();
        let env_seed = split_stream(root_seed, key ^ ENV_STREAM);
        let gen_seed = split_stream(root_seed, key ^ GEN_STREAM);
        let mut agent = make_agent(&job, env_seed);
        let mut tel = if traced {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let result = derive_inner(
            &mut agent,
            job.class,
            job.algorithm,
            derivation,
            gen_seed,
            &mut tel,
        );
        (job, env_seed, result, tel)
    });

    let mut outcomes = Vec::with_capacity(results.len());
    for (job, env_seed, result, tel) in results {
        ctx.telemetry.merge_child(tel, Some(span));
        outcomes.push(BatchOutcome {
            job,
            env_seed,
            result,
        });
    }
    ctx.telemetry
        .inc("pool.jobs_completed", report.jobs_completed as u64);
    ctx.telemetry.inc("pool.sched.steals", report.steals);
    ctx.telemetry
        .gauge("pool.sched.workers", report.workers as f64);
    ctx.telemetry
        .gauge("pool.sched.max_queue_depth", report.max_queue_depth as f64);
    ctx.telemetry.field(
        span,
        "succeeded",
        outcomes.iter().filter(|o| o.result.is_ok()).count() as u64,
    );
    ctx.telemetry.end_span(span);
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variables::VariableFamily;
    use mdbs_sim::datagen::standard_database;
    use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

    fn dynamic_agent(seed: u64) -> MdbsAgent {
        let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), seed);
        agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
            lo: 5.0,
            hi: 125.0,
        }));
        agent
    }

    #[test]
    fn collect_observations_produces_complete_rows() {
        let mut agent = dynamic_agent(1);
        let mut generator = SampleGenerator::new(2);
        let obs = collect_observations(
            &mut agent,
            QueryClass::UnaryNoIndex,
            30,
            &mut generator,
            None,
        )
        .unwrap();
        assert_eq!(obs.len(), 30);
        for o in &obs {
            assert_eq!(o.x.len(), VariableFamily::Unary.all().len());
            assert!(o.cost > 0.0);
            assert!(o.probe_cost > 0.0);
        }
    }

    #[test]
    fn probe_log_pairs_align() {
        let mut agent = dynamic_agent(3);
        let mut generator = SampleGenerator::new(4);
        let mut log = Vec::new();
        let obs = collect_observations(
            &mut agent,
            QueryClass::UnaryNoIndex,
            20,
            &mut generator,
            Some(&mut log),
        )
        .unwrap();
        assert_eq!(log.len(), obs.len());
        for ((_, probe), o) in log.iter().zip(&obs) {
            assert_eq!(*probe, o.probe_cost);
        }
    }

    #[test]
    fn derivation_beats_one_state_on_dynamic_data() {
        let mut agent = dynamic_agent(5);
        let cfg = DerivationConfig {
            sample_size: Some(260),
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        };
        let derived = derive_cost_model(
            &mut agent,
            QueryClass::UnaryNoIndex,
            StateAlgorithm::Iupma,
            &cfg,
            &mut PipelineCtx::seeded(7),
        )
        .unwrap();
        assert!(derived.model.num_states() >= 2, "stayed single-state");
        assert!(
            derived.model.fit.r_squared > derived.one_state.fit.r_squared,
            "multi {} vs one-state {}",
            derived.model.fit.r_squared,
            derived.one_state.fit.r_squared
        );
        assert!(derived.model.fit.r_squared > 0.9);
        assert!(derived.avg_sample_cost > 0.0);
        assert!(!derived.history.is_empty());
    }

    #[test]
    fn job_keys_are_stable_and_distinct() {
        let a = DeriveJob::new("oracle", QueryClass::UnaryNoIndex, StateAlgorithm::Iupma);
        let b = DeriveJob::new("oracle", QueryClass::UnaryNoIndex, StateAlgorithm::Icma);
        let c = DeriveJob::new("db2", QueryClass::UnaryNoIndex, StateAlgorithm::Iupma);
        let d = DeriveJob::new("oracle", QueryClass::JoinNoIndex, StateAlgorithm::Iupma);
        let keys = [a.job_key(), b.job_key(), c.job_key(), d.job_key()];
        for (i, k) in keys.iter().enumerate() {
            for other in &keys[i + 1..] {
                assert_ne!(k, other);
            }
        }
        assert_eq!(a.job_key(), a.clone().job_key());
        assert_eq!(a.label(), "oracle/UnaryNoIndex/Iupma");
    }

    #[test]
    fn agent_source_targets_the_requested_band() {
        let mut agent = dynamic_agent(9);
        // Find a plausible probe band first.
        agent.tick();
        let p = agent.probe();
        let mut generator = SampleGenerator::new(10);
        let mut source = AgentSource {
            agent: &mut agent,
            generator: &mut generator,
            class: QueryClass::UnaryNoIndex,
            max_attempts: 200,
        };
        let got = source.draw_in_range(p * 0.2, p * 5.0);
        let obs = got.expect("broad band should be reachable");
        assert!(obs.probe_cost >= p * 0.2 && obs.probe_cost < p * 5.0);
        // An impossible band fails gracefully.
        let mut source = AgentSource {
            agent: &mut agent,
            generator: &mut generator,
            class: QueryClass::UnaryNoIndex,
            max_attempts: 5,
        };
        assert!(source.draw_in_range(1e9, 2e9).is_none());
    }
}
