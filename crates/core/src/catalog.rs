//! The MDBS global catalog.
//!
//! "The cost model parameters are kept in the MDBS catalog and utilized
//! during query optimization" (paper §1). The catalog maps
//! `(site, query class)` to a derived [`CostModel`] and keeps the per-site
//! probing-cost estimators of eq. (2); the global optimizer asks it for
//! local cost estimates.

use crate::classes::{classify, QueryClass};
use crate::correction::EstimateQuery;
use crate::model::{CostModel, ModelAccumulator};
use crate::probing::ProbeCostEstimator;
use crate::registry::EstimateDetail;
// Point lookups keyed by (site, class); every iteration below sorts its
// keys before use (see `sites` / `classes_for` / `export`).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// Identifies a local site within the MDBS.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub String);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<T: Into<String>> From<T> for SiteId {
    fn from(s: T) -> Self {
        SiteId(s.into())
    }
}

/// The global catalog: cost models and probe estimators per site.
#[derive(Debug, Clone, Default)]
pub struct GlobalCatalog {
    #[allow(clippy::disallowed_types)]
    models: HashMap<(SiteId, QueryClass), CostModel>,
    #[allow(clippy::disallowed_types)]
    probe_estimators: HashMap<SiteId, ProbeCostEstimator>,
    #[allow(clippy::disallowed_types)]
    fit_accumulators: HashMap<(SiteId, QueryClass), ModelAccumulator>,
}

impl GlobalCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        GlobalCatalog::default()
    }

    /// Stores (or replaces) the cost model for a site/class pair.
    pub fn insert_model(&mut self, site: SiteId, class: QueryClass, model: CostModel) {
        self.models.insert((site, class), model);
    }

    /// Stores (or replaces) a site's probing-cost estimator.
    pub fn insert_probe_estimator(&mut self, site: SiteId, est: ProbeCostEstimator) {
        self.probe_estimators.insert(site, est);
    }

    /// Stores (or replaces) the sufficient-statistics accumulator backing a
    /// site/class model, so a later process can resume incremental refits
    /// without rescanning the original sample observations.
    pub fn insert_accumulator(&mut self, site: SiteId, class: QueryClass, acc: ModelAccumulator) {
        self.fit_accumulators.insert((site, class), acc);
    }

    /// Fetches the model for a site/class pair.
    pub fn model(&self, site: &SiteId, class: QueryClass) -> Option<&CostModel> {
        self.models.get(&(site.clone(), class))
    }

    /// Fetches the stored fit accumulator for a site/class pair, if any.
    pub fn accumulator(&self, site: &SiteId, class: QueryClass) -> Option<&ModelAccumulator> {
        self.fit_accumulators.get(&(site.clone(), class))
    }

    /// Fetches a site's probing-cost estimator.
    pub fn probe_estimator(&self, site: &SiteId) -> Option<&ProbeCostEstimator> {
        self.probe_estimators.get(site)
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are stored.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// All sites that have at least one model or probe estimator.
    pub fn sites(&self) -> Vec<SiteId> {
        let mut sites: Vec<SiteId> = self
            .models
            .keys()
            .map(|(s, _)| s.clone())
            .chain(self.probe_estimators.keys().cloned())
            .collect();
        sites.sort();
        sites.dedup();
        sites
    }

    /// The classes a site has models for, in report order.
    pub fn classes_for(&self, site: &SiteId) -> Vec<QueryClass> {
        let mut classes: Vec<QueryClass> = self
            .models
            .keys()
            .filter(|(s, _)| s == site)
            .map(|(_, c)| *c)
            .collect();
        classes.sort();
        classes
    }

    /// The unified estimation entry point: classify the query, look up
    /// the model, extract the Table-3 variables, evaluate in the
    /// contention state implied by the probing cost, and apply the
    /// attached correction ledger (if any, and warm). The catalog carries
    /// no publish history, so [`EstimateDetail::version`] is always 0 —
    /// use a [`crate::registry::ModelRegistry`] when snapshot provenance
    /// matters.
    ///
    /// Returns `None` when the query cannot be classified or no model is
    /// stored for its class.
    pub fn estimate(&self, q: &EstimateQuery<'_>) -> Option<EstimateDetail> {
        let class = classify(q.schema, q.query)?;
        let model = self.model(q.site, class)?;
        crate::correction::price_with_model(model, 0, class, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{fit_cost_model, ModelForm};
    use crate::observation::Observation;
    use crate::qualvar::StateSet;
    use mdbs_sim::datagen::standard_database;
    use mdbs_sim::query::{Predicate, Query, UnaryQuery};

    /// A tiny hand-made unary model: cost = 1 + 0.001·N_O (one state).
    fn toy_model() -> CostModel {
        let obs: Vec<Observation> = (0..30)
            .map(|i| {
                let n_o = 1000.0 * (1 + i % 10) as f64;
                Observation {
                    x: vec![n_o, n_o, n_o / 2.0, 44.0, 20.0, n_o * 44.0, n_o * 10.0, 0.0],
                    cost: 1.0 + 0.001 * n_o + (i % 3) as f64 * 0.001,
                    probe_cost: 1.0,
                }
            })
            .collect();
        fit_cost_model(
            ModelForm::Coincident,
            StateSet::single(),
            vec![0],
            vec!["N_O".into()],
            &obs,
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut cat = GlobalCatalog::new();
        assert!(cat.is_empty());
        let site: SiteId = "oracle-site".into();
        cat.insert_model(site.clone(), QueryClass::UnaryNoIndex, toy_model());
        assert_eq!(cat.len(), 1);
        assert!(cat.model(&site, QueryClass::UnaryNoIndex).is_some());
        assert!(cat.model(&site, QueryClass::JoinNoIndex).is_none());
        assert!(cat
            .model(&"other".into(), QueryClass::UnaryNoIndex)
            .is_none());
        assert_eq!(cat.classes_for(&site), vec![QueryClass::UnaryNoIndex]);
    }

    #[test]
    fn estimate_end_to_end() {
        let db = standard_database(42);
        let mut cat = GlobalCatalog::new();
        let site: SiteId = "s1".into();
        cat.insert_model(site.clone(), QueryClass::UnaryNoIndex, toy_model());
        let t = &db.tables()[3];
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(4, t.columns[4].domain_max / 2)],
            order_by: None,
        });
        let detail = cat
            .estimate(&EstimateQuery::raw(&site, &db, &q, 1.0))
            .unwrap();
        assert_eq!(detail.version, 0, "catalog estimates carry no history");
        assert!(!detail.corrected, "no ledger attached");
        assert_eq!(detail.estimate, detail.raw_estimate);
        let est = detail.estimate;
        let expected = 1.0 + 0.001 * t.cardinality as f64;
        assert!(
            (est - expected).abs() / expected < 0.05,
            "{est} vs {expected}"
        );
    }

    #[test]
    fn estimate_without_model_is_none() {
        let db = standard_database(42);
        let cat = GlobalCatalog::new();
        let t = &db.tables()[0];
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![],
            predicates: vec![],
            order_by: None,
        });
        assert!(cat
            .estimate(&EstimateQuery::raw(&"s".into(), &db, &q, 1.0))
            .is_none());
    }
}
