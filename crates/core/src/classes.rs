//! Query classification (paper §4.1).
//!
//! "We group local queries on a local database system into classes based on
//! their potential access methods to be employed" — using only information
//! visible at the global level: query shape, operand schemas, index kinds
//! and catalog selectivities. Queries in one class share a performance
//! behaviour describable by a common cost model.
//!
//! The three classes the paper evaluates are:
//! * `G1` — unary queries without usable indexes (sequential scans),
//! * `G2` — unary queries with a usable *non-clustered* index for ranges,
//! * `G3` — join queries without usable indexes.
//!
//! Two further classes round out the taxonomy of the underlying static
//! method: unary queries served by a *clustered* index, and joins that can
//! be driven through an index.

use crate::variables::VariableFamily;
use mdbs_sim::catalog::{IndexKind, LocalCatalog};
use mdbs_sim::query::Query;
use mdbs_sim::selectivity::predicate_selectivity;

/// Selectivity below which a non-clustered index is assumed usable at
/// classification time (a conservative, vendor-independent bound).
pub const NONCLUSTERED_CLASS_CUTOFF: f64 = 0.10;

/// A homogeneous local query class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryClass {
    /// `G1`: unary, no usable index — sequential scan expected.
    UnaryNoIndex,
    /// `G2`: unary, usable non-clustered index for a range predicate.
    UnaryNonClusteredIndex,
    /// Unary, usable clustered index (the `R^{cl}` example of §4.1).
    UnaryClusteredIndex,
    /// `G3`: two-way join, no usable index on either join column.
    JoinNoIndex,
    /// Two-way join with a usable index on a join column.
    JoinIndexed,
}

impl QueryClass {
    /// All classes, in report order.
    pub fn all() -> [QueryClass; 5] {
        [
            QueryClass::UnaryNoIndex,
            QueryClass::UnaryNonClusteredIndex,
            QueryClass::UnaryClusteredIndex,
            QueryClass::JoinNoIndex,
            QueryClass::JoinIndexed,
        ]
    }

    /// The paper's three representative classes.
    pub fn paper_classes() -> [QueryClass; 3] {
        [
            QueryClass::UnaryNoIndex,
            QueryClass::UnaryNonClusteredIndex,
            QueryClass::JoinNoIndex,
        ]
    }

    /// The paper's label for this class, where it has one.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::UnaryNoIndex => "G1 (unary, no index)",
            QueryClass::UnaryNonClusteredIndex => "G2 (unary, non-clustered index)",
            QueryClass::UnaryClusteredIndex => "Gc (unary, clustered index)",
            QueryClass::JoinNoIndex => "G3 (join, no index)",
            QueryClass::JoinIndexed => "Gj (join, indexed)",
        }
    }

    /// The variable family (Table 3 column set) of this class.
    pub fn family(self) -> VariableFamily {
        match self {
            QueryClass::UnaryNoIndex
            | QueryClass::UnaryNonClusteredIndex
            | QueryClass::UnaryClusteredIndex => VariableFamily::Unary,
            QueryClass::JoinNoIndex | QueryClass::JoinIndexed => VariableFamily::Join,
        }
    }
}

/// Classifies a local query using only globally visible information.
///
/// Returns `None` for queries referencing tables the MDBS does not know.
pub fn classify(catalog: &LocalCatalog, query: &Query) -> Option<QueryClass> {
    match query {
        Query::Unary(u) => {
            let t = catalog.table(u.table)?;
            let mut best: Option<QueryClass> = None;
            for p in &u.predicates {
                let Some(col) = t.columns.get(p.column) else {
                    continue;
                };
                let sel = predicate_selectivity(t, p);
                match col.index {
                    IndexKind::Clustered if sel < 0.95 => {
                        return Some(QueryClass::UnaryClusteredIndex);
                    }
                    IndexKind::NonClustered if sel <= NONCLUSTERED_CLASS_CUTOFF => {
                        best = Some(QueryClass::UnaryNonClusteredIndex);
                    }
                    _ => {}
                }
            }
            Some(best.unwrap_or(QueryClass::UnaryNoIndex))
        }
        Query::Join(j) => {
            let l = catalog.table(j.left)?;
            let r = catalog.table(j.right)?;
            let left_indexed = l
                .columns
                .get(j.left_col)
                .is_some_and(|c| c.index != IndexKind::None);
            let right_indexed = r
                .columns
                .get(j.right_col)
                .is_some_and(|c| c.index != IndexKind::None);
            Some(if left_indexed || right_indexed {
                QueryClass::JoinIndexed
            } else {
                QueryClass::JoinNoIndex
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbs_sim::catalog::TableId;
    use mdbs_sim::datagen::standard_database;
    use mdbs_sim::query::{JoinQuery, Predicate, UnaryQuery};

    fn db() -> LocalCatalog {
        standard_database(42)
    }

    #[test]
    fn unary_without_indexable_predicates_is_g1() {
        let db = db();
        let t = &db.tables()[1]; // Even table: no clustered index.
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(4, t.columns[4].domain_max / 2)],
            order_by: None,
        });
        assert_eq!(classify(&db, &q), Some(QueryClass::UnaryNoIndex));
    }

    #[test]
    fn selective_range_on_a3_is_g2() {
        let db = db();
        let t = &db.tables()[1];
        // a3 (index 2) carries a non-clustered index; 5% selectivity.
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(2, t.columns[2].domain_max / 20)],
            order_by: None,
        });
        assert_eq!(classify(&db, &q), Some(QueryClass::UnaryNonClusteredIndex));
    }

    #[test]
    fn unselective_range_on_a3_falls_back_to_g1() {
        let db = db();
        let t = &db.tables()[1];
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![Predicate::lt(2, t.columns[2].domain_max / 2)],
            order_by: None,
        });
        assert_eq!(classify(&db, &q), Some(QueryClass::UnaryNoIndex));
    }

    #[test]
    fn clustered_index_dominates() {
        let db = db();
        let t = &db.tables()[0]; // Odd table: clustered on a1.
        let q = Query::Unary(UnaryQuery {
            table: t.id,
            projection: vec![0],
            predicates: vec![
                Predicate::lt(0, t.columns[0].domain_max / 2),
                Predicate::lt(2, t.columns[2].domain_max / 50),
            ],
            order_by: None,
        });
        assert_eq!(classify(&db, &q), Some(QueryClass::UnaryClusteredIndex));
    }

    #[test]
    fn join_on_unindexed_columns_is_g3() {
        let db = db();
        let q = Query::Join(JoinQuery {
            left: db.tables()[2].id,
            right: db.tables()[3].id,
            left_col: 4,
            right_col: 4,
            left_predicates: vec![],
            right_predicates: vec![],
            projection: vec![],
        });
        assert_eq!(classify(&db, &q), Some(QueryClass::JoinNoIndex));
    }

    #[test]
    fn join_on_indexed_column_is_indexed_class() {
        let db = db();
        let q = Query::Join(JoinQuery {
            left: db.tables()[2].id,
            right: db.tables()[3].id,
            left_col: 4,
            right_col: 2, // a3 is non-clustered indexed everywhere.
            left_predicates: vec![],
            right_predicates: vec![],
            projection: vec![],
        });
        assert_eq!(classify(&db, &q), Some(QueryClass::JoinIndexed));
    }

    #[test]
    fn unknown_table_unclassifiable() {
        let db = db();
        let q = Query::Unary(UnaryQuery {
            table: TableId(99),
            projection: vec![],
            predicates: vec![],
            order_by: None,
        });
        assert_eq!(classify(&db, &q), None);
    }

    #[test]
    fn class_families() {
        assert_eq!(QueryClass::UnaryNoIndex.family(), VariableFamily::Unary);
        assert_eq!(QueryClass::JoinNoIndex.family(), VariableFamily::Join);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            QueryClass::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
