//! Qualitative regression cost models (paper §3.2, Table 2).
//!
//! A cost model relates a query's cost `Y` to quantitative explanatory
//! variables `X_1..X_p` *and* a qualitative contention-state variable with
//! `m` categories. The state variable can enter in four ways:
//!
//! * **Coincident** — one shared equation (the static method's model),
//! * **Parallel** — per-state intercepts, shared slopes,
//! * **Concurrent** — shared intercept, per-state slopes,
//! * **General** — per-state intercepts *and* slopes.
//!
//! The paper argues (§3.2) that contention inflates both the
//! initialization cost (the intercept) and the I/O/CPU costs (the slopes),
//! so the **general** form is the right one for dynamic environments; the
//! other forms are provided both for completeness and for the ablation
//! benchmarks.
//!
//! All four forms are fitted through one code path: each form maps an
//! observation to a design-matrix row (cell-means coding), OLS runs once
//! over the pooled sample, and the per-state "adjusted coefficients"
//! `b_{j,i}` (paper Algorithm 3.1, line 16) are recovered from the raw
//! coefficient vector. Statistics (R², SEE, F) are therefore pooled across
//! states exactly as the paper's algorithm expects.

use crate::observation::Observation;
use crate::qualvar::StateSet;
use crate::CoreError;
use mdbs_stats::{Matrix, OlsFit};

/// How the qualitative variable enters the regression equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelForm {
    /// One equation for all states.
    Coincident,
    /// Per-state intercepts, shared slopes.
    Parallel,
    /// Shared intercept, per-state slopes.
    Concurrent,
    /// Per-state intercepts and slopes (the paper's choice).
    General,
}

impl ModelForm {
    /// Number of raw coefficients for `m` states and `p` variables.
    pub fn num_params(self, m: usize, p: usize) -> usize {
        match self {
            ModelForm::Coincident => p + 1,
            ModelForm::Parallel => m + p,
            ModelForm::Concurrent => 1 + m * p,
            ModelForm::General => m * (p + 1),
        }
    }
}

/// Pooled goodness-of-fit statistics of a cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct FitStats {
    /// Coefficient of total determination R².
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Standard error of estimation.
    pub see: f64,
    /// Overall F statistic.
    pub f_statistic: f64,
    /// Upper-tail p-value of the F statistic.
    pub f_p_value: f64,
    /// Observations used.
    pub n: usize,
    /// Raw parameters fitted.
    pub k: usize,
}

/// A fitted qualitative regression cost model for one query class.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// The regression form in use.
    pub form: ModelForm,
    /// The contention-state partition.
    pub states: StateSet,
    /// Indexes of the selected variables in the family's canonical order.
    pub var_indexes: Vec<usize>,
    /// Names of the selected variables (aligned with `var_indexes`).
    pub var_names: Vec<String>,
    /// Adjusted per-state coefficients: `coefficients[s][0]` is the
    /// intercept for state `s`, `coefficients[s][j+1]` the slope of the
    /// `j`-th selected variable in state `s`.
    pub coefficients: Vec<Vec<f64>>,
    /// Pooled fit statistics.
    pub fit: FitStats,
}

impl CostModel {
    /// Number of contention states `m`.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of selected quantitative variables `p`.
    pub fn num_variables(&self) -> usize {
        self.var_indexes.len()
    }

    /// Estimates the cost of a query given its selected-variable values
    /// (aligned with `var_indexes`) and the probing cost gauged in the
    /// target environment.
    pub fn estimate(&self, x_selected: &[f64], probe_cost: f64) -> f64 {
        let s = self.states.state_of(probe_cost);
        self.estimate_in_state(x_selected, s)
    }

    /// Estimates the cost within an explicit contention state.
    pub fn estimate_in_state(&self, x_selected: &[f64], state: usize) -> f64 {
        let b = &self.coefficients[state.min(self.coefficients.len() - 1)];
        let mut y = b[0];
        for (j, &x) in x_selected.iter().enumerate().take(self.num_variables()) {
            y += b[j + 1] * x;
        }
        y
    }

    /// Estimates the cost of a full-width observation (all candidate
    /// variables); projection onto the selected subset happens internally.
    pub fn estimate_observation(&self, obs: &Observation) -> f64 {
        let x = obs.project(&self.var_indexes);
        self.estimate(&x, obs.probe_cost)
    }

    /// Renders the model in the style of the paper's Table 4: one cost
    /// equation per contention state, highest-contention state first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let m = self.num_states();
        for s in (0..m).rev() {
            let (lo, hi) = self.states.bounds(s);
            let mut eq = format!(
                "  {} (probe in [{:.3}, {:.3})): Y = {:+.4e}",
                self.states.paper_label(s),
                lo,
                hi,
                self.coefficients[s][0]
            );
            for (j, name) in self.var_names.iter().enumerate() {
                eq.push_str(&format!(" {:+.4e}*{}", self.coefficients[s][j + 1], name));
            }
            out.push_str(&eq);
            out.push('\n');
        }
        out
    }
}

/// Builds the design-matrix row of one observation under a given form.
fn design_row(form: ModelForm, m: usize, state: usize, x: &[f64]) -> Vec<f64> {
    let p = x.len();
    match form {
        ModelForm::Coincident => {
            let mut row = Vec::with_capacity(p + 1);
            row.push(1.0);
            row.extend_from_slice(x);
            row
        }
        ModelForm::Parallel => {
            let mut row = vec![0.0; m];
            row[state] = 1.0;
            row.extend_from_slice(x);
            row
        }
        ModelForm::Concurrent => {
            let mut row = vec![0.0; 1 + m * p];
            row[0] = 1.0;
            for (j, &v) in x.iter().enumerate() {
                row[1 + state * p + j] = v;
            }
            row
        }
        ModelForm::General => {
            let mut row = vec![0.0; m * (p + 1)];
            row[state * (p + 1)] = 1.0;
            for (j, &v) in x.iter().enumerate() {
                row[state * (p + 1) + 1 + j] = v;
            }
            row
        }
    }
}

/// Recovers the adjusted per-state coefficient table `b_{j,i}` from the raw
/// coefficient vector.
fn adjusted_coefficients(form: ModelForm, m: usize, p: usize, beta: &[f64]) -> Vec<Vec<f64>> {
    (0..m)
        .map(|s| match form {
            ModelForm::Coincident => beta.to_vec(),
            ModelForm::Parallel => {
                let mut b = Vec::with_capacity(p + 1);
                b.push(beta[s]);
                b.extend_from_slice(&beta[m..m + p]);
                b
            }
            ModelForm::Concurrent => {
                let mut b = Vec::with_capacity(p + 1);
                b.push(beta[0]);
                b.extend_from_slice(&beta[1 + s * p..1 + (s + 1) * p]);
                b
            }
            ModelForm::General => beta[s * (p + 1)..(s + 1) * (p + 1)].to_vec(),
        })
        .collect()
}

/// Counts how many observations fall in each state of a partition.
pub fn counts_per_state(states: &StateSet, observations: &[Observation]) -> Vec<usize> {
    let mut counts = vec![0usize; states.len()];
    for o in observations {
        counts[states.state_of(o.probe_cost)] += 1;
    }
    counts
}

/// Minimum observations a state must contain for a general-form fit with
/// `p` variables (exact fit needs `p + 1`; one spare for the error term).
pub fn min_obs_per_state(p: usize) -> usize {
    p + 2
}

/// Fits a qualitative regression cost model.
///
/// `var_indexes`/`var_names` select the quantitative variables (indexes
/// into the canonical candidate order of the class family). For state-
/// dependent forms every state must hold at least
/// [`min_obs_per_state`] observations, otherwise
/// [`CoreError::InsufficientSamples`] is returned — callers (IUPMA/ICMA)
/// react by drawing more samples or merging states.
pub fn fit_cost_model(
    form: ModelForm,
    states: StateSet,
    var_indexes: Vec<usize>,
    var_names: Vec<String>,
    observations: &[Observation],
) -> Result<CostModel, CoreError> {
    let m = states.len();
    let p = var_indexes.len();
    let k = form.num_params(m, p);
    if observations.len() < k + 1 {
        return Err(CoreError::InsufficientSamples {
            needed: k + 1,
            got: observations.len(),
        });
    }
    if m > 1 && matches!(form, ModelForm::General | ModelForm::Concurrent) {
        let counts = counts_per_state(&states, observations);
        if let Some((i, &c)) = counts
            .iter()
            .enumerate()
            .find(|&(_, &c)| c < min_obs_per_state(p))
        {
            let _ = i;
            return Err(CoreError::InsufficientSamples {
                needed: min_obs_per_state(p),
                got: c,
            });
        }
    }
    let mut rows = Vec::with_capacity(observations.len());
    let mut y = Vec::with_capacity(observations.len());
    for o in observations {
        let x = o.project(&var_indexes);
        let s = states.state_of(o.probe_cost);
        rows.push(design_row(form, m, s, &x));
        y.push(o.cost);
    }
    let design = Matrix::from_rows(&rows).map_err(CoreError::Numeric)?;
    let ols = OlsFit::fit(&design, &y, true).map_err(CoreError::Numeric)?;
    let coefficients = adjusted_coefficients(form, m, p, &ols.coefficients);
    Ok(CostModel {
        form,
        states,
        var_indexes,
        var_names,
        coefficients,
        fit: FitStats {
            r_squared: ols.r_squared,
            adj_r_squared: ols.adj_r_squared,
            see: ols.see,
            f_statistic: ols.f_statistic,
            f_p_value: ols.f_p_value,
            n: ols.n,
            k: ols.k,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes observations from a known two-state ground truth:
    /// state 0 (probe < 5): y = 1 + 2x; state 1 (probe >= 5): y = 10 + 6x.
    fn two_state_observations() -> Vec<Observation> {
        let mut obs = Vec::new();
        for i in 0..40 {
            let x = i as f64;
            obs.push(Observation {
                x: vec![x],
                cost: 1.0 + 2.0 * x,
                probe_cost: 2.0 + (i % 3) as f64 * 0.5,
            });
            obs.push(Observation {
                x: vec![x],
                cost: 10.0 + 6.0 * x,
                probe_cost: 7.0 + (i % 3) as f64 * 0.5,
            });
        }
        obs
    }

    fn two_states() -> StateSet {
        StateSet::from_edges(vec![0.0, 5.0, 10.0]).unwrap()
    }

    #[test]
    fn general_form_recovers_both_regimes() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        assert!((model.coefficients[0][0] - 1.0).abs() < 1e-8);
        assert!((model.coefficients[0][1] - 2.0).abs() < 1e-8);
        assert!((model.coefficients[1][0] - 10.0).abs() < 1e-8);
        assert!((model.coefficients[1][1] - 6.0).abs() < 1e-8);
        assert!(model.fit.r_squared > 0.999999);
    }

    #[test]
    fn coincident_form_averages_regimes() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::Coincident,
            StateSet::single(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        // One pooled slope between 2 and 6.
        let slope = model.coefficients[0][1];
        assert!(slope > 2.0 && slope < 6.0, "slope {slope}");
        // And a visibly worse fit than the general model.
        assert!(model.fit.r_squared < 0.95);
    }

    #[test]
    fn parallel_form_shares_slopes() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::Parallel,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        assert!((model.coefficients[0][1] - model.coefficients[1][1]).abs() < 1e-10);
        assert!(model.coefficients[0][0] != model.coefficients[1][0]);
    }

    #[test]
    fn concurrent_form_shares_intercept() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::Concurrent,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        assert!((model.coefficients[0][0] - model.coefficients[1][0]).abs() < 1e-10);
        assert!(model.coefficients[0][1] != model.coefficients[1][1]);
    }

    #[test]
    fn general_fit_beats_restricted_forms_on_general_data() {
        let obs = two_state_observations();
        let fit = |form, states: StateSet| {
            fit_cost_model(form, states, vec![0], vec!["x".into()], &obs)
                .unwrap()
                .fit
                .r_squared
        };
        let general = fit(ModelForm::General, two_states());
        let parallel = fit(ModelForm::Parallel, two_states());
        let concurrent = fit(ModelForm::Concurrent, two_states());
        let coincident = fit(ModelForm::Coincident, StateSet::single());
        assert!(general >= parallel && general >= concurrent);
        assert!(parallel > coincident);
    }

    #[test]
    fn estimate_uses_probe_cost_to_pick_state() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        assert!((model.estimate(&[3.0], 1.0) - 7.0).abs() < 1e-6);
        assert!((model.estimate(&[3.0], 8.0) - 28.0).abs() < 1e-6);
        // Probe outside the sampled range clamps to the edge state.
        assert!((model.estimate(&[3.0], 100.0) - 28.0).abs() < 1e-6);
    }

    #[test]
    fn estimate_observation_projects_full_vector() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        let test = Observation {
            x: vec![4.0],
            cost: 0.0,
            probe_cost: 1.0,
        };
        assert!((model.estimate_observation(&test) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn thin_state_is_rejected() {
        // All observations in state 0; state 1 empty.
        let obs: Vec<Observation> = (0..30)
            .map(|i| Observation {
                x: vec![i as f64],
                cost: i as f64,
                probe_cost: 1.0,
            })
            .collect();
        let err = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InsufficientSamples { .. }));
    }

    #[test]
    fn too_few_total_observations_rejected() {
        let obs: Vec<Observation> = (0..3)
            .map(|i| Observation {
                x: vec![i as f64],
                cost: i as f64,
                probe_cost: 1.0 + i as f64 * 3.0,
            })
            .collect();
        assert!(fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .is_err());
    }

    #[test]
    fn num_params_per_form() {
        assert_eq!(ModelForm::Coincident.num_params(4, 3), 4);
        assert_eq!(ModelForm::Parallel.num_params(4, 3), 7);
        assert_eq!(ModelForm::Concurrent.num_params(4, 3), 13);
        assert_eq!(ModelForm::General.num_params(4, 3), 16);
    }

    #[test]
    fn render_mentions_every_state_and_variable() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["N_O".into()],
            &obs,
        )
        .unwrap();
        let text = model.render();
        assert!(text.contains("S1"));
        assert!(text.contains("S2"));
        assert!(text.contains("N_O"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn counts_per_state_totals() {
        let obs = two_state_observations();
        let counts = counts_per_state(&two_states(), &obs);
        assert_eq!(counts.iter().sum::<usize>(), obs.len());
        assert_eq!(counts, vec![40, 40]);
    }
}
