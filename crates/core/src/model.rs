//! Qualitative regression cost models (paper §3.2, Table 2).
//!
//! A cost model relates a query's cost `Y` to quantitative explanatory
//! variables `X_1..X_p` *and* a qualitative contention-state variable with
//! `m` categories. The state variable can enter in four ways:
//!
//! * **Coincident** — one shared equation (the static method's model),
//! * **Parallel** — per-state intercepts, shared slopes,
//! * **Concurrent** — shared intercept, per-state slopes,
//! * **General** — per-state intercepts *and* slopes.
//!
//! The paper argues (§3.2) that contention inflates both the
//! initialization cost (the intercept) and the I/O/CPU costs (the slopes),
//! so the **general** form is the right one for dynamic environments; the
//! other forms are provided both for completeness and for the ablation
//! benchmarks.
//!
//! All four forms are fitted through one code path: each form maps an
//! observation to a design-matrix row (cell-means coding), OLS runs once
//! over the pooled sample, and the per-state "adjusted coefficients"
//! `b_{j,i}` (paper Algorithm 3.1, line 16) are recovered from the raw
//! coefficient vector. Statistics (R², SEE, F) are therefore pooled across
//! states exactly as the paper's algorithm expects.

use crate::observation::Observation;
use crate::qualvar::StateSet;
use crate::CoreError;
use mdbs_stats::{GramAccumulator, GramFit, Matrix, OlsFit};

/// How the qualitative variable enters the regression equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelForm {
    /// One equation for all states.
    Coincident,
    /// Per-state intercepts, shared slopes.
    Parallel,
    /// Shared intercept, per-state slopes.
    Concurrent,
    /// Per-state intercepts and slopes (the paper's choice).
    General,
}

/// Which fit machinery the state-determination and variable-selection
/// searches use for their *candidate* evaluations.
///
/// Either way the **published** model (the search winner) is refitted once
/// through the canonical observation-space QR of [`fit_cost_model`], so the
/// engines produce identical catalogs; the engine only decides how the
/// dozens of intermediate candidate fits are scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitEngine {
    /// Rebuild the design matrix and run a full O(n·k²) QR per candidate
    /// (the historical behaviour; kept for parity testing).
    FullRefit,
    /// Solve candidates from cached sufficient statistics in O(k³),
    /// independent of the observation count.
    #[default]
    Gram,
}

impl ModelForm {
    /// Number of raw coefficients for `m` states and `p` variables.
    pub fn num_params(self, m: usize, p: usize) -> usize {
        match self {
            ModelForm::Coincident => p + 1,
            ModelForm::Parallel => m + p,
            ModelForm::Concurrent => 1 + m * p,
            ModelForm::General => m * (p + 1),
        }
    }
}

/// Pooled goodness-of-fit statistics of a cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct FitStats {
    /// Coefficient of total determination R².
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Standard error of estimation.
    pub see: f64,
    /// Overall F statistic.
    pub f_statistic: f64,
    /// Upper-tail p-value of the F statistic.
    pub f_p_value: f64,
    /// Observations used.
    pub n: usize,
    /// Raw parameters fitted.
    pub k: usize,
}

/// A fitted qualitative regression cost model for one query class.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// The regression form in use.
    pub form: ModelForm,
    /// The contention-state partition.
    pub states: StateSet,
    /// Indexes of the selected variables in the family's canonical order.
    pub var_indexes: Vec<usize>,
    /// Names of the selected variables (aligned with `var_indexes`).
    pub var_names: Vec<String>,
    /// Adjusted per-state coefficients: `coefficients[s][0]` is the
    /// intercept for state `s`, `coefficients[s][j+1]` the slope of the
    /// `j`-th selected variable in state `s`.
    pub coefficients: Vec<Vec<f64>>,
    /// Pooled fit statistics.
    pub fit: FitStats,
}

impl CostModel {
    /// Number of contention states `m`.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of selected quantitative variables `p`.
    pub fn num_variables(&self) -> usize {
        self.var_indexes.len()
    }

    /// Estimates the cost of a query given its selected-variable values
    /// (aligned with `var_indexes`) and the probing cost gauged in the
    /// target environment.
    ///
    /// Thin wrapper: resolves the contention state from `probe_cost` via
    /// [`StateSet::state_of`](crate::qualvar::StateSet::state_of) and
    /// delegates to [`CostModel::estimate_in_state`], the single source of
    /// truth for pricing. Results are bitwise identical to calling
    /// `estimate_in_state` with the resolved state.
    pub fn estimate(&self, x_selected: &[f64], probe_cost: f64) -> f64 {
        let s = self.states.state_of(probe_cost);
        self.estimate_in_state(x_selected, s)
    }

    /// Estimates the cost within an explicit contention state.
    ///
    /// This is the **single source of truth** for model pricing: both
    /// [`CostModel::estimate`] and [`CostModel::estimate_observation`] are
    /// thin wrappers that resolve the state / project the variables and then
    /// delegate here, so all three entry points are bitwise consistent. Any
    /// change to the evaluation arithmetic must be made here and only here.
    pub fn estimate_in_state(&self, x_selected: &[f64], state: usize) -> f64 {
        let b = &self.coefficients[state.min(self.coefficients.len() - 1)];
        let mut y = b[0];
        for (j, &x) in x_selected.iter().enumerate().take(self.num_variables()) {
            y += b[j + 1] * x;
        }
        y
    }

    /// Estimates the cost of a full-width observation (all candidate
    /// variables); projection onto the selected subset happens internally.
    ///
    /// Thin wrapper over [`CostModel::estimate`] (and therefore over
    /// [`CostModel::estimate_in_state`], the single source of truth):
    /// projects `obs` onto `var_indexes` and delegates, so its result is
    /// bitwise identical to projecting by hand and calling `estimate`.
    pub fn estimate_observation(&self, obs: &Observation) -> f64 {
        let x = obs.project(&self.var_indexes);
        self.estimate(&x, obs.probe_cost)
    }

    /// Renders the model in the style of the paper's Table 4: one cost
    /// equation per contention state, highest-contention state first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let m = self.num_states();
        for s in (0..m).rev() {
            let (lo, hi) = self.states.bounds(s);
            let mut eq = format!(
                "  {} (probe in [{:.3}, {:.3})): Y = {:+.4e}",
                self.states.paper_label(s),
                lo,
                hi,
                self.coefficients[s][0]
            );
            for (j, name) in self.var_names.iter().enumerate() {
                eq.push_str(&format!(" {:+.4e}*{}", self.coefficients[s][j + 1], name));
            }
            out.push_str(&eq);
            out.push('\n');
        }
        out
    }
}

/// Where the entries of a state's local row `z = [1, x₁..x_p]` land in the
/// full design row of a given form: local column `j` occupies global column
/// `design_position(..)[j]`.
///
/// This is the single source of truth for the column layout — the
/// observation-space [`design_row`] and the Gram-assembly path
/// ([`fit_gram_from_blocks`]) both derive from it, so the two engines fit
/// the *same* design by construction.
pub(crate) fn design_position(form: ModelForm, m: usize, p: usize, state: usize) -> Vec<usize> {
    match form {
        ModelForm::Coincident => (0..=p).collect(),
        ModelForm::Parallel => {
            let mut pos = Vec::with_capacity(p + 1);
            pos.push(state);
            pos.extend(m..m + p);
            pos
        }
        ModelForm::Concurrent => {
            let mut pos = Vec::with_capacity(p + 1);
            pos.push(0);
            pos.extend(1 + state * p..1 + (state + 1) * p);
            pos
        }
        ModelForm::General => (state * (p + 1)..(state + 1) * (p + 1)).collect(),
    }
}

/// Builds the design-matrix row of one observation under a given form.
fn design_row(form: ModelForm, m: usize, state: usize, x: &[f64]) -> Vec<f64> {
    let p = x.len();
    let mut row = vec![0.0; form.num_params(m, p)];
    let pos = design_position(form, m, p, state);
    row[pos[0]] = 1.0;
    for (j, &v) in x.iter().enumerate() {
        row[pos[j + 1]] = v;
    }
    row
}

/// Recovers the adjusted per-state coefficient table `b_{j,i}` from the raw
/// coefficient vector.
pub(crate) fn adjusted_coefficients(
    form: ModelForm,
    m: usize,
    p: usize,
    beta: &[f64],
) -> Vec<Vec<f64>> {
    (0..m)
        .map(|s| match form {
            ModelForm::Coincident => beta.to_vec(),
            ModelForm::Parallel => {
                let mut b = Vec::with_capacity(p + 1);
                b.push(beta[s]);
                b.extend_from_slice(&beta[m..m + p]);
                b
            }
            ModelForm::Concurrent => {
                let mut b = Vec::with_capacity(p + 1);
                b.push(beta[0]);
                b.extend_from_slice(&beta[1 + s * p..1 + (s + 1) * p]);
                b
            }
            ModelForm::General => beta[s * (p + 1)..(s + 1) * (p + 1)].to_vec(),
        })
        .collect()
}

/// Counts how many observations fall in each state of a partition.
pub fn counts_per_state(states: &StateSet, observations: &[Observation]) -> Vec<usize> {
    let mut counts = vec![0usize; states.len()];
    for o in observations {
        counts[states.state_of(o.probe_cost)] += 1;
    }
    counts
}

/// Minimum observations a state must contain for a general-form fit with
/// `p` variables (exact fit needs `p + 1`; one spare for the error term).
pub fn min_obs_per_state(p: usize) -> usize {
    p + 2
}

/// Shared sample-sufficiency validation of both fit engines, in the exact
/// legacy order: first the pooled total against `k + 1`, then (for the
/// state-dependent general/concurrent forms with `m > 1`) each state
/// against [`min_obs_per_state`].
pub(crate) fn check_sample_counts(
    form: ModelForm,
    p: usize,
    counts: &[usize],
) -> Result<(), CoreError> {
    let m = counts.len();
    let k = form.num_params(m, p);
    let total: usize = counts.iter().sum();
    if total < k + 1 {
        return Err(CoreError::InsufficientSamples {
            needed: k + 1,
            got: total,
        });
    }
    if m > 1 && matches!(form, ModelForm::General | ModelForm::Concurrent) {
        if let Some(&c) = counts.iter().find(|&&c| c < min_obs_per_state(p)) {
            return Err(CoreError::InsufficientSamples {
                needed: min_obs_per_state(p),
                got: c,
            });
        }
    }
    Ok(())
}

/// Fits a qualitative model from per-state sufficient-statistics blocks.
///
/// Each block holds the Gram statistics of one state's observations over
/// the local row `z = [1, x₁..x_p]`; the blocks are pooled into the full
/// design via [`design_position`] and solved in O(k³) without touching any
/// observation. Validation and error semantics mirror [`fit_cost_model`]
/// exactly ([`CoreError::InsufficientSamples`] in the same order, rank
/// deficiency as `CoreError::Numeric(StatsError::Singular)`).
pub(crate) fn fit_gram_from_blocks(
    form: ModelForm,
    p: usize,
    blocks: &[GramAccumulator],
) -> Result<GramFit, CoreError> {
    let m = blocks.len();
    let counts: Vec<usize> = blocks.iter().map(|b| b.n()).collect();
    check_sample_counts(form, p, &counts)?;
    let k = form.num_params(m, p);
    let mut pooled = GramAccumulator::new(k);
    for (s, block) in blocks.iter().enumerate() {
        pooled
            .merge_placed(block, &design_position(form, m, p, s))
            .map_err(CoreError::Numeric)?;
    }
    pooled.solve(true).map_err(CoreError::Numeric)
}

/// Fits a qualitative regression cost model.
///
/// `var_indexes`/`var_names` select the quantitative variables (indexes
/// into the canonical candidate order of the class family). For state-
/// dependent forms every state must hold at least
/// [`min_obs_per_state`] observations, otherwise
/// [`CoreError::InsufficientSamples`] is returned — callers (IUPMA/ICMA)
/// react by drawing more samples or merging states.
pub fn fit_cost_model(
    form: ModelForm,
    states: StateSet,
    var_indexes: Vec<usize>,
    var_names: Vec<String>,
    observations: &[Observation],
) -> Result<CostModel, CoreError> {
    let m = states.len();
    let p = var_indexes.len();
    check_sample_counts(form, p, &counts_per_state(&states, observations))?;
    let mut rows = Vec::with_capacity(observations.len());
    let mut y = Vec::with_capacity(observations.len());
    for o in observations {
        let x = o.project(&var_indexes);
        let s = states.state_of(o.probe_cost);
        rows.push(design_row(form, m, s, &x));
        y.push(o.cost);
    }
    let design = Matrix::from_rows(&rows).map_err(CoreError::Numeric)?;
    let ols = OlsFit::fit(&design, &y, true).map_err(CoreError::Numeric)?;
    let coefficients = adjusted_coefficients(form, m, p, &ols.coefficients);
    Ok(CostModel {
        form,
        states,
        var_indexes,
        var_names,
        coefficients,
        fit: FitStats {
            r_squared: ols.r_squared,
            adj_r_squared: ols.adj_r_squared,
            see: ols.see,
            f_statistic: ols.f_statistic,
            f_p_value: ols.f_p_value,
            n: ols.n,
            k: ols.k,
        },
    })
}

/// Sufficient statistics of a fitted cost model, kept alive so maintenance
/// can fold new observations in and refit in O(k³) **without** rescanning
/// (or even retaining) the fitting sample — the cheap continuous refit that
/// `ModelMaintainer::refit_incremental` builds on. Persisted alongside the
/// model in the catalog (`gram-entry` blocks).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAccumulator {
    form: ModelForm,
    states: StateSet,
    var_indexes: Vec<usize>,
    var_names: Vec<String>,
    /// One `(p+1)`-wide Gram block per contention state, over the local
    /// row `z = [1, x₁..x_p]`.
    blocks: Vec<GramAccumulator>,
}

impl ModelAccumulator {
    /// Builds the accumulator of a fitted model from its fitting sample.
    pub fn from_observations(model: &CostModel, observations: &[Observation]) -> ModelAccumulator {
        let mut acc = ModelAccumulator {
            form: model.form,
            states: model.states.clone(),
            var_indexes: model.var_indexes.clone(),
            var_names: model.var_names.clone(),
            blocks: vec![GramAccumulator::new(model.num_variables() + 1); model.states.len()],
        };
        acc.absorb(observations);
        acc
    }

    /// Rebuilds an accumulator from persisted parts. The blocks must match
    /// the state count and variable width.
    pub fn from_parts(
        form: ModelForm,
        states: StateSet,
        var_indexes: Vec<usize>,
        var_names: Vec<String>,
        blocks: Vec<GramAccumulator>,
    ) -> Result<ModelAccumulator, CoreError> {
        if blocks.len() != states.len() || var_indexes.len() != var_names.len() {
            return Err(CoreError::Degenerate(format!(
                "model accumulator: {} blocks for {} states, {} indexes for {} names",
                blocks.len(),
                states.len(),
                var_indexes.len(),
                var_names.len()
            )));
        }
        let width = var_indexes.len() + 1;
        if blocks.iter().any(|b| b.k() != width) {
            return Err(CoreError::Degenerate(format!(
                "model accumulator: block width != {width}"
            )));
        }
        Ok(ModelAccumulator {
            form,
            states,
            var_indexes,
            var_names,
            blocks,
        })
    }

    /// Folds new observations into the per-state blocks (rank-1 updates;
    /// the observations are not retained).
    pub fn absorb(&mut self, observations: &[Observation]) {
        for o in observations {
            let s = self.states.state_of(o.probe_cost);
            let mut z = Vec::with_capacity(self.var_indexes.len() + 1);
            z.push(1.0);
            z.extend(o.project(&self.var_indexes));
            self.blocks[s]
                .add_row(&z, o.cost)
                .expect("block width matches var_indexes by construction");
        }
    }

    /// An empty accumulator of the same shape (form, states, variables)
    /// holding the statistics of just `observations` — the *increment* a
    /// [`crate::store::CatalogDelta`] ships instead of the whole history.
    pub fn increment_from(&self, observations: &[Observation]) -> ModelAccumulator {
        let mut inc = ModelAccumulator {
            form: self.form,
            states: self.states.clone(),
            var_indexes: self.var_indexes.clone(),
            var_names: self.var_names.clone(),
            blocks: vec![GramAccumulator::new(self.var_indexes.len() + 1); self.states.len()],
        };
        inc.absorb(observations);
        inc
    }

    /// Folds another accumulator of the identical shape into this one
    /// (per-state block addition). Both the delta producer and the
    /// restore-side replay go through this same operation, so a replayed
    /// chain reproduces the producer's accumulator bit for bit.
    pub fn merge(&mut self, other: &ModelAccumulator) -> Result<(), CoreError> {
        if self.form != other.form
            || self.states != other.states
            || self.var_indexes != other.var_indexes
        {
            return Err(CoreError::Degenerate(
                "model accumulator merge: shape mismatch (form/states/vars differ)".into(),
            ));
        }
        for (mine, theirs) in self.blocks.iter_mut().zip(&other.blocks) {
            mine.merge(theirs)?;
        }
        Ok(())
    }

    /// Total observations absorbed across all states.
    pub fn n(&self) -> usize {
        self.blocks.iter().map(|b| b.n()).sum()
    }

    /// The regression form.
    pub fn form(&self) -> ModelForm {
        self.form
    }

    /// The contention-state partition the blocks are keyed by.
    pub fn states(&self) -> &StateSet {
        &self.states
    }

    /// Indexes of the selected variables.
    pub fn var_indexes(&self) -> &[usize] {
        &self.var_indexes
    }

    /// Names of the selected variables.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The per-state Gram blocks (for persistence).
    pub fn blocks(&self) -> &[GramAccumulator] {
        &self.blocks
    }

    /// Refits the cost model from the accumulated statistics — O(k³),
    /// independent of how many observations were absorbed.
    pub fn refit(&self) -> Result<CostModel, CoreError> {
        let p = self.var_indexes.len();
        let gram = fit_gram_from_blocks(self.form, p, &self.blocks)?;
        let coefficients =
            adjusted_coefficients(self.form, self.states.len(), p, &gram.coefficients);
        Ok(CostModel {
            form: self.form,
            states: self.states.clone(),
            var_indexes: self.var_indexes.clone(),
            var_names: self.var_names.clone(),
            coefficients,
            fit: FitStats {
                r_squared: gram.r_squared,
                adj_r_squared: gram.adj_r_squared,
                see: gram.see,
                f_statistic: gram.f_statistic,
                f_p_value: gram.f_p_value,
                n: gram.n,
                k: gram.k,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes observations from a known two-state ground truth:
    /// state 0 (probe < 5): y = 1 + 2x; state 1 (probe >= 5): y = 10 + 6x.
    fn two_state_observations() -> Vec<Observation> {
        let mut obs = Vec::new();
        for i in 0..40 {
            let x = i as f64;
            obs.push(Observation {
                x: vec![x],
                cost: 1.0 + 2.0 * x,
                probe_cost: 2.0 + (i % 3) as f64 * 0.5,
            });
            obs.push(Observation {
                x: vec![x],
                cost: 10.0 + 6.0 * x,
                probe_cost: 7.0 + (i % 3) as f64 * 0.5,
            });
        }
        obs
    }

    fn two_states() -> StateSet {
        StateSet::from_edges(vec![0.0, 5.0, 10.0]).unwrap()
    }

    #[test]
    fn general_form_recovers_both_regimes() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        assert!((model.coefficients[0][0] - 1.0).abs() < 1e-8);
        assert!((model.coefficients[0][1] - 2.0).abs() < 1e-8);
        assert!((model.coefficients[1][0] - 10.0).abs() < 1e-8);
        assert!((model.coefficients[1][1] - 6.0).abs() < 1e-8);
        assert!(model.fit.r_squared > 0.999999);
    }

    #[test]
    fn coincident_form_averages_regimes() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::Coincident,
            StateSet::single(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        // One pooled slope between 2 and 6.
        let slope = model.coefficients[0][1];
        assert!(slope > 2.0 && slope < 6.0, "slope {slope}");
        // And a visibly worse fit than the general model.
        assert!(model.fit.r_squared < 0.95);
    }

    #[test]
    fn parallel_form_shares_slopes() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::Parallel,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        assert!((model.coefficients[0][1] - model.coefficients[1][1]).abs() < 1e-10);
        assert!(model.coefficients[0][0] != model.coefficients[1][0]);
    }

    #[test]
    fn concurrent_form_shares_intercept() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::Concurrent,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        assert!((model.coefficients[0][0] - model.coefficients[1][0]).abs() < 1e-10);
        assert!(model.coefficients[0][1] != model.coefficients[1][1]);
    }

    #[test]
    fn general_fit_beats_restricted_forms_on_general_data() {
        let obs = two_state_observations();
        let fit = |form, states: StateSet| {
            fit_cost_model(form, states, vec![0], vec!["x".into()], &obs)
                .unwrap()
                .fit
                .r_squared
        };
        let general = fit(ModelForm::General, two_states());
        let parallel = fit(ModelForm::Parallel, two_states());
        let concurrent = fit(ModelForm::Concurrent, two_states());
        let coincident = fit(ModelForm::Coincident, StateSet::single());
        assert!(general >= parallel && general >= concurrent);
        assert!(parallel > coincident);
    }

    #[test]
    fn estimate_uses_probe_cost_to_pick_state() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        assert!((model.estimate(&[3.0], 1.0) - 7.0).abs() < 1e-6);
        assert!((model.estimate(&[3.0], 8.0) - 28.0).abs() < 1e-6);
        // Probe outside the sampled range clamps to the edge state.
        assert!((model.estimate(&[3.0], 100.0) - 28.0).abs() < 1e-6);
    }

    #[test]
    fn estimate_observation_projects_full_vector() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap();
        let test = Observation {
            x: vec![4.0],
            cost: 0.0,
            probe_cost: 1.0,
        };
        assert!((model.estimate_observation(&test) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn thin_state_is_rejected() {
        // All observations in state 0; state 1 empty.
        let obs: Vec<Observation> = (0..30)
            .map(|i| Observation {
                x: vec![i as f64],
                cost: i as f64,
                probe_cost: 1.0,
            })
            .collect();
        let err = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InsufficientSamples { .. }));
    }

    #[test]
    fn too_few_total_observations_rejected() {
        let obs: Vec<Observation> = (0..3)
            .map(|i| Observation {
                x: vec![i as f64],
                cost: i as f64,
                probe_cost: 1.0 + i as f64 * 3.0,
            })
            .collect();
        assert!(fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["x".into()],
            &obs,
        )
        .is_err());
    }

    #[test]
    fn num_params_per_form() {
        assert_eq!(ModelForm::Coincident.num_params(4, 3), 4);
        assert_eq!(ModelForm::Parallel.num_params(4, 3), 7);
        assert_eq!(ModelForm::Concurrent.num_params(4, 3), 13);
        assert_eq!(ModelForm::General.num_params(4, 3), 16);
    }

    #[test]
    fn render_mentions_every_state_and_variable() {
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["N_O".into()],
            &obs,
        )
        .unwrap();
        let text = model.render();
        assert!(text.contains("S1"));
        assert!(text.contains("S2"));
        assert!(text.contains("N_O"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn estimate_entry_points_are_bitwise_consistent() {
        // All three estimation entry points must agree bitwise: `estimate`
        // and `estimate_observation` are documented as thin wrappers over
        // `estimate_in_state`, the single source of truth.
        let obs = two_state_observations();
        let model = fit_cost_model(
            ModelForm::General,
            two_states(),
            vec![0],
            vec!["N_O".into()],
            &obs,
        )
        .unwrap();
        for o in &obs {
            let x = o.project(&model.var_indexes);
            let s = model.states.state_of(o.probe_cost);
            let via_state = model.estimate_in_state(&x, s);
            let via_probe = model.estimate(&x, o.probe_cost);
            let via_obs = model.estimate_observation(o);
            assert_eq!(via_probe.to_bits(), via_state.to_bits());
            assert_eq!(via_obs.to_bits(), via_state.to_bits());
        }
    }

    #[test]
    fn counts_per_state_totals() {
        let obs = two_state_observations();
        let counts = counts_per_state(&two_states(), &obs);
        assert_eq!(counts.iter().sum::<usize>(), obs.len());
        assert_eq!(counts, vec![40, 40]);
    }
}
