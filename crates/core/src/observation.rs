//! Sample observations: what one executed sample query contributes.

/// One data point for regression: the explanatory-variable values of a
/// sample query, its observed cost, and the probing-query cost measured in
/// the same environment ("sampled probing query cost", paper §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Values of *all* candidate explanatory variables of the query-class
    /// family, in the canonical order of
    /// [`variables::VariableFamily::all`](crate::variables::VariableFamily::all).
    pub x: Vec<f64>,
    /// Observed elapsed cost of the sample query (seconds).
    pub cost: f64,
    /// Cost of the probing query executed in the same environment.
    pub probe_cost: f64,
}

impl Observation {
    /// Projects this observation onto a subset of variables given by
    /// indexes into the canonical order.
    pub fn project(&self, keep: &[usize]) -> Vec<f64> {
        keep.iter().map(|&i| self.x[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_selects_in_order() {
        let o = Observation {
            x: vec![10.0, 20.0, 30.0, 40.0],
            cost: 1.0,
            probe_cost: 0.5,
        };
        assert_eq!(o.project(&[2, 0]), vec![30.0, 10.0]);
        assert_eq!(o.project(&[]), Vec::<f64>::new());
    }
}
