//! The context every pipeline entry point carries.
//!
//! PR 2 grew the pipeline a `f` / `f_traced` pair per entry point; adding
//! batch parallelism on top would have doubled that again. Instead, every
//! public pipeline function now takes one [`PipelineCtx`] bundling the two
//! cross-cutting concerns — the telemetry collection and the root RNG seed
//! — so a new concern extends the context instead of forking the API.
//!
//! ```
//! use mdbs_core::pipeline::PipelineCtx;
//!
//! let quiet = PipelineCtx::seeded(7);          // no telemetry, seed 7
//! assert!(!quiet.telemetry.is_enabled());
//! let traced = PipelineCtx::traced(7);         // recording telemetry
//! assert!(traced.telemetry.is_enabled());
//! assert_eq!(PipelineCtx::default().seed, 0);  // null context
//! ```

use mdbs_obs::Telemetry;

/// Cross-cutting context threaded through the derivation pipeline:
/// a telemetry collection plus the root RNG seed.
///
/// The seed drives the sample-query generator of a single derivation, or —
/// for [`derive_all`](crate::derive::derive_all) — acts as the *root* seed
/// from which each job's child streams are split, so a whole batch is
/// reproducible from one number.
#[derive(Debug, Default)]
pub struct PipelineCtx {
    /// Telemetry collection; [`Telemetry::default`] is the disabled
    /// (null-sink) collection, so the default context records nothing.
    pub telemetry: Telemetry,
    /// Root RNG seed for sample-query generation.
    pub seed: u64,
}

impl PipelineCtx {
    /// A silent context with the given seed: telemetry disabled, every
    /// instrumentation call a no-op.
    pub fn seeded(seed: u64) -> Self {
        PipelineCtx {
            telemetry: Telemetry::disabled(),
            seed,
        }
    }

    /// A recording context with the given seed.
    pub fn traced(seed: u64) -> Self {
        PipelineCtx {
            telemetry: Telemetry::enabled(),
            seed,
        }
    }

    /// A context for one batch job: same tracing disposition as `self`,
    /// seeded with `seed` (typically a child stream split from
    /// [`PipelineCtx::seed`]). The job's telemetry is recorded into the
    /// child and merged back deterministically by the batch runner.
    pub fn child(&self, seed: u64) -> Self {
        if self.telemetry.is_enabled() {
            PipelineCtx::traced(seed)
        } else {
            PipelineCtx::seeded(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_silent() {
        let ctx = PipelineCtx::default();
        assert!(!ctx.telemetry.is_enabled());
        assert_eq!(ctx.seed, 0);
    }

    #[test]
    fn child_inherits_tracing_disposition() {
        assert!(PipelineCtx::traced(1).child(9).telemetry.is_enabled());
        assert!(!PipelineCtx::seeded(1).child(9).telemetry.is_enabled());
        assert_eq!(PipelineCtx::seeded(1).child(9).seed, 9);
    }
}
