//! Model validation on test workloads (paper §4.3 and §5).
//!
//! "Unlike the scientific computation in engineering, the accuracy of cost
//! estimation in query optimization is not required to be very high. The
//! estimated costs with relative errors within 30% are considered to be
//! *very good*, and the estimated costs that are within the range of
//! one-time larger or smaller than the corresponding observed costs (e.g.,
//! 2 minutes vs 4 minutes) are considered to be *good*."

use crate::classes::QueryClass;
use crate::model::CostModel;
use crate::sampling::SampleGenerator;
use crate::CoreError;
use mdbs_sim::agent::ExecutionSizes;
use mdbs_sim::MdbsAgent;

/// Relative-error bound for a *very good* estimate.
pub const VERY_GOOD_REL_ERR: f64 = 0.30;
/// Factor bound for a *good* estimate (within 2× either way).
pub const GOOD_FACTOR: f64 = 2.0;

/// One test-query estimate/observation pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TestPoint {
    /// Observed elapsed cost (seconds).
    pub observed: f64,
    /// Cost estimated by the model before execution.
    pub estimated: f64,
    /// Result cardinality (the x-axis of paper Figures 4–9).
    pub result_card: u64,
    /// Probing cost gauged for this execution.
    pub probe_cost: f64,
}

impl TestPoint {
    /// Relative error `|est − obs| / obs`.
    pub fn relative_error(&self) -> f64 {
        if self.observed <= 0.0 {
            return f64::INFINITY;
        }
        (self.estimated - self.observed).abs() / self.observed
    }

    /// Very good: relative error within 30 %.
    pub fn is_very_good(&self) -> bool {
        self.relative_error() <= VERY_GOOD_REL_ERR
    }

    /// Good: within one time larger or smaller (a factor of two), or
    /// already very good.
    pub fn is_good(&self) -> bool {
        if self.is_very_good() {
            return true;
        }
        if self.estimated <= 0.0 || self.observed <= 0.0 {
            return false;
        }
        let ratio = (self.estimated / self.observed).max(self.observed / self.estimated);
        ratio <= GOOD_FACTOR
    }
}

/// Aggregate quality of a set of test points.
#[derive(Debug, Clone, PartialEq)]
pub struct Quality {
    /// Number of test queries.
    pub n: usize,
    /// Percentage of very good estimates (0–100).
    pub very_good_pct: f64,
    /// Percentage of good estimates (0–100).
    pub good_pct: f64,
    /// Mean relative error over finite points.
    pub mean_rel_err: f64,
}

/// Summarizes test points into the paper's quality percentages.
pub fn quality(points: &[TestPoint]) -> Quality {
    let n = points.len();
    if n == 0 {
        return Quality {
            n: 0,
            very_good_pct: 0.0,
            good_pct: 0.0,
            mean_rel_err: f64::NAN,
        };
    }
    let vg = points.iter().filter(|p| p.is_very_good()).count();
    let g = points.iter().filter(|p| p.is_good()).count();
    let finite: Vec<f64> = points
        .iter()
        .map(TestPoint::relative_error)
        .filter(|e| e.is_finite())
        .collect();
    Quality {
        n,
        very_good_pct: 100.0 * vg as f64 / n as f64,
        good_pct: 100.0 * g as f64 / n as f64,
        mean_rel_err: finite.iter().sum::<f64>() / finite.len().max(1) as f64,
    }
}

/// Runs `n` random test queries of `class` against `agent`, estimating each
/// with `model` *before* execution (probing first, like the real flow) and
/// then observing its actual cost.
pub fn run_test_queries(
    agent: &mut MdbsAgent,
    class: QueryClass,
    model: &CostModel,
    n: usize,
    seed: u64,
) -> Result<Vec<TestPoint>, CoreError> {
    let family = class.family();
    let mut generator = SampleGenerator::new(seed);
    let mut points = Vec::with_capacity(n);
    while points.len() < n {
        let query = generator.generate(class, agent.catalog());
        let Some(x) = family.extract(agent.catalog(), &query) else {
            continue;
        };
        agent.tick();
        let probe_cost = agent.probe();
        let x_sel: Vec<f64> = model.var_indexes.iter().map(|&i| x[i]).collect();
        let estimated = model.estimate(&x_sel, probe_cost);
        let exec = agent
            .run(&query)
            .map_err(|e| CoreError::Agent(e.to_string()))?;
        let result_card = match exec.sizes {
            ExecutionSizes::Unary(s) => s.result,
            ExecutionSizes::Join(s) => s.result,
        };
        points.push(TestPoint {
            observed: exec.cost_s,
            estimated,
            result_card,
            probe_cost,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(observed: f64, estimated: f64) -> TestPoint {
        TestPoint {
            observed,
            estimated,
            result_card: 0,
            probe_cost: 1.0,
        }
    }

    #[test]
    fn very_good_band() {
        assert!(point(10.0, 10.0).is_very_good());
        assert!(point(10.0, 12.9).is_very_good());
        assert!(point(10.0, 7.1).is_very_good());
        assert!(!point(10.0, 13.5).is_very_good());
    }

    #[test]
    fn good_band_is_a_factor_of_two() {
        assert!(point(10.0, 19.9).is_good());
        assert!(point(10.0, 5.1).is_good());
        assert!(!point(10.0, 20.5).is_good());
        assert!(!point(10.0, 4.9).is_good());
        // 2 minutes vs 4 minutes — the paper's own example of "good".
        assert!(point(120.0, 240.0).is_good());
        // 2 minutes vs 3 hours — "not acceptable".
        assert!(!point(120.0, 10_800.0).is_good());
    }

    #[test]
    fn very_good_implies_good() {
        for est in [7.1, 9.0, 10.0, 12.0, 12.9] {
            let p = point(10.0, est);
            if p.is_very_good() {
                assert!(p.is_good());
            }
        }
    }

    #[test]
    fn nonpositive_estimates_are_bad() {
        assert!(!point(10.0, 0.0).is_good());
        assert!(!point(10.0, -3.0).is_good());
    }

    #[test]
    fn quality_aggregates() {
        let pts = vec![
            point(10.0, 10.0),  // very good
            point(10.0, 15.0),  // good
            point(10.0, 100.0), // bad
            point(10.0, 11.0),  // very good
        ];
        let q = quality(&pts);
        assert_eq!(q.n, 4);
        assert!((q.very_good_pct - 50.0).abs() < 1e-9);
        assert!((q.good_pct - 75.0).abs() < 1e-9);
        assert!(q.mean_rel_err > 0.0);
    }

    #[test]
    fn empty_quality_is_degenerate() {
        let q = quality(&[]);
        assert_eq!(q.n, 0);
        assert!(q.mean_rel_err.is_nan());
    }
}
