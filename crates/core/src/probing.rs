//! Probing-cost estimation from system statistics (paper §3.3, eq. (2)).
//!
//! Executing the probing query before every cost estimate adds overhead. The
//! paper's alternative: fit a regression `C_probe = β0 + β1·s1 + … + βq·sq`
//! between the probing cost and a few major contention parameters (CPU
//! load, I/O utilization, used memory, …), then *estimate* the probing cost
//! from a statistics snapshot — "a standard statistical procedure can be
//! used to determine the significant parameters", implemented here as
//! backward elimination on coefficient t-tests.

use crate::CoreError;
use mdbs_sim::SystemStats;
use mdbs_stats::{Matrix, OlsFit};

/// A fitted probing-cost estimator.
#[derive(Debug, Clone)]
pub struct ProbeCostEstimator {
    /// Indexes of the retained predictors within
    /// [`SystemStats::probe_predictors`].
    pub selected: Vec<usize>,
    /// Names of the retained predictors.
    pub names: Vec<String>,
    /// Intercept followed by one coefficient per retained predictor.
    pub coefficients: Vec<f64>,
    /// R² of the final fit.
    pub r_squared: f64,
    /// Standard error of estimation of the final fit.
    pub see: f64,
}

impl ProbeCostEstimator {
    /// Fits eq. (2) on `(statistics snapshot, observed probing cost)` pairs,
    /// keeping only parameters significant at level `alpha`.
    pub fn fit(samples: &[(SystemStats, f64)], alpha: f64) -> Result<Self, CoreError> {
        if samples.len() < SystemStats::probe_predictor_names().len() + 3 {
            return Err(CoreError::InsufficientSamples {
                needed: SystemStats::probe_predictor_names().len() + 3,
                got: samples.len(),
            });
        }
        let all_names = SystemStats::probe_predictor_names();
        let mut selected: Vec<usize> = (0..all_names.len()).collect();
        // Drop constant predictors up front (zero variance breaks OLS).
        selected.retain(|&j| {
            let col: Vec<f64> = samples
                .iter()
                .map(|(s, _)| s.probe_predictors()[j])
                .collect();
            let first = col[0];
            col.iter().any(|v| (v - first).abs() > 1e-12)
        });
        let y: Vec<f64> = samples.iter().map(|(_, c)| *c).collect();
        loop {
            let fitted = Self::fit_subset(samples, &y, &selected)?;
            // Find the least significant predictor (skip the intercept).
            let worst = fitted
                .t_p_values
                .iter()
                .enumerate()
                .skip(1)
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite p-values"));
            match worst {
                Some((pos, &p)) if p > alpha && selected.len() > 1 => {
                    selected.remove(pos - 1);
                }
                _ => {
                    return Ok(ProbeCostEstimator {
                        names: selected.iter().map(|&j| all_names[j].to_string()).collect(),
                        selected,
                        coefficients: fitted.coefficients,
                        r_squared: fitted.r_squared,
                        see: fitted.see,
                    });
                }
            }
        }
    }

    fn fit_subset(
        samples: &[(SystemStats, f64)],
        y: &[f64],
        selected: &[usize],
    ) -> Result<OlsFit, CoreError> {
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|(s, _)| {
                let preds = s.probe_predictors();
                let mut row = Vec::with_capacity(selected.len() + 1);
                row.push(1.0);
                row.extend(selected.iter().map(|&j| preds[j]));
                row
            })
            .collect();
        let x = Matrix::from_rows(&rows).map_err(CoreError::Numeric)?;
        OlsFit::fit(&x, y, true).map_err(CoreError::Numeric)
    }

    /// Estimates the probing cost from a statistics snapshot.
    pub fn estimate(&self, stats: &SystemStats) -> f64 {
        let preds = stats.probe_predictors();
        let mut c = self.coefficients[0];
        for (k, &j) in self.selected.iter().enumerate() {
            c += self.coefficients[k + 1] * preds[j];
        }
        c.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbs_sim::contention::Load;
    use mdbs_sim::datagen::standard_database;
    use mdbs_sim::{MdbsAgent, VendorProfile};
    use mdbs_stats::rng::Rng;

    /// Gathers (stats, probe cost) pairs across the load range.
    fn gather(n: usize) -> Vec<(SystemStats, f64)> {
        let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 11);
        let mut rng = Rng::seed_from_u64(5);
        (0..n)
            .map(|_| {
                agent.set_load(Load::background(rng.gen_range(0.0..130.0)));
                let stats = agent.stats();
                let probe = agent.probe();
                (stats, probe)
            })
            .collect()
    }

    #[test]
    fn estimator_tracks_probe_cost() {
        let samples = gather(150);
        let est = ProbeCostEstimator::fit(&samples, 0.05).unwrap();
        assert!(est.r_squared > 0.8, "R² only {}", est.r_squared);
        // Held-out check: estimates within a reasonable band on average.
        let holdout = gather(40);
        let mut rel = 0.0;
        for (s, c) in &holdout {
            rel += ((est.estimate(s) - c) / c).abs();
        }
        rel /= holdout.len() as f64;
        assert!(rel < 0.5, "mean relative error {rel}");
    }

    #[test]
    fn insignificant_parameters_are_dropped() {
        let samples = gather(150);
        let est = ProbeCostEstimator::fit(&samples, 0.05).unwrap();
        assert!(!est.selected.is_empty());
        assert_eq!(est.selected.len(), est.names.len());
        assert_eq!(est.coefficients.len(), est.selected.len() + 1);
    }

    #[test]
    fn too_few_samples_is_an_error() {
        let samples = gather(4);
        assert!(matches!(
            ProbeCostEstimator::fit(&samples, 0.05),
            Err(CoreError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn estimate_is_nonnegative() {
        let samples = gather(120);
        let est = ProbeCostEstimator::fit(&samples, 0.05).unwrap();
        let mut agent = MdbsAgent::new(VendorProfile::db2v5(), standard_database(1), 3);
        agent.set_load(Load::idle());
        let s = agent.stats();
        assert!(est.estimate(&s) >= 0.0);
    }
}
