//! Mixed backward/forward variable selection (paper §4.2) with
//! multicollinearity screening (§4.3).
//!
//! The candidate explanatory variables of a class family split into a
//! **basic** set `B` and a **secondary** set `S` (Table 3). Selection
//! proceeds as in the paper:
//!
//! 1. Any variable whose *maximum* simple correlation with the response
//!    over all contention states is too small "has little linear
//!    relationship with the response in any state" and is removed outright.
//! 2. **Backward elimination** starts from the full basic model and
//!    repeatedly removes the variable with the smallest *average* per-state
//!    correlation with the response, as long as doing so improves the
//!    standard error of estimation or barely changes it.
//! 3. **Forward selection** then offers secondary variables: the candidate
//!    with the largest average per-state correlation with the *residuals*
//!    of the current model is added when it significantly improves the SEE.
//! 4. Variables with a large **variance inflation factor** in some state
//!    are excluded to avoid multicollinearity.

use crate::model::{
    adjusted_coefficients, fit_cost_model, fit_gram_from_blocks, min_obs_per_state, CostModel,
    FitEngine, ModelForm,
};
use crate::observation::Observation;
use crate::qualvar::StateSet;
use crate::variables::VariableFamily;
use crate::CoreError;
use mdbs_obs::Telemetry;
use mdbs_stats::pearson;
use mdbs_stats::vif::variance_inflation_factors;
use mdbs_stats::GramAccumulator;

/// Tuning knobs of the selection procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionConfig {
    /// Variables whose max-over-states |correlation| with the response is
    /// below this are dropped outright.
    pub min_corr: f64,
    /// Relative SEE increase tolerated when removing a basic variable
    /// (the paper's ε for the backward condition `(SE_r − SE)/SE < ε`).
    pub backward_tolerance: f64,
    /// Relative SEE decrease required before a secondary variable is added
    /// (the paper's δ for the forward condition `(SE − SE_a)/SE > δ`).
    pub forward_min_gain: f64,
    /// Variance-inflation-factor threshold. Neter et al. suggest 10 for
    /// general data, but size-derived cost-model variables (`N_O`, `N_I`,
    /// `N_R`, …) are *inherently* correlated — the intermediate and result
    /// cardinalities are fractions of the operand cardinality — so the
    /// default screens only pathological collinearity (exact or near-exact
    /// linear dependence) and leaves the moderate kind to the SEE-driven
    /// backward/forward steps.
    pub vif_threshold: f64,
    /// How add/eliminate candidates are scored (the published winner is
    /// always refitted through the canonical observation-space QR).
    pub engine: FitEngine,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            min_corr: 0.05,
            backward_tolerance: 0.01,
            forward_min_gain: 0.02,
            vif_threshold: 100.0,
            engine: FitEngine::default(),
        }
    }
}

/// The outcome of variable selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Indexes of the chosen variables (canonical family order, ascending).
    pub var_indexes: Vec<usize>,
    /// Names aligned with `var_indexes`.
    pub var_names: Vec<String>,
    /// The model fitted on the chosen variables.
    pub model: CostModel,
}

/// Runs the full mixed procedure for `family` over `observations`
/// partitioned by `states`, fitting models in the given `form`.
///
/// When `ctx.telemetry` is enabled, records `selection.*` counters
/// (low-correlation drops, VIF-screened starters, backward eliminations,
/// forward additions, VIF-rejected forward candidates). The `ctx.seed` is
/// unused here — selection is deterministic in its inputs.
pub fn select_variables(
    family: VariableFamily,
    observations: &[Observation],
    states: &StateSet,
    form: ModelForm,
    cfg: &SelectionConfig,
    ctx: &mut crate::pipeline::PipelineCtx,
) -> Result<Selection, CoreError> {
    select_variables_inner(family, observations, states, form, cfg, &mut ctx.telemetry)
}

/// The selection body behind [`select_variables`], for callers that carry
/// their own telemetry handle.
pub(crate) fn select_variables_inner(
    family: VariableFamily,
    observations: &[Observation],
    states: &StateSet,
    form: ModelForm,
    cfg: &SelectionConfig,
    tel: &mut Telemetry,
) -> Result<Selection, CoreError> {
    let all = family.all();
    let names =
        |idx: &[usize]| -> Vec<String> { idx.iter().map(|&i| all[i].name.to_string()).collect() };
    let groups = group_by_state(states, observations);
    let y_by_state: Vec<Vec<f64>> = groups
        .iter()
        .map(|g| g.iter().map(|o| o.cost).collect())
        .collect();

    // Step 1: basic set, pre-filtered by max-over-states correlation.
    let mut current: Vec<usize> = family
        .basic_indexes()
        .into_iter()
        .filter(|&j| max_abs_corr(&groups, &y_by_state, j) >= cfg.min_corr)
        .collect();
    if current.is_empty() {
        // Degenerate workload; fall back to the full basic set and let the
        // fit itself report what is wrong.
        current = family.basic_indexes();
    }
    let low_corr_dropped = family.basic_indexes().len() - current.len();
    tel.inc("selection.low_corr_dropped", low_corr_dropped as u64);

    // Step 1b: multicollinearity screen on the starting set. Among a
    // collinear group, the variable least correlated with the response is
    // the one sacrificed.
    let screened = drop_high_vif(&mut current, observations, states, cfg.vif_threshold, |j| {
        avg_abs_corr(&groups, &y_by_state, j)
    })?;
    tel.inc("selection.vif_screened", screened as u64);

    let form_for = |st: &StateSet| {
        if st.is_single() {
            ModelForm::Coincident
        } else {
            form
        }
    };
    // The Gram engine accumulates each state's observations once over the
    // *full* candidate-variable width; every add/eliminate candidate is
    // then scored by slicing that cached Gram matrix (column subset) and
    // solving in O(k³) — the observations are never rescanned.
    let full_blocks = match cfg.engine {
        FitEngine::FullRefit => None,
        FitEngine::Gram => {
            let width = all.len() + 1;
            let mut blocks: Vec<GramAccumulator> = vec![GramAccumulator::new(width); states.len()];
            for o in observations {
                let mut z = Vec::with_capacity(width);
                z.push(1.0);
                z.extend_from_slice(&o.x[..all.len()]);
                blocks[states.state_of(o.probe_cost)]
                    .add_row(&z, o.cost)
                    .map_err(CoreError::Numeric)?;
            }
            tel.inc("fit.gram.prefix_builds", 1);
            Some(blocks)
        }
    };
    let fit = |idx: &[usize], tel: &mut Telemetry| -> Result<Scored, CoreError> {
        match &full_blocks {
            None => {
                let model = fit_cost_model(
                    form_for(states),
                    states.clone(),
                    idx.to_vec(),
                    names(idx),
                    observations,
                )?;
                Ok(Scored::from_model(model))
            }
            Some(blocks) => {
                let mut cols = Vec::with_capacity(idx.len() + 1);
                cols.push(0);
                cols.extend(idx.iter().map(|&i| i + 1));
                let sub: Vec<GramAccumulator> = blocks
                    .iter()
                    .map(|b| b.subset(&cols))
                    .collect::<Result<_, _>>()
                    .map_err(CoreError::Numeric)?;
                let pooled_n: usize = sub.iter().map(|b| b.n()).sum();
                let the_form = form_for(states);
                let gram = fit_gram_from_blocks(the_form, idx.len(), &sub)?;
                tel.inc("fit.gram.solves", 1);
                if gram.solved_by_cholesky {
                    tel.inc("fit.gram.cholesky", 1);
                } else {
                    tel.inc("fit.gram.qr_fallback", 1);
                }
                tel.inc("fit.gram.rescans_avoided", pooled_n as u64);
                Ok(Scored {
                    see: gram.see,
                    coefficients: adjusted_coefficients(
                        the_form,
                        states.len(),
                        idx.len(),
                        &gram.coefficients,
                    ),
                    model: None,
                })
            }
        }
    };

    let mut model = fit(&current, tel)?;

    // Step 2: backward elimination over the basic variables.
    while current.len() > 1 {
        // Candidate: smallest average per-state |corr| with the response.
        let &cand = current
            .iter()
            .min_by(|&&a, &&b| {
                avg_abs_corr(&groups, &y_by_state, a)
                    .partial_cmp(&avg_abs_corr(&groups, &y_by_state, b))
                    .expect("correlations are finite")
            })
            .expect("non-empty set");
        let reduced: Vec<usize> = current.iter().copied().filter(|&i| i != cand).collect();
        match fit(&reduced, tel) {
            Ok(reduced_model) => {
                let see = model.see.max(f64::MIN_POSITIVE);
                let delta = (reduced_model.see - model.see) / see;
                if delta < cfg.backward_tolerance {
                    current = reduced;
                    model = reduced_model;
                    tel.inc("selection.vars_eliminated", 1);
                } else {
                    break;
                }
            }
            // A singular reduced fit means the candidate was load-bearing
            // only through collinearity; keep the current model.
            Err(_) => break,
        }
    }

    // Step 3: forward selection over the secondary variables.
    let mut pool: Vec<usize> = family.secondary_indexes();
    while !pool.is_empty() {
        let residuals_by_state: Vec<Vec<f64>> = groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|o| o.cost - model.estimate(states, &current, o))
                    .collect()
            })
            .collect();
        // Candidate: largest average per-state |corr| with the residuals.
        let (pos, &cand) = pool
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                avg_abs_corr(&groups, &residuals_by_state, a)
                    .partial_cmp(&avg_abs_corr(&groups, &residuals_by_state, b))
                    .expect("correlations are finite")
            })
            .expect("non-empty pool");
        pool.swap_remove(pos);
        if avg_abs_corr(&groups, &residuals_by_state, cand) < cfg.min_corr {
            break; // Nothing left that explains the residuals.
        }
        let mut augmented = current.clone();
        augmented.push(cand);
        augmented.sort_unstable();
        // Reject candidates that would introduce multicollinearity.
        if exceeds_vif(&augmented, cand, observations, states, cfg.vif_threshold)? {
            tel.inc("selection.vif_rejections", 1);
            continue;
        }
        let Ok(aug_model) = fit(&augmented, tel) else {
            continue; // Singular with this candidate; try the next one.
        };
        let see = model.see.max(f64::MIN_POSITIVE);
        let gain = (model.see - aug_model.see) / see;
        if aug_model.see < model.see && gain > cfg.forward_min_gain {
            current = augmented;
            model = aug_model;
            tel.inc("selection.vars_added", 1);
        }
    }

    // The published model always comes from the canonical observation-space
    // QR, so both engines produce identical selections *and* identical
    // model numerics; the Gram engine only accelerated the candidate scan.
    let model = match model.model {
        Some(model) => model,
        None => fit_cost_model(
            form_for(states),
            states.clone(),
            current.clone(),
            names(&current),
            observations,
        )?,
    };

    Ok(Selection {
        var_names: names(&current),
        var_indexes: current,
        model,
    })
}

/// A scored candidate variable set: the SEE that drives the search, the
/// adjusted per-state coefficients (for residual computation in the
/// forward step), and — legacy engine only — the fitted model itself.
struct Scored {
    see: f64,
    coefficients: Vec<Vec<f64>>,
    model: Option<CostModel>,
}

impl Scored {
    fn from_model(model: CostModel) -> Scored {
        Scored {
            see: model.fit.see,
            coefficients: model.coefficients.clone(),
            model: Some(model),
        }
    }

    /// Predicts one observation's cost — the same arithmetic as
    /// [`CostModel::estimate_observation`], evaluated from the adjusted
    /// coefficients without materializing a model.
    fn estimate(&self, states: &StateSet, var_indexes: &[usize], o: &Observation) -> f64 {
        let s = states.state_of(o.probe_cost);
        let b = &self.coefficients[s.min(self.coefficients.len() - 1)];
        let mut y = b[0];
        for (j, &vi) in var_indexes.iter().enumerate() {
            y += b[j + 1] * o.x[vi];
        }
        y
    }
}

/// Splits observations into per-state groups.
fn group_by_state<'a>(
    states: &StateSet,
    observations: &'a [Observation],
) -> Vec<Vec<&'a Observation>> {
    let mut groups: Vec<Vec<&Observation>> = vec![Vec::new(); states.len()];
    for o in observations {
        groups[states.state_of(o.probe_cost)].push(o);
    }
    groups
}

/// |Pearson correlation| between variable `j` and a per-state target,
/// aggregated as the maximum over states (ignoring states that are too
/// small to measure).
fn max_abs_corr(groups: &[Vec<&Observation>], target: &[Vec<f64>], j: usize) -> f64 {
    per_state_corrs(groups, target, j)
        .into_iter()
        .fold(0.0, f64::max)
}

/// Same, aggregated as the average over measurable states.
fn avg_abs_corr(groups: &[Vec<&Observation>], target: &[Vec<f64>], j: usize) -> f64 {
    let corrs = per_state_corrs(groups, target, j);
    if corrs.is_empty() {
        0.0
    } else {
        corrs.iter().sum::<f64>() / corrs.len() as f64
    }
}

fn per_state_corrs(groups: &[Vec<&Observation>], target: &[Vec<f64>], j: usize) -> Vec<f64> {
    groups
        .iter()
        .zip(target)
        .filter(|(g, _)| g.len() >= 3)
        .map(|(g, t)| {
            let xs: Vec<f64> = g.iter().map(|o| o.x[j]).collect();
            pearson(&xs, t).abs()
        })
        .collect()
}

/// While any variable's VIF exceeds the threshold, removes — among those
/// over the threshold — the one contributing least to explaining the
/// response (`relevance`), preserving the strongest predictors. Returns the
/// number of variables removed.
fn drop_high_vif(
    current: &mut Vec<usize>,
    observations: &[Observation],
    states: &StateSet,
    threshold: f64,
    relevance: impl Fn(usize) -> f64,
) -> Result<usize, CoreError> {
    let mut dropped = 0;
    while current.len() > 1 {
        let vifs = max_vif_over_states(current, observations, states)?;
        let Some(drop_pos) = vifs
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > threshold)
            .map(|(pos, _)| pos)
            .min_by(|&a, &b| {
                relevance(current[a])
                    .partial_cmp(&relevance(current[b]))
                    .expect("finite correlations")
            })
        else {
            return Ok(dropped);
        };
        current.remove(drop_pos);
        dropped += 1;
    }
    Ok(dropped)
}

/// Whether adding `cand` to the set pushes *its own* VIF over the threshold.
fn exceeds_vif(
    augmented: &[usize],
    cand: usize,
    observations: &[Observation],
    states: &StateSet,
    threshold: f64,
) -> Result<bool, CoreError> {
    let vifs = max_vif_over_states(augmented, observations, states)?;
    let pos = augmented
        .iter()
        .position(|&i| i == cand)
        .expect("candidate is in the augmented set");
    Ok(vifs[pos] > threshold)
}

/// VIF of each variable, computed within every sufficiently populated state
/// (paper §4.3: `VIF_j^{(i)}`), aggregated as the maximum over states; a
/// pooled computation is the fallback when no state is big enough.
fn max_vif_over_states(
    vars: &[usize],
    observations: &[Observation],
    states: &StateSet,
) -> Result<Vec<f64>, CoreError> {
    let p = vars.len();
    let groups = group_by_state(states, observations);
    let need = (min_obs_per_state(p)).max(p + 2);
    let mut agg = vec![0.0f64; p];
    let mut measured = false;
    for g in &groups {
        if g.len() < need {
            continue;
        }
        let columns: Vec<Vec<f64>> = vars
            .iter()
            .map(|&j| g.iter().map(|o| o.x[j]).collect())
            .collect();
        let vifs = variance_inflation_factors(&columns)?;
        for (a, v) in agg.iter_mut().zip(vifs) {
            *a = a.max(v);
        }
        measured = true;
    }
    if !measured {
        let columns: Vec<Vec<f64>> = vars
            .iter()
            .map(|&j| observations.iter().map(|o| o.x[j]).collect())
            .collect();
        agg = variance_inflation_factors(&columns)?;
    }
    Ok(agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineCtx;

    /// Unary-family observations where cost depends on N_O and N_R but not
    /// on N_I beyond its correlation with the others, and where the
    /// secondary variable N_R*L_R carries genuine extra signal.
    fn synth_unary(n: usize) -> Vec<Observation> {
        let mut obs = Vec::with_capacity(n);
        for i in 0..n {
            let n_o = 1_000.0 + (i % 37) as f64 * 600.0;
            let n_i = n_o * (0.2 + (i % 11) as f64 * 0.06);
            let n_r = n_i * (0.3 + (i % 7) as f64 * 0.09);
            let l_o = 44.0 + (i % 5) as f64 * 12.0;
            let l_r = 12.0 + (i % 3) as f64 * 8.0;
            let probe = (i % 100) as f64 / 10.0;
            let factor = 1.0 + probe / 5.0;
            let cost = factor * (0.5 + 0.002 * n_o + 0.004 * n_r + 0.0002 * n_r * l_r)
                + (i % 13) as f64 * 0.01;
            obs.push(Observation {
                x: vec![n_o, n_i, n_r, l_o, l_r, n_o * l_o, n_r * l_r, 0.0],
                cost,
                probe_cost: probe,
            });
        }
        obs
    }

    fn states() -> StateSet {
        StateSet::from_edges(vec![0.0, 2.5, 5.0, 7.5, 10.0]).unwrap()
    }

    #[test]
    fn keeps_load_bearing_basics_drops_inert_one() {
        let obs = synth_unary(600);
        let sel = select_variables(
            VariableFamily::Unary,
            &obs,
            &states(),
            ModelForm::General,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )
        .unwrap();
        // N_O (0) and N_R (2) must survive.
        assert!(sel.var_indexes.contains(&0), "{:?}", sel.var_names);
        assert!(sel.var_indexes.contains(&2), "{:?}", sel.var_names);
        assert!(sel.model.fit.r_squared > 0.95);
    }

    #[test]
    fn forward_step_adds_informative_secondary() {
        let obs = synth_unary(600);
        let sel = select_variables(
            VariableFamily::Unary,
            &obs,
            &states(),
            ModelForm::General,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )
        .unwrap();
        // The true cost depends on N_R*L_R beyond the basics; the forward
        // step must pick up a secondary variable carrying that signal —
        // either N_R*L_R itself (index 6) or its close proxy L_R (index 4).
        let secondaries: Vec<usize> = sel
            .var_indexes
            .iter()
            .copied()
            .filter(|i| VariableFamily::Unary.secondary_indexes().contains(i))
            .collect();
        assert!(
            secondaries.iter().any(|i| *i == 4 || *i == 6),
            "no informative secondary variable selected: {:?}",
            sel.var_names
        );
    }

    #[test]
    fn collinear_variable_is_screened_out() {
        // Make N_I exactly proportional to N_O -> infinite VIF.
        let mut obs = synth_unary(400);
        for o in &mut obs {
            o.x[1] = 2.0 * o.x[0];
        }
        let sel = select_variables(
            VariableFamily::Unary,
            &obs,
            &states(),
            ModelForm::General,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert!(
            !(sel.var_indexes.contains(&0) && sel.var_indexes.contains(&1)),
            "perfectly collinear pair survived: {:?}",
            sel.var_names
        );
    }

    #[test]
    fn constant_variable_never_selected() {
        let mut obs = synth_unary(400);
        for o in &mut obs {
            o.x[3] = 44.0; // L_O constant (all tables same tuple length).
        }
        let sel = select_variables(
            VariableFamily::Unary,
            &obs,
            &states(),
            ModelForm::General,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert!(!sel.var_indexes.contains(&3), "{:?}", sel.var_names);
    }

    #[test]
    fn single_state_selection_works() {
        let obs = synth_unary(300);
        let sel = select_variables(
            VariableFamily::Unary,
            &obs,
            &StateSet::single(),
            ModelForm::General,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert!(!sel.var_indexes.is_empty());
        assert_eq!(sel.model.num_states(), 1);
    }

    /// Join-family observations: cost driven by the Cartesian product and
    /// the result size.
    #[test]
    fn join_family_selection_keeps_cartesian() {
        let mut obs = Vec::new();
        for i in 0..500 {
            let n1 = 1_000.0 + (i % 23) as f64 * 700.0;
            let n2 = 2_000.0 + (i % 17) as f64 * 900.0;
            let i1 = n1 * (0.3 + (i % 7) as f64 * 0.08);
            let i2 = n2 * (0.2 + (i % 5) as f64 * 0.12);
            let n_r = i1 * i2 / 50_000.0;
            let probe = (i % 90) as f64 / 10.0;
            let factor = 1.0 + probe / 4.0;
            let cost = factor * (1.0 + 1e-6 * i1 * i2 + 2e-4 * n_r) + (i % 11) as f64 * 0.01;
            obs.push(Observation {
                x: vec![
                    n1,
                    n2,
                    i1,
                    i2,
                    n_r,
                    i1 * i2,
                    44.0 + (i % 3) as f64 * 12.0,
                    56.0,
                    30.0,
                    n1 * 44.0,
                    n2 * 56.0,
                    n_r * 30.0,
                ],
                cost,
                probe_cost: probe,
            });
        }
        let states = StateSet::from_edges(vec![0.0, 3.0, 6.0, 9.0]).unwrap();
        let sel = select_variables(
            VariableFamily::Join,
            &obs,
            &states,
            ModelForm::General,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )
        .unwrap();
        // The Cartesian-product term (index 5) is the dominant driver.
        assert!(
            sel.var_indexes.contains(&5),
            "N_I1*N_I2 not selected: {:?}",
            sel.var_names
        );
        assert!(sel.model.fit.r_squared > 0.95);
    }

    #[test]
    fn selection_telemetry_accounts_for_every_set_change() {
        let obs = synth_unary(600);
        let mut ctx = PipelineCtx::traced(0);
        let sel = select_variables(
            VariableFamily::Unary,
            &obs,
            &states(),
            ModelForm::General,
            &SelectionConfig::default(),
            &mut ctx,
        )
        .unwrap();
        let tel = &ctx.telemetry;
        let basics = VariableFamily::Unary.basic_indexes().len() as u64;
        let low_corr = tel.metrics.counter("selection.low_corr_dropped");
        let screened = tel.metrics.counter("selection.vif_screened");
        let eliminated = tel.metrics.counter("selection.vars_eliminated");
        let added = tel.metrics.counter("selection.vars_added");
        assert_eq!(
            basics - low_corr - screened - eliminated + added,
            sel.var_indexes.len() as u64,
            "counters must reconcile with the final variable set"
        );
        // Same inputs, untraced: identical outcome.
        let plain = select_variables(
            VariableFamily::Unary,
            &obs,
            &states(),
            ModelForm::General,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert_eq!(plain.var_indexes, sel.var_indexes);
        assert_eq!(plain.model.fit.r_squared, sel.model.fit.r_squared);
    }

    #[test]
    fn var_names_align_with_indexes() {
        let obs = synth_unary(300);
        let sel = select_variables(
            VariableFamily::Unary,
            &obs,
            &states(),
            ModelForm::General,
            &SelectionConfig::default(),
            &mut PipelineCtx::default(),
        )
        .unwrap();
        let all = VariableFamily::Unary.all();
        for (i, &idx) in sel.var_indexes.iter().enumerate() {
            assert_eq!(sel.var_names[i], all[idx].name);
        }
    }
}
