//! Contention-state determination: **IUPMA** and **ICMA** (paper §3.3).
//!
//! Both algorithms share the same two-phase skeleton (paper Algorithm 3.1):
//!
//! * **Phase 1 — iterative refinement.** Starting from one state, the
//!   number of states `m` grows while each added state still improves the
//!   model "sufficiently" in terms of the coefficient of total
//!   determination R² and the standard error of estimation SEE, up to a cap
//!   that keeps the model maintainable.
//! * **Phase 2 — merging adjustment.** Adjacent states whose *adjusted
//!   coefficients* differ by only a small relative error do not have
//!   significantly different effects on the cost model; they are merged and
//!   the model refitted until no merge candidates remain.
//!
//! They differ only in how a candidate partition of the probing-cost range
//! is proposed: **IUPMA** slices it uniformly; **ICMA** runs agglomerative
//! (centroid-linkage) clustering on the sampled probing costs and cuts at
//! the gaps between clusters — better when the contention level follows a
//! non-uniform, clustered distribution (paper Table 6 / Figure 10).
//!
//! When a proposed state contains too few observations for regression, the
//! paper prescribes drawing *additional* sample queries rather than
//! discarding the state; the [`ObservationSource`] trait is that hook.
//! States that stay thin are merged into a neighbor.

use crate::model::{
    adjusted_coefficients, counts_per_state, fit_cost_model, fit_gram_from_blocks,
    min_obs_per_state, CostModel, FitEngine, ModelForm,
};
use crate::observation::Observation;
use crate::qualvar::StateSet;
use crate::CoreError;
use mdbs_obs::Telemetry;
use mdbs_stats::{cluster_1d, GramAccumulator, GramPrefix};

/// Which state-determination algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateAlgorithm {
    /// Iterative Uniform Partition with Merging Adjustment.
    Iupma,
    /// Iterative Clustering with Merging Adjustment.
    Icma,
}

/// Tuning knobs of the determination procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct StatesConfig {
    /// Upper bound on the number of states (paper: 3–6 usually suffice).
    pub max_states: usize,
    /// Minimum R² gain for an extra state to be "sufficient".
    pub min_r2_gain: f64,
    /// Minimum *relative* SEE reduction for an extra state.
    pub min_see_gain: f64,
    /// Maximum relative difference between adjacent states' adjusted
    /// coefficients below which the states are merged in phase 2.
    pub merge_threshold: f64,
    /// Regression form fitted at each step (the paper uses General).
    pub form: ModelForm,
    /// Consecutive insufficient-improvement steps tolerated before phase 1
    /// stops. Gains are not monotone in `m` (uniform boundaries shift as
    /// the partition refines), so stopping at the first flat step can
    /// strand the model at a too-coarse partition.
    pub patience: usize,
    /// How candidate partitions are scored (the published winner is always
    /// refitted through the canonical observation-space QR).
    pub engine: FitEngine,
}

impl Default for StatesConfig {
    fn default() -> Self {
        StatesConfig {
            max_states: 6,
            min_r2_gain: 0.01,
            min_see_gain: 0.02,
            merge_threshold: 0.15,
            form: ModelForm::General,
            patience: 2,
            engine: FitEngine::default(),
        }
    }
}

/// A supplier of extra observations targeted at a probing-cost subrange.
///
/// `draw_in_range(lo, hi)` should execute one more sample query in an
/// environment whose probing cost lies in `[lo, hi)` and return its
/// observation, or `None` when that environment cannot be produced.
pub trait ObservationSource {
    /// Attempts to produce one observation with `probe_cost ∈ [lo, hi)`.
    fn draw_in_range(&mut self, lo: f64, hi: f64) -> Option<Observation>;
}

/// A source that never supplies anything — thin states then merge instead.
pub struct NoResampling;

impl ObservationSource for NoResampling {
    fn draw_in_range(&mut self, _lo: f64, _hi: f64) -> Option<Observation> {
        None
    }
}

/// One phase-1 iteration record (for reports and the E-STATES experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Number of states of this candidate model.
    pub states: usize,
    /// Pooled R².
    pub r_squared: f64,
    /// Pooled SEE.
    pub see: f64,
}

/// The outcome of state determination: the model (Algorithm 3.1 produces a
/// cost model as a by-product), the phase-1 history, and how many merges
/// phase 2 performed.
#[derive(Debug, Clone)]
pub struct StatesResult {
    /// The final fitted model (with its state set inside).
    pub model: CostModel,
    /// Phase-1 iteration history, one entry per attempted `m`.
    pub history: Vec<IterationStats>,
    /// Number of merging adjustments applied in phase 2.
    pub merges: usize,
}

/// Runs IUPMA or ICMA over `observations`, mutating the vector when the
/// source supplies extra samples for thin states.
///
/// When `ctx.telemetry` is enabled, records `states.*` counters (partition
/// iterations, rank-deficient and collapsed proposals skipped, targeted
/// resample draws, thin-state merges, phase-2 merges). The `ctx.seed` is
/// unused here — state determination draws no randomness of its own.
#[allow(clippy::too_many_arguments)]
pub fn determine_states(
    algorithm: StateAlgorithm,
    observations: &mut Vec<Observation>,
    var_indexes: &[usize],
    var_names: &[String],
    cfg: &StatesConfig,
    source: &mut dyn ObservationSource,
    ctx: &mut crate::pipeline::PipelineCtx,
) -> Result<StatesResult, CoreError> {
    determine_states_inner(
        algorithm,
        observations,
        var_indexes,
        var_names,
        cfg,
        source,
        &mut ctx.telemetry,
    )
}

/// The determination body behind [`determine_states`], for callers that
/// carry their own telemetry handle.
#[allow(clippy::too_many_arguments)]
pub(crate) fn determine_states_inner(
    algorithm: StateAlgorithm,
    observations: &mut Vec<Observation>,
    var_indexes: &[usize],
    var_names: &[String],
    cfg: &StatesConfig,
    source: &mut dyn ObservationSource,
    tel: &mut Telemetry,
) -> Result<StatesResult, CoreError> {
    if cfg.max_states == 0 {
        return Err(CoreError::Degenerate("max_states must be >= 1".into()));
    }
    let form_for = |states: &StateSet| {
        if states.is_single() {
            ModelForm::Coincident
        } else {
            cfg.form
        }
    };

    // The Gram engine accumulates every observation once, in probing-cost
    // order, so each candidate partition is fitted from prefix differences
    // without rescanning the sample. Rebuilt only when `populate_or_merge`
    // draws extra observations (`fit.gram.prefix_builds` counts those).
    let mut cache = match cfg.engine {
        FitEngine::FullRefit => None,
        FitEngine::Gram => Some(GramCache::build(observations, var_indexes, tel)?),
    };

    let fit_candidate = |obs: &[Observation],
                         states: StateSet,
                         cache: &Option<GramCache>,
                         tel: &mut Telemetry| {
        let form = form_for(&states);
        match cache {
            None => {
                let model =
                    fit_cost_model(form, states, var_indexes.to_vec(), var_names.to_vec(), obs)?;
                Ok(Candidate::from_model(model))
            }
            Some(cache) => {
                let blocks = cache.blocks(&states)?;
                Candidate::from_blocks(form, states, var_indexes.len(), blocks, tel)
            }
        }
    };

    // Phase 1, m = 1: the static special case (fit errors propagate — an
    // unusable sample aborts the derivation in either engine).
    let mut best = fit_candidate(observations, StateSet::single(), &cache, tel)?;
    let mut history = vec![IterationStats {
        states: 1,
        r_squared: best.r_squared,
        see: best.see,
    }];

    let (c_min, c_max) = probe_range(observations)?;
    let degenerate_range = c_max <= c_min;
    let mut flat_steps = 0usize;

    for m in 2..=cfg.max_states {
        if degenerate_range {
            break; // A constant probing cost admits only one state.
        }
        tel.inc("states.partition_iterations", 1);
        let proposed = match algorithm {
            StateAlgorithm::Iupma => StateSet::uniform(c_min, c_max, m)?,
            StateAlgorithm::Icma => {
                let probes: Vec<f64> = observations.iter().map(|o| o.probe_cost).collect();
                let clusters = cluster_1d(&probes, m);
                StateSet::from_clusters(&clusters)?
            }
        };
        if proposed.len() < m && proposed.len() <= best.num_states() {
            tel.inc("states.collapsed_proposals", 1);
            continue; // Clustering could not produce more states.
        }
        let before = observations.len();
        let states = populate_or_merge(proposed, observations, var_indexes.len(), source, tel);
        if observations.len() != before {
            // Targeted resampling appended observations — the prefix sums
            // are stale, rebuild them once for this (and later) proposals.
            if cache.is_some() {
                cache = Some(GramCache::build(observations, var_indexes, tel)?);
            }
        }
        if states.len() <= history.last().map_or(1, |h| h.states)
            && states.len() <= best.num_states()
        {
            tel.inc("states.collapsed_proposals", 1);
            continue; // Thin-state merging collapsed the proposal.
        }
        // A rank-deficient fit means some state's observations are
        // collinear in the variables even though populate_or_merge gave it
        // enough of them *by count* — this particular partition is simply
        // not viable, the same situation as a collapsed proposal above, so
        // it is skipped rather than aborting the whole derivation. Other
        // numeric failures still propagate.
        let candidate = match fit_candidate(observations, states, &cache, tel) {
            Ok(candidate) => candidate,
            Err(CoreError::Numeric(mdbs_stats::StatsError::Singular)) => {
                tel.inc("states.rank_deficient_skipped", 1);
                continue;
            }
            Err(e) => return Err(e),
        };
        history.push(IterationStats {
            states: candidate.num_states(),
            r_squared: candidate.r_squared,
            see: candidate.see,
        });
        let r2_gain = candidate.r_squared - best.r_squared;
        let see_gain = (best.see - candidate.see) / best.see.max(f64::MIN_POSITIVE);
        if r2_gain < cfg.min_r2_gain && see_gain < cfg.min_see_gain {
            // Not improving sufficiently (Algorithm 3.1 l. 13) — but give
            // the refinement a little patience before giving up.
            flat_steps += 1;
            if flat_steps >= cfg.patience.max(1) {
                break;
            }
        } else {
            flat_steps = 0;
            best = candidate;
        }
    }

    // Phase 2: merging adjustment. The Gram engine combines the two
    // adjacent states' accumulator blocks (`+`) and re-solves in O(k³);
    // the legacy engine refits from scratch. Fit errors propagate here in
    // both engines, as before.
    let mut merges = 0;
    while let Some(i) = first_merge_candidate(&best.coefficients, cfg.merge_threshold) {
        let merged_states = best.states.merge_with_next(i)?;
        best = match best.blocks {
            None => fit_candidate(observations, merged_states, &cache, tel)?,
            Some(mut blocks) => {
                let right = blocks.remove(i + 1);
                blocks[i] += &right;
                Candidate::from_blocks(
                    form_for(&merged_states),
                    merged_states,
                    var_indexes.len(),
                    blocks,
                    tel,
                )?
            }
        };
        merges += 1;
        tel.inc("states.merges", 1);
    }

    // The published model always comes from the canonical observation-space
    // QR, so both engines export identical catalogs; the Gram engine only
    // accelerated the search.
    let model = match best.model {
        Some(model) => model,
        None => fit_cost_model(
            form_for(&best.states),
            best.states,
            var_indexes.to_vec(),
            var_names.to_vec(),
            observations,
        )?,
    };

    Ok(StatesResult {
        model,
        history,
        merges,
    })
}

/// One scored candidate partition during the search. The legacy engine
/// carries the fully fitted model; the Gram engine carries the per-state
/// accumulator blocks (so phase 2 can merge them) and defers building a
/// `CostModel` until the search settles.
struct Candidate {
    states: StateSet,
    r_squared: f64,
    see: f64,
    /// Adjusted per-state coefficients (phase 2 compares these).
    coefficients: Vec<Vec<f64>>,
    /// Per-state Gram blocks (Gram engine only).
    blocks: Option<Vec<GramAccumulator>>,
    /// The fitted model (legacy engine only).
    model: Option<CostModel>,
}

impl Candidate {
    fn from_model(model: CostModel) -> Candidate {
        Candidate {
            states: model.states.clone(),
            r_squared: model.fit.r_squared,
            see: model.fit.see,
            coefficients: model.coefficients.clone(),
            blocks: None,
            model: Some(model),
        }
    }

    fn from_blocks(
        form: ModelForm,
        states: StateSet,
        p: usize,
        blocks: Vec<GramAccumulator>,
        tel: &mut Telemetry,
    ) -> Result<Candidate, CoreError> {
        let pooled_n: usize = blocks.iter().map(|b| b.n()).sum();
        let gram = fit_gram_from_blocks(form, p, &blocks)?;
        tel.inc("fit.gram.solves", 1);
        if gram.solved_by_cholesky {
            tel.inc("fit.gram.cholesky", 1);
        } else {
            tel.inc("fit.gram.qr_fallback", 1);
        }
        tel.inc("fit.gram.rescans_avoided", pooled_n as u64);
        Ok(Candidate {
            coefficients: adjusted_coefficients(form, states.len(), p, &gram.coefficients),
            states,
            r_squared: gram.r_squared,
            see: gram.see,
            blocks: Some(blocks),
            model: None,
        })
    }

    fn num_states(&self) -> usize {
        self.states.len()
    }
}

/// The Gram engine's per-derivation cache: every observation accumulated
/// once in probing-cost order, as prefix sums, so any contiguous partition
/// (uniform IUPMA slice, ICMA cluster cut, or phase-2 merge) is fitted by
/// prefix difference.
struct GramCache {
    /// Probing costs ascending (ties broken by original index, so the
    /// accumulation order — and hence every rounding — is deterministic).
    probes: Vec<f64>,
    prefix: GramPrefix,
}

impl GramCache {
    fn build(
        observations: &[Observation],
        var_indexes: &[usize],
        tel: &mut Telemetry,
    ) -> Result<GramCache, CoreError> {
        let mut order: Vec<usize> = (0..observations.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            observations[a]
                .probe_cost
                .partial_cmp(&observations[b].probe_cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut prefix = GramPrefix::new(var_indexes.len() + 1);
        let mut probes = Vec::with_capacity(observations.len());
        for &i in &order {
            let o = &observations[i];
            let mut z = Vec::with_capacity(var_indexes.len() + 1);
            z.push(1.0);
            z.extend(o.project(var_indexes));
            prefix.push(&z, o.cost).map_err(CoreError::Numeric)?;
            probes.push(o.probe_cost);
        }
        tel.inc("fit.gram.prefix_builds", 1);
        Ok(GramCache { probes, prefix })
    }

    /// Per-state sufficient-statistics blocks of a partition: because the
    /// probes are sorted and `StateSet::state_of` is monotone, each state
    /// covers a contiguous index range found by binary search.
    fn blocks(&self, states: &StateSet) -> Result<Vec<GramAccumulator>, CoreError> {
        let m = states.len();
        let mut bounds = Vec::with_capacity(m + 1);
        bounds.push(0);
        for s in 0..m.saturating_sub(1) {
            bounds.push(self.probes.partition_point(|&pc| states.state_of(pc) <= s));
        }
        bounds.push(self.probes.len());
        (0..m)
            .map(|s| {
                self.prefix
                    .range(bounds[s], bounds[s + 1])
                    .map_err(CoreError::Numeric)
            })
            .collect()
    }
}

/// The observed probing-cost range `[Cmin, Cmax]`.
fn probe_range(observations: &[Observation]) -> Result<(f64, f64), CoreError> {
    if observations.is_empty() {
        return Err(CoreError::InsufficientSamples { needed: 1, got: 0 });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for o in observations {
        lo = lo.min(o.probe_cost);
        hi = hi.max(o.probe_cost);
    }
    Ok((lo, hi))
}

/// Ensures every state holds enough observations: first asks the source for
/// targeted extra samples (paper: "we draw additional sample data points …
/// rather than simply treat the data points in the cluster as outliers"),
/// then merges states that remain thin into a neighbor.
fn populate_or_merge(
    mut states: StateSet,
    observations: &mut Vec<Observation>,
    p: usize,
    source: &mut dyn ObservationSource,
    tel: &mut Telemetry,
) -> StateSet {
    let need = min_obs_per_state(p);
    loop {
        let counts = counts_per_state(&states, observations);
        let Some(thin) = counts.iter().position(|&c| c < need) else {
            return states;
        };
        // Try to fill the thin state with targeted samples.
        let (lo, hi) = states.bounds(thin);
        let missing = need - counts[thin];
        let mut drawn = 0;
        for _ in 0..missing {
            match source.draw_in_range(lo, hi) {
                Some(obs) => {
                    debug_assert!(states.state_of(obs.probe_cost) == thin);
                    observations.push(obs);
                    drawn += 1;
                    tel.inc("states.resample_draws", 1);
                }
                None => break,
            }
        }
        if drawn == missing {
            continue; // Filled; re-check all states.
        }
        // Could not fill: merge the thin state with a neighbor.
        if states.len() == 1 {
            return states;
        }
        let merge_at = if thin == states.len() - 1 {
            thin - 1
        } else {
            thin
        };
        tel.inc("states.thin_state_merges", 1);
        states = states
            .merge_with_next(merge_at)
            .expect("merge index verified in range");
    }
}

/// Finds the first adjacent pair of states whose adjusted coefficients are
/// so close that separating them is unnecessary (Algorithm 3.1 l. 17–21).
fn first_merge_candidate(coefficients: &[Vec<f64>], threshold: f64) -> Option<usize> {
    let m = coefficients.len();
    (0..m.saturating_sub(1))
        .find(|&i| max_relative_coef_error(&coefficients[i], &coefficients[i + 1]) < threshold)
}

/// `max_j |a_j − b_j| / max(|a_j|, |b_j|)` over the coefficient vectors.
fn max_relative_coef_error(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let scale = x.abs().max(y.abs());
            if scale <= f64::MIN_POSITIVE {
                0.0
            } else {
                (x - y).abs() / scale
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineCtx;

    /// Ground truth with `k` genuinely different contention regimes spread
    /// uniformly over probe costs 0..10.
    fn regime_observations(regimes: usize, per_regime: usize) -> Vec<Observation> {
        let mut obs = Vec::new();
        for r in 0..regimes {
            for i in 0..per_regime {
                let x = (i % 25) as f64 * 4.0;
                let factor = (r + 1) as f64;
                // Probe cost spread *within* the regime's band.
                let probe =
                    10.0 * (r as f64 + (i as f64 + 0.5) / per_regime as f64) / regimes as f64;
                obs.push(Observation {
                    x: vec![x],
                    cost: factor * (2.0 + 3.0 * x) + (i % 5) as f64 * 0.1,
                    probe_cost: probe,
                });
            }
        }
        obs
    }

    #[test]
    fn iupma_finds_multiple_states_for_multi_regime_data() {
        let mut obs = regime_observations(4, 60);
        let result = determine_states(
            StateAlgorithm::Iupma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert!(
            result.model.num_states() >= 3,
            "{}",
            result.model.num_states()
        );
        assert!(result.model.fit.r_squared > 0.98);
        // Phase-1 history starts at the static case.
        assert_eq!(result.history[0].states, 1);
        assert!(result.history[0].r_squared < result.model.fit.r_squared);
    }

    #[test]
    fn single_regime_data_stays_single_state() {
        // Cost independent of probe cost -> extra states buy ~nothing.
        let mut obs: Vec<Observation> = (0..200)
            .map(|i| Observation {
                x: vec![(i % 25) as f64],
                cost: 5.0 + 2.0 * (i % 25) as f64 + (i % 7) as f64 * 0.05,
                probe_cost: (i % 100) as f64 / 10.0,
            })
            .collect();
        let result = determine_states(
            StateAlgorithm::Iupma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )
        .unwrap();
        // Either phase 1 stops immediately or phase 2 merges everything back.
        assert!(result.model.num_states() <= 2);
    }

    #[test]
    fn merging_adjustment_collapses_identical_neighbors() {
        // Two true regimes; ask phase 1 not to stop early by giving a tiny
        // threshold, then verify phase 2 merged superfluous states.
        let mut obs = regime_observations(2, 120);
        let cfg = StatesConfig {
            max_states: 6,
            min_r2_gain: -1.0, // Force phase 1 to keep splitting.
            min_see_gain: -1.0,
            ..StatesConfig::default()
        };
        let result = determine_states(
            StateAlgorithm::Iupma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &cfg,
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert!(result.merges > 0, "expected phase 2 to merge some states");
        assert!(result.model.num_states() <= 4);
        assert!(result.model.fit.r_squared > 0.95);
    }

    #[test]
    fn icma_matches_clustered_probe_distribution() {
        // Probe costs cluster at 1, 5 and 9 with distinct cost regimes.
        let mut obs = Vec::new();
        for (ci, center) in [1.0, 5.0, 9.0].iter().enumerate() {
            for i in 0..80 {
                let x = (i % 20) as f64 * 5.0;
                let factor = (ci + 1) as f64 * 1.8;
                obs.push(Observation {
                    x: vec![x],
                    cost: factor * (1.0 + 2.0 * x),
                    probe_cost: center + ((i % 9) as f64 - 4.0) * 0.05,
                });
            }
        }
        let result = determine_states(
            StateAlgorithm::Icma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert_eq!(result.model.num_states(), 3);
        // The cluster-induced boundaries should split at the gaps.
        let edges = result.model.states.edges();
        assert!(edges[1] > 1.5 && edges[1] < 4.5, "{edges:?}");
        assert!(edges[2] > 5.5 && edges[2] < 8.5, "{edges:?}");
        assert!(result.model.fit.r_squared > 0.999);
    }

    #[test]
    fn thin_states_trigger_the_source() {
        // Uniform data but with a hole in (5, 7.5]; the source fills it.
        let mut obs: Vec<Observation> = Vec::new();
        for i in 0..160 {
            let probe = (i % 100) as f64 / 10.0;
            if (5.0..7.5).contains(&probe) {
                continue;
            }
            let factor = 1.0 + probe / 2.0;
            obs.push(Observation {
                x: vec![(i % 25) as f64],
                cost: factor * (1.0 + (i % 25) as f64),
                probe_cost: probe,
            });
        }
        struct Filler {
            draws: usize,
        }
        impl ObservationSource for Filler {
            fn draw_in_range(&mut self, lo: f64, hi: f64) -> Option<Observation> {
                self.draws += 1;
                let probe = 0.5 * (lo + hi);
                let x = (self.draws % 25) as f64;
                Some(Observation {
                    x: vec![x],
                    cost: (1.0 + probe / 2.0) * (1.0 + x),
                    probe_cost: probe,
                })
            }
        }
        let mut source = Filler { draws: 0 };
        let before = obs.len();
        let result = determine_states(
            StateAlgorithm::Iupma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut source,
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert!(source.draws > 0, "hole never triggered resampling");
        assert!(obs.len() > before);
        assert!(result.model.fit.r_squared > 0.9);
    }

    #[test]
    fn degenerate_probe_range_yields_single_state() {
        let mut obs: Vec<Observation> = (0..50)
            .map(|i| Observation {
                x: vec![i as f64],
                cost: 1.0 + 2.0 * i as f64,
                probe_cost: 3.0,
            })
            .collect();
        let result = determine_states(
            StateAlgorithm::Iupma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )
        .unwrap();
        assert_eq!(result.model.num_states(), 1);
    }

    #[test]
    fn rank_deficient_partition_proposals_are_skipped_not_fatal() {
        // In the upper half of the probe range the regressor is constant,
        // so any partition that isolates that band produces a state whose
        // design (intercept + x) is collinear. The proposal must be
        // skipped; the derivation itself must still succeed.
        let mut obs: Vec<Observation> = (0..120)
            .map(|i| {
                let probe = i as f64 / 12.0;
                let x = if probe >= 5.0 { 7.0 } else { (i % 25) as f64 };
                Observation {
                    x: vec![x],
                    cost: 1.0 + 2.0 * x + probe * 0.01,
                    probe_cost: probe,
                }
            })
            .collect();
        let result = determine_states(
            StateAlgorithm::Iupma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )
        .expect("singular proposals must not abort determination");
        assert_eq!(result.model.num_states(), 1);
    }

    #[test]
    fn rank_deficient_skips_are_counted_without_changing_the_result() {
        let make_obs = || -> Vec<Observation> {
            (0..120)
                .map(|i| {
                    let probe = i as f64 / 12.0;
                    let x = if probe >= 5.0 { 7.0 } else { (i % 25) as f64 };
                    Observation {
                        x: vec![x],
                        cost: 1.0 + 2.0 * x + probe * 0.01,
                        probe_cost: probe,
                    }
                })
                .collect()
        };
        let mut plain_obs = make_obs();
        let plain = determine_states(
            StateAlgorithm::Iupma,
            &mut plain_obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )
        .unwrap();
        let mut traced_obs = make_obs();
        let mut ctx = PipelineCtx::traced(0);
        let traced = determine_states(
            StateAlgorithm::Iupma,
            &mut traced_obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut NoResampling,
            &mut ctx,
        )
        .unwrap();
        let tel = &ctx.telemetry;
        assert!(
            tel.metrics.counter("states.rank_deficient_skipped") >= 1,
            "the collinear upper band must trigger at least one skip"
        );
        assert!(tel.metrics.counter("states.partition_iterations") >= 1);
        // Telemetry is observation-only: identical outcome either way.
        assert_eq!(traced.model.num_states(), plain.model.num_states());
        assert_eq!(traced.model.fit.r_squared, plain.model.fit.r_squared);
        assert_eq!(traced.model.coefficients, plain.model.coefficients);
        assert_eq!(traced.merges, plain.merges);
        assert_eq!(traced_obs, plain_obs);
    }

    #[test]
    fn empty_observations_error() {
        let mut obs = Vec::new();
        assert!(determine_states(
            StateAlgorithm::Iupma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &StatesConfig::default(),
            &mut NoResampling,
            &mut PipelineCtx::default(),
        )
        .is_err());
    }

    #[test]
    fn relative_error_helper() {
        assert_eq!(max_relative_coef_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((max_relative_coef_error(&[1.0, 2.0], &[1.0, 3.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(max_relative_coef_error(&[0.0], &[0.0]), 0.0);
    }
}
